"""The admission-controlled serving front-end.

:class:`ServingFrontend` sits in front of a
:class:`~repro.api.handlers.MinaretApi` and turns "dispatch one request
at a time" into a serving story for heavy traffic:

**Bounded admission queue.**  Requests that pass admission wait in a
FIFO queue of at most ``queue_capacity`` entries; a full queue sheds
with a typed 503 envelope instead of building an unbounded backlog.

**Per-tenant token-bucket fairness.**  Every tenant (a conference, an
editor dashboard, a crawler) owns a
:class:`~repro.web.ratelimit.TokenBucket` against the deployment's
virtual clock.  A tenant that exhausts its bucket gets a typed 429 with
``retry_after`` — other tenants keep flowing.

**Graceful degradation.**  When a request would be shed but the
front-end holds a warm response for the same request (cached from an
earlier successful dispatch), it serves that instead — optionally
top-k-truncated — marked ``degraded: true``.  A bounded, slightly stale
answer beats a refusal for an interactive recommendation UI.

**Telemetry.**  Queue-depth gauges, admission/shed/degrade counters and
a served-latency histogram (in *virtual* seconds, so quantiles are
deterministic) land in the deployment's :mod:`repro.obs` registry, and
a serving-latency SLO is registered on the deployment's engine so
overload walks the ok → warn → burning verdict.

Response bodies for admitted requests are produced by the wrapped API
and are bit-identical at any worker count; the front-end only decides
*whether* a request runs, never *what* it computes.
"""

from __future__ import annotations

import copy
import json
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.api.router import ApiResponse
from repro.concurrency.executor import create_executor
from repro.obs import SloSpec, get_obs
from repro.web.accounting import RequestScope
from repro.web.clock import SimulatedClock
from repro.web.ratelimit import TokenBucket

#: Routes whose successful responses may be replayed as degraded
#: answers.  Only idempotent, cacheable computations qualify — never
#: assignment (side-effect-shaped) or telemetry routes.
DEGRADABLE_PATHS = frozenset({"/api/v1/recommend", "/api/v1/expand"})

#: Metric names the front-end reports under.  The aggregate latency
#: histogram feeds the serving SLO; the per-tenant one is a separate
#: name so tenant label sets can never double-count the SLO's window.
QUEUE_DEPTH_GAUGE = "serving_queue_depth"
LATENCY_HISTOGRAM = "serving_latency_seconds"
TENANT_LATENCY_HISTOGRAM = "serving_tenant_latency_seconds"


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission budget: ``capacity`` burst, tokens/s refill."""

    capacity: float = 20.0
    refill_rate: float = 10.0

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity}")
        if self.refill_rate <= 0:
            raise ValueError(f"refill_rate must be > 0, got {self.refill_rate}")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the admission-controlled front-end.

    ``queue_capacity`` bounds the admitted-but-unserved backlog;
    ``default_policy`` is every unnamed tenant's token budget, overridden
    per tenant via ``tenant_policies``.  ``degraded_serving`` enables the
    warm-response fallback (truncating ranked lists to
    ``degraded_top_k``), ``warm_capacity`` bounds that response cache.
    ``shed_retry_after`` is the 503 retry hint when the queue itself is
    the bottleneck.  The ``slo_*`` fields shape the serving-latency SLO
    registered on the deployment (set ``register_slo=False`` to skip).
    """

    queue_capacity: int = 64
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    tenant_policies: tuple[tuple[str, TenantPolicy], ...] = ()
    degraded_serving: bool = True
    degraded_top_k: int | None = 3
    warm_capacity: int = 256
    shed_retry_after: float = 1.0
    register_slo: bool = True
    slo_threshold: float = 30.0
    slo_objective: float = 0.9
    slo_window: float = 3600.0

    def __post_init__(self):
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.warm_capacity < 0:
            raise ValueError(f"warm_capacity must be >= 0, got {self.warm_capacity}")
        if self.shed_retry_after < 0:
            raise ValueError(
                f"shed_retry_after must be >= 0, got {self.shed_retry_after}"
            )
        if self.degraded_top_k is not None and self.degraded_top_k < 1:
            raise ValueError(
                f"degraded_top_k must be >= 1, got {self.degraded_top_k}"
            )

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The admission budget for one tenant name."""
        for name, policy in self.tenant_policies:
            if name == tenant:
                return policy
        return self.default_policy


def serving_slo(config: ServingConfig) -> SloSpec:
    """The front-end's served-latency objective for the SLO engine."""
    return SloSpec(
        name="serving-latency",
        description="admitted requests served within the latency budget",
        metric=LATENCY_HISTOGRAM,
        threshold=config.slo_threshold,
        objective=config.slo_objective,
        window=config.slo_window,
    )


@dataclass
class Admission:
    """One submitted request's fate.

    ``admitted`` requests carry ``response=None`` until a worker serves
    them (:meth:`ServingFrontend.drain` / :meth:`dispatch_one`); shed
    and degraded requests carry their envelope immediately.
    """

    method: str
    path: str
    body: dict | None
    tenant: str
    admitted: bool
    response: ApiResponse | None = None
    degraded: bool = False
    reason: str | None = None  # rate_limited | queue_full (sheds/degrades)
    retry_after: float | None = None
    queued_at: float = 0.0
    service_seconds: float = 0.0  # virtual cost of the dispatch itself
    served_latency: float = 0.0  # queue wait + service (virtual seconds)
    #: Set once a worker has finished dispatching this admission —
    #: waiters (``ServingFrontend.handle``) block on it when a racing
    #: drain took the admission out of the queue before they could.
    done: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def status(self) -> int | None:
        """The response status, once one exists."""
        return self.response.status if self.response is not None else None


def request_key(method: str, path: str, body: dict | None) -> str:
    """Canonical cache key for one request's content."""
    return json.dumps(
        [method.upper(), path, body or {}], sort_keys=True, separators=(",", ":")
    )


def canonical_body(body: dict) -> dict:
    """A response body stripped to its deterministic payload.

    Drops the telemetry attachments — per-phase ``wall_seconds`` is
    physical time and the ``cost`` bill is ledger output — so two
    dispatches of the same request compare bit-identical regardless of
    wall-clock noise or worker count.  Everything else (rankings,
    scores, expansions, verification) is the product and must match
    exactly.
    """
    stripped = {k: v for k, v in body.items() if k not in ("phases", "cost")}
    return copy.deepcopy(stripped)


class ServingFrontend:
    """Admission control, fairness and degradation over one API.

    Thread-safe: many client threads may :meth:`submit` concurrently
    while workers :meth:`drain`.  All admission arithmetic runs against
    ``clock`` — by default the deployment's own virtual clock — so
    every shed/admit decision is deterministic and tests never sleep.

    Example
    -------
    >>> from repro.web.clock import SimulatedClock
    >>> class Echo:
    ...     def handle(self, method, path, body=None):
    ...         return ApiResponse(200, {"echo": path})
    >>> front = ServingFrontend(
    ...     Echo(),
    ...     ServingConfig(
    ...         queue_capacity=2,
    ...         default_policy=TenantPolicy(capacity=1, refill_rate=1.0),
    ...         degraded_serving=False,
    ...         register_slo=False,
    ...     ),
    ...     clock=SimulatedClock(),
    ... )
    >>> front.handle("GET", "/api/v1/health").status
    200
    >>> front.handle("GET", "/api/v1/health").status  # bucket drained
    429
    >>> front.clock.advance(1.0)
    >>> front.handle("GET", "/api/v1/health").status  # refilled
    200
    """

    def __init__(
        self,
        api,
        config: ServingConfig | None = None,
        clock: SimulatedClock | None = None,
    ):
        self._api = api
        self._config = config or ServingConfig()
        sources = getattr(api, "sources", None)
        self._clock = clock or getattr(sources, "clock", None) or SimulatedClock()
        self._obs = getattr(api, "obs", None) or get_obs()
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._queue: deque[Admission] = deque()
        self._warm: OrderedDict[str, dict] = OrderedDict()
        self._counts = {
            "submitted": 0,
            "admitted": 0,
            "served": 0,
            "degraded": 0,
        }
        self._shed: dict[str, int] = {}
        self._tenants: dict[str, dict[str, int]] = {}
        if self._config.register_slo and hasattr(self._obs, "slo"):
            self._obs.slo.add(serving_slo(self._config))
        attach = getattr(api, "attach_serving", None)
        if attach is not None:
            attach(self)

    @property
    def clock(self) -> SimulatedClock:
        """The virtual clock admission runs against."""
        return self._clock

    @property
    def obs(self):
        """The deployment observability the front-end reports into."""
        return self._obs

    @property
    def config(self) -> ServingConfig:
        return self._config

    @property
    def queue_depth(self) -> int:
        """Admitted requests currently waiting for a worker."""
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        tenant: str = "default",
    ) -> Admission:
        """Admit, degrade or shed one request.

        Returns an :class:`Admission`: shed/degraded outcomes carry
        their response immediately; admitted ones queue until a worker
        picks them up via :meth:`drain` (or :meth:`handle` for the
        inline single-request path).
        """
        self._count(tenant, "submitted")
        self._obs.inc("serving_requests_total", tenant=tenant)
        bucket = self._bucket_for(tenant)
        if not bucket.try_acquire():
            retry_after = bucket.time_until_available()
            return self._pressure_response(
                method, path, body, tenant, "rate_limited", 429, retry_after
            )
        admission = Admission(
            method=method.upper(),
            path=path,
            body=body,
            tenant=tenant,
            admitted=True,
            queued_at=self._clock.now(),
        )
        # Capacity check and append are one critical section: N racing
        # submits can never jointly overshoot queue_capacity.  The depth
        # gauge is published under the same lock so it can only ever
        # move monotonically with the queue it describes.
        with self._lock:
            queue_full = len(self._queue) >= self._config.queue_capacity
            if not queue_full:
                self._queue.append(admission)
                self._obs.gauge(QUEUE_DEPTH_GAUGE, len(self._queue))
        if queue_full:
            # The tenant got no service, so it keeps its rate budget:
            # without the refund an overloaded queue would burn tokens
            # and then 429 the very retry the 503 hint asked for.
            bucket.refund()
            return self._pressure_response(
                method,
                path,
                body,
                tenant,
                "queue_full",
                503,
                self._config.shed_retry_after,
            )
        self._count(tenant, "admitted")
        self._obs.inc("serving_admitted_total", tenant=tenant)
        return admission

    def handle(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        tenant: str = "default",
    ) -> ApiResponse:
        """The drop-in replacement for ``MinaretApi.handle``.

        One request straight through admission: shed and degraded
        outcomes return their envelope, admitted ones are served
        immediately (FIFO — anything already queued ahead is served
        first so the single-caller path can never starve the queue).
        If a concurrently running drain already took this admission
        out of the queue, wait for that worker to finish it — handle()
        always returns a real :class:`~repro.api.router.ApiResponse`.
        """
        admission = self.submit(method, path, body, tenant=tenant)
        if not admission.admitted:
            return admission.response
        self.drain()
        admission.done.wait()
        return admission.response

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------

    def drain(self, workers: int = 1) -> list[Admission]:
        """Serve everything queued through ``workers`` pool workers.

        Responses land on each admission (input order preserved) and
        are returned.  Bodies are bit-identical at any worker count —
        the wrapped pipeline guarantees it.
        """
        with self._lock:
            batch = list(self._queue)
            self._queue.clear()
            self._obs.gauge(QUEUE_DEPTH_GAUGE, 0)
        if not batch:
            return []
        executor = create_executor(workers)
        executor.map(self.dispatch_one, batch)
        return batch

    def pop_queued(self) -> Admission | None:
        """Take the queue head (the load harness's worker-pull path)."""
        with self._lock:
            admission = self._queue.popleft() if self._queue else None
            if admission is not None:
                self._obs.gauge(QUEUE_DEPTH_GAUGE, len(self._queue))
        return admission

    def dispatch_one(self, admission: Admission, queue_wait: float = 0.0) -> Admission:
        """Serve one admitted request through the wrapped API.

        ``queue_wait`` is the virtual time the request sat admitted
        (the load harness computes it from its server model); the
        dispatch's own virtual cost is measured with a
        :class:`~repro.web.accounting.RequestScope`, so the served
        latency is deterministic at any worker count or interleaving.
        """
        try:
            with RequestScope(label=f"serving {admission.path}") as scope:
                response = self._api.handle(
                    admission.method, admission.path, admission.body
                )
            admission.response = response
            admission.service_seconds = scope.virtual_seconds
            admission.served_latency = queue_wait + scope.virtual_seconds
            self._count(admission.tenant, "served")
            self._obs.inc(
                "serving_served_total",
                tenant=admission.tenant,
                status=str(response.status),
            )
            self._obs.observe(LATENCY_HISTOGRAM, admission.served_latency)
            self._obs.observe(
                TENANT_LATENCY_HISTOGRAM,
                admission.served_latency,
                tenant=admission.tenant,
            )
            if response.ok and admission.path in DEGRADABLE_PATHS:
                self._warm_store(
                    request_key(admission.method, admission.path, admission.body),
                    response.body,
                )
        finally:
            # Always release waiters (handle() blocks on this even when
            # the wrapped API raised) — a hung client is worse than a
            # propagated exception.
            admission.done.set()
        return admission

    # ------------------------------------------------------------------
    # Pressure handling
    # ------------------------------------------------------------------

    def _pressure_response(
        self,
        method: str,
        path: str,
        body: dict | None,
        tenant: str,
        reason: str,
        status: int,
        retry_after: float,
    ) -> Admission:
        degraded_body = self._degraded_lookup(method, path, body)
        if degraded_body is not None:
            degraded_body["degraded"] = True
            degraded_body["degraded_reason"] = reason
            self._count(tenant, "degraded")
            self._obs.inc("serving_degraded_total", tenant=tenant, reason=reason)
            admission = Admission(
                method=method.upper(),
                path=path,
                body=body,
                tenant=tenant,
                admitted=False,
                degraded=True,
                reason=reason,
                response=ApiResponse(200, degraded_body),
            )
            admission.done.set()
            return admission
        retry_after = round(max(0.0, retry_after), 6)
        with self._lock:
            self._shed[reason] = self._shed.get(reason, 0) + 1
        self._count(tenant, "shed")
        self._obs.inc(
            "serving_shed_total", tenant=tenant, reason=reason, status=str(status)
        )
        envelope = {
            "error": (
                f"tenant {tenant!r} over rate limit"
                if reason == "rate_limited"
                else "admission queue full"
            ),
            "reason": reason,
            "tenant": tenant,
            "retry_after": retry_after,
        }
        admission = Admission(
            method=method.upper(),
            path=path,
            body=body,
            tenant=tenant,
            admitted=False,
            reason=reason,
            retry_after=retry_after,
            response=ApiResponse(status, envelope),
        )
        admission.done.set()
        return admission

    def _degraded_lookup(
        self, method: str, path: str, body: dict | None
    ) -> dict | None:
        """A warm response body to degrade onto, or ``None``.

        Copies the cached body (callers may mutate their response) and
        truncates ranked recommendation lists to ``degraded_top_k`` —
        the bounded-answer-beats-refusal tradeoff.
        """
        if not self._config.degraded_serving or path not in DEGRADABLE_PATHS:
            return None
        key = request_key(method, path, body)
        with self._lock:
            cached = self._warm.get(key)
            if cached is None:
                return None
            self._warm.move_to_end(key)
            warm = copy.deepcopy(cached)
        top_k = self._config.degraded_top_k
        if top_k is not None and isinstance(warm.get("recommendations"), list):
            warm["recommendations"] = warm["recommendations"][:top_k]
        return warm

    def _warm_store(self, key: str, body: dict) -> None:
        if self._config.warm_capacity <= 0:
            return
        with self._lock:
            self._warm[key] = canonical_body(body)
            self._warm.move_to_end(key)
            while len(self._warm) > self._config.warm_capacity:
                self._warm.popitem(last=False)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _bucket_for(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                policy = self._config.policy_for(tenant)
                bucket = TokenBucket(
                    capacity=policy.capacity,
                    refill_rate=policy.refill_rate,
                    clock=self._clock,
                    name=f"tenant:{tenant}",
                )
                self._buckets[tenant] = bucket
            return bucket

    def _count(self, tenant: str, key: str) -> None:
        with self._lock:
            if key in self._counts:
                self._counts[key] += 1
            per_tenant = self._tenants.setdefault(
                tenant,
                {"submitted": 0, "admitted": 0, "served": 0, "shed": 0, "degraded": 0},
            )
            per_tenant[key] = per_tenant.get(key, 0) + 1

    def stats(self) -> dict:
        """The serving snapshot ``GET /api/v1/serving`` reports."""
        with self._lock:
            counts = dict(self._counts)
            shed = dict(self._shed)
            tenants = {
                name: dict(per_tenant)
                for name, per_tenant in sorted(self._tenants.items())
            }
            depth = len(self._queue)
            warm_entries = len(self._warm)
            buckets = dict(self._buckets)
        for name, bucket in sorted(buckets.items()):
            tenants.setdefault(name, {})["available_tokens"] = round(
                bucket.available(), 6
            )
        stats = self._obs.metrics.histogram_stats(LATENCY_HISTOGRAM)
        latency = (
            {q: stats.get(q) for q in ("p50", "p95", "p99")} if stats else {}
        )
        return {
            "queue_depth": depth,
            "queue_capacity": self._config.queue_capacity,
            "warm_entries": warm_entries,
            "shed": shed,
            "latency": latency,
            **counts,
            "tenants": tenants,
        }
