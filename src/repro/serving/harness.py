"""The deterministic load harness: arrivals through the front-end.

:func:`run_load` replays a schedule of open-loop arrivals (from
:mod:`repro.serving.loadgen`) against a
:class:`~repro.serving.frontend.ServingFrontend`, modelling ``workers``
logical servers with a discrete-event loop on the virtual clock:

- at each arrival, any queued request whose server frees up first is
  served (its queue wait is the gap between admission and service
  start, its service cost the request's own deterministic virtual
  seconds measured by request accounting);
- then the arrival itself goes through admission — token bucket,
  bounded queue, degradation — at its scheduled virtual time.

Because service costs come from content-keyed simulated draws and
arrival times from a seeded generator, the whole run — every admit,
shed, degrade, queue wait and served latency — reproduces exactly.
``workers`` changes how fast the queue drains (and therefore what gets
shed), never what any admitted request answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.frontend import Admission, ServingFrontend
from repro.serving.loadgen import Arrival


@dataclass
class LoadReport:
    """One load run's outcome: counts, rates, and latency quantiles."""

    workers: int
    offered: int
    admitted: int
    served: int
    shed: dict[str, int]
    degraded: int
    duration: float  # virtual seconds from first arrival to last completion
    offered_qps: float
    served_qps: float
    shed_rate: float
    latency: dict[str, float]  # p50/p95/p99/mean/max over served latencies
    per_tenant: dict[str, dict[str, int]] = field(default_factory=dict)
    slo: dict | None = None
    records: list[Admission] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready summary (records omitted — they carry live objects)."""
        return {
            "workers": self.workers,
            "offered": self.offered,
            "admitted": self.admitted,
            "served": self.served,
            "shed": dict(self.shed),
            "degraded": self.degraded,
            "duration": round(self.duration, 4),
            "offered_qps": round(self.offered_qps, 4),
            "served_qps": round(self.served_qps, 4),
            "shed_rate": round(self.shed_rate, 4),
            "latency": {k: round(v, 4) for k, v in self.latency.items()},
            "per_tenant": self.per_tenant,
            "slo": self.slo,
        }


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def latency_summary(latencies: list[float]) -> dict[str, float]:
    """p50/p95/p99/mean/max of a latency sample (zeros when empty)."""
    ordered = sorted(latencies)
    if not ordered:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "p50": _quantile(ordered, 0.50),
        "p95": _quantile(ordered, 0.95),
        "p99": _quantile(ordered, 0.99),
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
    }


def run_load(
    frontend: ServingFrontend,
    arrivals: list[Arrival],
    workers: int = 1,
) -> LoadReport:
    """Drive ``arrivals`` through the front-end with ``workers`` servers.

    Returns the full :class:`LoadReport`; ``report.records`` holds every
    request's :class:`~repro.serving.frontend.Admission` in completion
    order for body-level assertions.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    clock = frontend.clock
    free_at = [clock.now()] * workers
    records: list[Admission] = []
    last_completion = clock.now()

    def serve_until(now: float) -> None:
        """Start queued work on every server that frees up by ``now``."""
        nonlocal last_completion
        while True:
            server = min(range(workers), key=lambda i: (free_at[i], i))
            if free_at[server] > now:
                return
            admission = frontend.pop_queued()
            if admission is None:
                return
            start_at = max(free_at[server], admission.queued_at)
            frontend.dispatch_one(
                admission, queue_wait=start_at - admission.queued_at
            )
            free_at[server] = start_at + admission.service_seconds
            last_completion = max(last_completion, free_at[server])
            records.append(admission)

    for arrival in arrivals:
        if arrival.at > clock.now():
            clock.advance(arrival.at - clock.now())
        serve_until(arrival.at)
        admission = frontend.submit(
            arrival.method, arrival.path, arrival.body, tenant=arrival.tenant
        )
        if not admission.admitted:
            records.append(admission)
    serve_until(float("inf"))
    # Let the clock catch up to the modelled completion time so bucket
    # refills and SLO windows see the full span of the run.
    if last_completion > clock.now():
        clock.advance(last_completion - clock.now())

    served = [r for r in records if r.admitted and r.response is not None]
    shed: dict[str, int] = {}
    degraded = 0
    for record in records:
        if record.degraded:
            degraded += 1
        elif not record.admitted and record.reason is not None:
            shed[record.reason] = shed.get(record.reason, 0) + 1
    first_at = arrivals[0].at if arrivals else 0.0
    duration = max(last_completion, arrivals[-1].at if arrivals else 0.0) - first_at
    latencies = [r.served_latency for r in served]
    stats = frontend.stats()
    slo = None
    obs = frontend.obs
    if obs is not None and getattr(obs, "slo", None) is not None and obs.slo.has_specs:
        try:
            status = obs.slo.status("serving-latency")
        except KeyError:
            status = None
        if status is not None:
            slo = status.to_dict()
    total_shed = sum(shed.values())
    return LoadReport(
        workers=workers,
        offered=len(arrivals),
        admitted=len(served),
        served=len(served),
        shed=shed,
        degraded=degraded,
        duration=duration,
        offered_qps=len(arrivals) / duration if duration > 0 else 0.0,
        served_qps=len(served) / duration if duration > 0 else 0.0,
        shed_rate=total_shed / len(arrivals) if arrivals else 0.0,
        latency=latency_summary(latencies),
        per_tenant=stats.get("tenants", {}),
        slo=slo,
        records=records,
    )
