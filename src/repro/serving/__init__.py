"""``repro.serving`` — the admission-controlled serving front-end.

The traffic half of the production story: a bounded admission queue and
per-tenant token-bucket fairness in front of the API
(:mod:`repro.serving.frontend`), seeded open-loop load generation with
multi-tenant mixes and burst windows (:mod:`repro.serving.loadgen`),
and a deterministic discrete-event harness that replays a schedule
through logical servers on the virtual clock
(:mod:`repro.serving.harness`).  Overload sheds with typed 429/503
envelopes carrying ``retry_after`` — or degrades onto warm cached
responses marked ``degraded: true`` — while everything feeds the
:mod:`repro.obs` telemetry plane: queue-depth gauges, shed/admit
counters, served-latency histograms and a serving SLO.
"""

from repro.serving.frontend import (
    DEGRADABLE_PATHS,
    Admission,
    ServingConfig,
    ServingFrontend,
    TenantPolicy,
    canonical_body,
    request_key,
    serving_slo,
)
from repro.serving.harness import LoadReport, latency_summary, run_load
from repro.serving.loadgen import (
    Arrival,
    Burst,
    LoadGenerator,
    RequestTemplate,
    TenantLoad,
    manuscript_templates,
)

__all__ = [
    "DEGRADABLE_PATHS",
    "Admission",
    "Arrival",
    "Burst",
    "LoadGenerator",
    "LoadReport",
    "RequestTemplate",
    "ServingConfig",
    "ServingFrontend",
    "TenantLoad",
    "TenantPolicy",
    "canonical_body",
    "latency_summary",
    "manuscript_templates",
    "request_key",
    "run_load",
    "serving_slo",
]
