"""EXP-QUALITY — recommendation quality vs baselines.

The paper's central (qualitative) claim is that semantic expansion plus
multi-criteria ranking finds better reviewers than naive strategies.
Against the world's ground-truth oracle, averaged over a manuscript
sample:

- MINARET must beat random ordering and citation-only ranking on
  precision@10 / nDCG@10;
- no-expansion (raw keyword match) must retrieve a *smaller candidate
  pool* — the expansion claim — while MINARET keeps comparable or better
  quality.
"""

from __future__ import annotations

import pytest

from repro.baselines.evaluation import CandidateResolver, evaluate_recommendation
from repro.baselines.recommenders import (
    CitationOnlyRecommender,
    MinaretRecommender,
    NoExpansionRecommender,
    RandomRecommender,
)
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts

K = 10
MANUSCRIPTS = 8


def run_system(world, recommender_cls, **kwargs):
    hub = ScholarlyHub.deploy(world)
    recommender = recommender_cls(hub, **kwargs)
    resolver = CandidateResolver(hub)
    precisions, ndcgs, utilities, pool_sizes = [], [], [], []
    for manuscript, author in sample_manuscripts(world, count=MANUSCRIPTS):
        topics = sorted(author.topic_expertise)[:3]
        result = recommender.recommend(manuscript, k=K)
        scores = evaluate_recommendation(
            world,
            resolver,
            result.candidate_ids,
            topics,
            [author.author_id],
            k=K,
        )
        precisions.append(scores.precision)
        ndcgs.append(scores.ndcg)
        utilities.append(scores.mean_utility)
        pool_sizes.append(len(result.result.candidates))
    return precisions, ndcgs, utilities, pool_sizes


def test_bench_quality_vs_baselines(benchmark, bench_world):
    from repro.baselines.stats import bootstrap_mean_ci, paired_bootstrap_pvalue

    def run_all():
        return {
            "minaret": run_system(bench_world, MinaretRecommender),
            "no-expansion": run_system(bench_world, NoExpansionRecommender),
            "citation-only": run_system(bench_world, CitationOnlyRecommender),
            "random": run_system(bench_world, RandomRecommender, seed=0),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    means = {}
    for name, (precisions, ndcgs, utilities, pools) in results.items():
        ndcg_ci = bootstrap_mean_ci(ndcgs)
        means[name] = (
            sum(precisions) / len(precisions),
            ndcg_ci.mean,
            sum(utilities) / len(utilities),
            sum(pools) / len(pools),
        )
        rows.append(
            (
                name,
                f"{means[name][0]:.3f}",
                str(ndcg_ci),
                f"{means[name][2]:.3f}",
                f"{means[name][3]:.1f}",
            )
        )
    print_table(
        f"EXP-QUALITY: mean over {MANUSCRIPTS} manuscripts (k={K}, "
        "nDCG with 95% bootstrap CI)",
        ("system", "P@10", "nDCG@10", "mean utility", "pool size"),
        rows,
    )
    p_vs_random = paired_bootstrap_pvalue(
        results["minaret"][1], results["random"][1]
    )
    print(f"paired bootstrap p(minaret nDCG > random nDCG): {p_vs_random:.3f}")

    minaret = means["minaret"]
    # The paper's claims, as measurable shapes:
    assert minaret[1] > means["random"][1], "MINARET must beat random nDCG"
    assert minaret[2] > means["random"][2], "MINARET must beat random utility"
    assert (
        minaret[1] > means["citation-only"][1]
    ), "multi-criteria must beat citation-only"
    assert (
        minaret[3] > means["no-expansion"][3]
    ), "expansion must widen the candidate pool"
    assert p_vs_random < 0.2, "the random comparison must not be a coin flip"
