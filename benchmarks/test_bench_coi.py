"""EXP-COI — conflict-of-interest detection quality (paper §2.2).

The paper claims COI screening by prior co-authorship and shared
affiliations "as configured by the editor".  The synthetic world gives
us the true conflict set, so detection quality is measurable:

- precision/recall of the pipeline's COI verdicts against the oracle,
  for university-level and country-level configurations;
- the strictness ordering (country ⊃ university) the §2.2 knob implies.

The pipeline sees conflicts only through extracted profiles (partial
coverage, undated Scholar affiliations), so recall < 1.0 is expected and
the measured gap *is* the experimental result.
"""

from __future__ import annotations

import pytest

from repro.core.coi import CoiDetector
from repro.core.config import AffiliationCoiLevel, CoiConfig, PipelineConfig
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from repro.world.model import GroundTruthOracle
from benchmarks.conftest import print_table, sample_manuscripts


def measure_coi(world, level):
    """Run the pipeline with COI disabled, then screen every candidate
    with the detector and compare against the oracle."""
    from repro.baselines.evaluation import CandidateResolver
    from repro.core.filtering import _collect_publication_years

    hub = ScholarlyHub.deploy(world)
    resolver = CandidateResolver(hub)
    oracle = GroundTruthOracle(world)
    config = PipelineConfig()
    detector = CoiDetector(
        CoiConfig(affiliation_level=level), current_year=config.current_year
    )
    true_positive = false_positive = false_negative = true_negative = 0
    for manuscript, author in sample_manuscripts(world, count=6):
        result = Minaret(hub, config=config).recommend(manuscript)
        years = _collect_publication_years(result.candidates)
        for candidate in result.candidates:
            world_id = resolver.world_id(candidate.candidate_id)
            if world_id is None:
                continue
            predicted = detector.check(
                candidate, result.verified_authors, years
            ).has_conflict
            actual = oracle.has_coi(
                world_id,
                [author.author_id],
                include_country=(level is AffiliationCoiLevel.COUNTRY),
            )
            if predicted and actual:
                true_positive += 1
            elif predicted and not actual:
                false_positive += 1
            elif actual:
                false_negative += 1
            else:
                true_negative += 1
    precision = (
        true_positive / (true_positive + false_positive)
        if true_positive + false_positive
        else 1.0
    )
    recall = (
        true_positive / (true_positive + false_negative)
        if true_positive + false_negative
        else 1.0
    )
    flagged = true_positive + false_positive
    return precision, recall, flagged, true_negative + false_negative + flagged


def test_bench_coi_detection_quality(benchmark, bench_world):
    def run():
        return {
            level: measure_coi(bench_world, level)
            for level in (
                AffiliationCoiLevel.UNIVERSITY,
                AffiliationCoiLevel.COUNTRY,
            )
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            level.value,
            f"{precision:.2f}",
            f"{recall:.2f}",
            flagged,
            total,
        )
        for level, (precision, recall, flagged, total) in results.items()
    ]
    print_table(
        "EXP-COI: detection vs oracle",
        ("affiliation level", "precision", "recall", "flagged", "candidates"),
        rows,
    )

    uni_precision, uni_recall, uni_flagged, __ = results[
        AffiliationCoiLevel.UNIVERSITY
    ]
    __, __, country_flagged, __t = results[AffiliationCoiLevel.COUNTRY]
    assert uni_precision >= 0.8, "COI screening must rarely cry wolf"
    assert uni_recall >= 0.5, "COI screening must catch most true conflicts"
    assert country_flagged >= uni_flagged, "country level is strictly stricter"


def test_bench_coi_mentorship_rule(benchmark, bench_world):
    """The advisor/advisee extension: what it adds and whether it is real.

    Enabling the mentorship rule can only add flags over plain
    co-authorship; every extra flag must correspond to a genuine
    early-career/seniority-gap pattern in the world's ground truth.
    """

    def run():
        hub = ScholarlyHub.deploy(bench_world)
        from repro.baselines.evaluation import CandidateResolver
        from repro.core.filtering import _collect_publication_years

        resolver = CandidateResolver(hub)
        base_detector = CoiDetector(
            CoiConfig(affiliation_level=AffiliationCoiLevel.NONE)
        )
        mentorship_detector = CoiDetector(
            CoiConfig(
                affiliation_level=AffiliationCoiLevel.NONE,
                check_coauthorship=False,
                check_mentorship=True,
            )
        )
        extra_flags = []
        screened = 0
        for manuscript, author in sample_manuscripts(bench_world, count=6):
            result = Minaret(hub).recommend(manuscript)
            years = _collect_publication_years(result.candidates)
            for candidate in result.candidates:
                screened += 1
                verdict = mentorship_detector.check(
                    candidate, result.verified_authors, years
                )
                mentorship_reasons = [
                    r
                    for r in verdict.reasons
                    if "advisor" in r or "advisee" in r
                ]
                if not mentorship_reasons:
                    continue
                world_id = resolver.world_id(candidate.candidate_id)
                if world_id is None:
                    continue
                # Ground truth: the flagged pair must really show a gap
                # between first-publication years (the observable the
                # heuristic estimates seniority from).
                candidate_pubs = bench_world.author_publications(world_id)
                author_pubs = bench_world.author_publications(author.author_id)
                if not candidate_pubs or not author_pubs:
                    continue
                gap = abs(
                    min(p.year for p in candidate_pubs)
                    - min(p.year for p in author_pubs)
                )
                extra_flags.append(gap)
        return screened, extra_flags

    screened, extra_flags = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nEXP-COI: mentorship rule flagged {len(extra_flags)} of "
        f"{screened} screenings; seniority gaps of flagged pairs: "
        f"{sorted(extra_flags)}"
    )
    assert all(gap >= 5 for gap in extra_flags), (
        "mentorship flags must correspond to real seniority gaps"
    )
