"""EXP-ASSIGN — batch paper-reviewer assignment (paper §3 extension).

The paper's conference-integration remark implies the batch problem its
references [2, 3] study: assign reviewers across many submissions under
load constraints.  Built from real MINARET recommendation runs over a
batch of manuscripts:

- greedy vs flow-optimal vs random on total suitability, per-paper
  fairness (minimum paper score) and unfilled slots;
- the optimal solver must dominate, greedy must approximate it closely.
"""

from __future__ import annotations

import pytest

from repro.assignment import (
    assess_assignment,
    greedy_assignment,
    optimal_assignment,
    problem_from_results,
    random_assignment,
)
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts

PAPERS = 8
REVIEWERS_PER_PAPER = 3
MAX_LOAD = 2


@pytest.fixture(scope="module")
def problem(bench_world):
    hub = ScholarlyHub.deploy(bench_world)
    minaret = Minaret(hub)
    results = [
        (f"paper-{i}", minaret.recommend(manuscript))
        for i, (manuscript, __) in enumerate(
            sample_manuscripts(bench_world, count=PAPERS)
        )
    ]
    return problem_from_results(
        results,
        reviewers_per_paper=REVIEWERS_PER_PAPER,
        max_load=MAX_LOAD,
        top_k=15,
    )


def test_bench_assignment_solvers(benchmark, problem):
    def solve_all():
        return {
            "greedy": assess_assignment(problem, greedy_assignment(problem)),
            "optimal": assess_assignment(problem, optimal_assignment(problem)),
            "random": assess_assignment(problem, random_assignment(problem, 0)),
        }

    results = benchmark.pedantic(solve_all, rounds=3, iterations=1)
    rows = [
        (
            name,
            f"{quality.total_score:.3f}",
            f"{quality.min_paper_score:.3f}",
            quality.unfilled_slots,
            quality.max_load,
            f"{quality.load_stddev:.2f}",
        )
        for name, quality in results.items()
    ]
    print_table(
        f"EXP-ASSIGN: {PAPERS} papers x {REVIEWERS_PER_PAPER} reviewers, "
        f"load cap {MAX_LOAD}",
        ("solver", "total score", "min paper", "unfilled", "max load", "load stddev"),
        rows,
    )

    optimal = results["optimal"]
    greedy = results["greedy"]
    random_quality = results["random"]
    assert optimal.unfilled_slots <= greedy.unfilled_slots
    assert optimal.unfilled_slots <= random_quality.unfilled_slots
    if optimal.unfilled_slots == greedy.unfilled_slots:
        assert optimal.total_score >= greedy.total_score - 1e-6
    assert optimal.total_score >= random_quality.total_score - 1e-6
    assert optimal.max_load <= MAX_LOAD


def test_bench_assignment_optimal_scaling(benchmark, problem):
    """Flow-solver latency on the full instance (the expensive solver)."""
    assignment = benchmark(optimal_assignment, problem)
    quality = assess_assignment(problem, assignment)
    print(
        f"\nEXP-ASSIGN: optimal solver on "
        f"{len(problem.papers())} papers x {len(problem.reviewers())} reviewers "
        f"-> total {quality.total_score:.3f}, {quality.unfilled_slots} unfilled"
    )
    assert quality.max_load <= MAX_LOAD
