"""EXP-ROBUST — the pipeline under a degrading scholarly web.

The on-the-fly design makes every recommendation depend on six remote
services.  This experiment sweeps the per-request transient-failure
probability and measures what the retry/skip machinery delivers:

- whether the run completes and how many reviewers it still returns;
- output fidelity vs the healthy run (Jaccard of recommended sets);
- the retry bill (simulated latency inflation).
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Minaret
from repro.scholarly.records import SourceName
from repro.scholarly.registry import ScholarlyHub, SourceBehaviour
from repro.web.crawler import RetryPolicy
from benchmarks.conftest import print_table, sample_manuscripts

FAILURE_RATES = (0.0, 0.1, 0.3, 0.5)


def flaky_behaviour(failure_probability):
    return {
        source: SourceBehaviour(
            latency_base=0.05,
            latency_jitter=0.0,
            failure_probability=failure_probability,
        )
        for source in SourceName
    }


def test_bench_robustness_sweep(benchmark, bench_world):
    manuscript, __ = sample_manuscripts(bench_world, count=1)[0]

    def sweep():
        rows = []
        baseline_ids: set[str] | None = None
        for rate in FAILURE_RATES:
            hub = ScholarlyHub.deploy(
                bench_world,
                behaviour=flaky_behaviour(rate),
                retry=RetryPolicy(max_attempts=6, base_backoff=0.02),
            )
            result = Minaret(hub).recommend(manuscript)
            ids = {s.candidate.candidate_id for s in result.ranked}
            if baseline_ids is None:
                baseline_ids = ids
            overlap = (
                len(ids & baseline_ids) / len(ids | baseline_ids)
                if ids | baseline_ids
                else 1.0
            )
            faults = sum(s.faults for s in hub.http.stats.values())
            rows.append(
                (
                    f"{rate:.0%}",
                    len(result.ranked),
                    f"{overlap:.2f}",
                    faults,
                    hub.total_requests(),
                    f"{hub.total_latency():.1f}s",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "EXP-ROBUST: one recommendation vs per-request failure rate "
        "(6 retry attempts)",
        ("failure rate", "recommended", "overlap vs healthy", "faults",
         "requests", "sim latency"),
        rows,
    )

    # The run must complete at every failure rate...
    assert all(int(row[1]) > 0 for row in rows)
    # ...with high output fidelity up to 30% failures...
    assert float(rows[2][2]) >= 0.9
    # ...while the retry bill grows monotonically in requests.
    requests = [int(row[4]) for row in rows]
    assert requests == sorted(requests)
