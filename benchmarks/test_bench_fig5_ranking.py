"""FIG5 — the ranked reviewer list with per-component scores (Fig. 5).

The demo's result screen shows each recommended reviewer's total score,
expandable into the five component scores.  Regenerated here as the
top-10 table for the demo manuscript, plus the §2.3 worked example
(a reviewer covering both manuscript keywords outranks one covering
a single keyword).
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts


def test_bench_fig5_ranked_table(benchmark, bench_world):
    manuscript, __ = sample_manuscripts(bench_world, count=1)[0]
    hub = ScholarlyHub.deploy(bench_world)
    minaret = Minaret(hub)
    result = minaret.recommend(manuscript)

    def rerank():
        return minaret.recommend(manuscript)

    benchmark.pedantic(rerank, rounds=3, iterations=1)

    rows = [
        (
            scored.name,
            f"{scored.total_score:.3f}",
            f"{scored.breakdown.topic_coverage:.2f}",
            f"{scored.breakdown.scientific_impact:.2f}",
            f"{scored.breakdown.recency:.2f}",
            f"{scored.breakdown.review_experience:.2f}",
            f"{scored.breakdown.outlet_familiarity:.2f}",
        )
        for scored in result.top(10)
    ]
    print_table(
        f"FIG5: recommended reviewers for {manuscript.title!r}",
        ("name", "total", "topic", "impact", "recency", "reviews", "outlet"),
        rows,
    )

    assert len(result.ranked) >= 5
    scores = [s.total_score for s in result.ranked]
    assert scores == sorted(scores, reverse=True)
    assert all(0.0 <= s <= 1.0 for s in scores)
    # Score breakdowns must be present and bounded for the UI drill-down.
    for scored in result.top(10):
        for value in scored.breakdown.as_dict().values():
            assert 0.0 <= value <= 1.0


def test_bench_fig5_coverage_example(benchmark, bench_world):
    """§2.3's example: covering more manuscript keywords ranks higher."""
    from repro.core.models import Candidate, Manuscript, ManuscriptAuthor
    from repro.core.ranking import Ranker
    from repro.core.config import RankingWeights
    from repro.ontology.expansion import ExpandedKeyword
    from repro.scholarly.records import MergedProfile

    manuscript = Manuscript(
        title="T",
        keywords=("Semantic Web", "Big Data"),
        authors=(ManuscriptAuthor("A"),),
    )
    expansions = [
        ExpandedKeyword("Semantic Web", "semantic-web", 1.0, "Semantic Web", 0),
        ExpandedKeyword("Big Data", "big-data", 1.0, "Big Data", 0),
    ]

    def make(candidate_id, interests):
        return Candidate(
            candidate_id=candidate_id,
            name=candidate_id,
            profile=MergedProfile(
                canonical_name=candidate_id,
                source_ids=(),
                interests=interests,
            ),
        )

    reviewer_one = make("r1", ("Semantic Web", "Ontologies", "RDF"))
    reviewer_two = make("r2", ("Semantic Web", "Big Data"))
    ranker = Ranker(PipelineConfig(weights=RankingWeights(1, 0, 0, 0, 0)))

    ranked = benchmark(ranker.rank, manuscript, [reviewer_one, reviewer_two], expansions)
    print_table(
        "FIG5: paper's topic-coverage example",
        ("reviewer", "interests", "coverage"),
        [
            (s.candidate.candidate_id,
             ", ".join(s.candidate.profile.interests),
             f"{s.breakdown.topic_coverage:.2f}")
            for s in ranked
        ],
    )
    assert ranked[0].candidate.candidate_id == "r2"
