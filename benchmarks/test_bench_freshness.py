"""EXP-FRESHNESS — the on-the-fly design claim, tested directly.

Abstract: "The framework extracts the required information ... on-the-fly
which ensures the output recommendations to be dynamic and based on
up-to-date information."

Scenario: between two searches for the same manuscript, a scholar
*pivots into the manuscript's area* — new expertise, a burst of fresh
publications, newly registered interests (the services re-index).  A
pipeline running on-the-fly (cache TTL 0) must surface the rising star
in the second search; a pipeline answering from an immortal response
cache must miss them.  That difference is the freshness value the paper
buys with its request volume (quantified in EXP-SCALE).
"""

from __future__ import annotations

import pytest

from repro.core.models import Manuscript, ManuscriptAuthor
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from repro.world.config import WorldConfig
from repro.world.dynamics import WorldDynamics
from repro.world.generator import generate_world
from benchmarks.conftest import print_table

TOPIC = "rdf"


def build_scenario():
    """World + manuscript + a scholar about to pivot into the topic."""
    world = generate_world(WorldConfig(author_count=300, seed=99))
    ontology = world.ontology
    keywords = (ontology.topic(TOPIC).label, "Query Processing")
    submitting = next(
        a
        for a in world.authors.values()
        if len(world.authors_by_name(a.name)) == 1
        and TOPIC not in a.topic_expertise
    )
    manuscript = Manuscript(
        title="Fresh Results on RDF",
        keywords=keywords,
        authors=(
            ManuscriptAuthor(
                submitting.name, submitting.affiliations[-1].institution
            ),
        ),
    )
    # The rising star: currently off-topic, soon to pivot.  Must be
    # scholar-covered (interests live there), must not share a name or
    # conflict with the submitting author.
    star = next(
        a
        for a in world.authors.values()
        if TOPIC not in a.topic_expertise
        and len(world.authors_by_name(a.name)) == 1
        and a.author_id != submitting.author_id
        and a.author_id not in world.coauthors.get(submitting.author_id, set())
        and not {x.institution for x in a.affiliations}
        & {x.institution for x in submitting.affiliations}
    )
    return world, manuscript, star


def run_two_searches(world, manuscript, star, cache_ttl):
    """Search, evolve the world, search again; report the star's visibility."""
    hub = ScholarlyHub.deploy(world, cache_ttl=cache_ttl)
    minaret = Minaret(hub)
    first = minaret.recommend(manuscript)
    star_user = hub.scholar_service.user_of(star.author_id)

    dynamics = WorldDynamics(world, seed=5)
    dynamics.pivot_author(star.author_id, TOPIC, expertise=0.95)
    dynamics.publish(star.author_id, TOPIC, 2019, count=6)
    hub.refresh_services()
    star_user = hub.scholar_service.user_of(star.author_id) or star_user

    second = minaret.recommend(manuscript)
    ranked_ids = [s.candidate.candidate_id for s in second.ranked]
    visible = star_user in {c.candidate_id for c in second.candidates}
    rank = ranked_ids.index(star_user) + 1 if star_user in ranked_ids else None
    return first, second, visible, rank


def test_bench_freshness_rising_star(benchmark):
    def scenario():
        results = {}
        for label, ttl in (("on-the-fly (TTL 0)", 0.0), ("immortal cache", None)):
            world, manuscript, star = build_scenario()
            results[label] = run_two_searches(world, manuscript, star, ttl)
        return results

    results = benchmark.pedantic(scenario, rounds=1, iterations=1)

    rows = []
    for label, (first, second, visible, rank) in results.items():
        rows.append(
            (
                label,
                "yes" if visible else "no",
                rank if rank is not None else "-",
                len(second.candidates),
            )
        )
    print_table(
        "EXP-FRESHNESS: is the pivoted 'rising star' found on the re-search?",
        ("mode", "star retrieved", "star rank", "candidates"),
        rows,
    )

    __, __s, fresh_visible, fresh_rank = results["on-the-fly (TTL 0)"]
    __f, __s2, stale_visible, __r = results["immortal cache"]
    assert fresh_visible, "on-the-fly mode must see the new evidence"
    pool = len(results["on-the-fly (TTL 0)"][1].ranked)
    assert fresh_rank is not None and fresh_rank <= max(10, pool // 2), (
        "six fresh papers on one of two keywords must place the star in "
        "the upper half of the ranking"
    )
    assert not stale_visible, (
        "the immortal cache must keep answering from the stale snapshot"
    )
