"""EXP-OBS — observability overhead stays under 10% wall-clock.

The full instrumentation set (spans, metrics, ring sink *and* a JSONL
file sink) runs against the same recommendation workload as a disabled
instance whose every call is an early-returning no-op.  The workload
gets realistic I/O-shaped waits via ``wall_latency_scale`` (the
EXP-CONC technique): the paper's pipeline is network-bound, so that is
the wall time the overhead budget is a fraction of — and it keeps the
ratio stable on a noisy machine, where a purely CPU-bound ~70ms run
would drown a 10% budget in scheduler jitter.  Each mode is timed
min-of-3, interleaved so machine drift hits both modes equally.  The
outputs must be bit-identical — instrumentation is read-only — and the
enabled run must cost at most 10% more wall time.
"""

from __future__ import annotations

import time

from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.obs import Observability, use
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts

REPETITIONS = 3
MAX_OVERHEAD = 0.10
#: Fraction of each request's virtual latency really slept (EXP-CONC
#: uses 0.05; the ~58 virtual seconds of this workload make 0.01 a
#: ~300ms wall run at two workers).
WALL_SCALE = 0.01


def _signature(result):
    return [(s.candidate.candidate_id, s.total_score) for s in result.ranked]


def _run(world, manuscript, obs):
    hub = ScholarlyHub.deploy(world, wall_latency_scale=WALL_SCALE)
    with use(obs):
        minaret = Minaret(hub, config=PipelineConfig(workers=2))
        start = time.perf_counter()
        result = minaret.recommend(manuscript)
        elapsed = time.perf_counter() - start
    return elapsed, _signature(result)


def test_bench_observability_overhead(bench_world, tmp_path):
    manuscript = sample_manuscripts(bench_world, count=1)[0][0]
    timings = {"disabled": [], "enabled": []}
    signatures = {}
    spans = events = 0
    # Warm-up run so import/JIT-ish first-touch costs hit neither mode.
    _run(bench_world, manuscript, Observability.disabled())
    for repetition in range(REPETITIONS):
        elapsed, signature = _run(
            bench_world, manuscript, Observability.disabled()
        )
        timings["disabled"].append(elapsed)
        signatures["disabled"] = signature

        obs = Observability()
        sink = obs.add_jsonl_sink(tmp_path / f"events-{repetition}.jsonl")
        try:
            elapsed, signature = _run(bench_world, manuscript, obs)
        finally:
            sink.close()
        timings["enabled"].append(elapsed)
        signatures["enabled"] = signature
        spans = len(obs.tracer.finished())
        events = len(obs.ring.events())

    best_disabled = min(timings["disabled"])
    best_enabled = min(timings["enabled"])
    overhead = best_enabled / best_disabled - 1.0
    print_table(
        "EXP-OBS instrumentation overhead (one recommendation, workers=2)",
        ("mode", "best wall", "spans", "events"),
        [
            ("disabled", f"{best_disabled * 1000:.1f}ms", 0, 0),
            ("enabled+jsonl", f"{best_enabled * 1000:.1f}ms", spans, events),
            ("overhead", f"{overhead * 100:+.1f}%", "", ""),
        ],
    )
    assert signatures["enabled"] == signatures["disabled"]
    assert spans > 0 and events > 0
    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% budget"
    )
