"""EXP-OBS — full-telemetry-plane overhead stays under 10% wall-clock.

The full instrumentation set — spans, metrics, ring sink, a JSONL file
sink, per-host SLO specs ticking every request, a per-request cost
ledger and tail-based trace retention — runs against the same
recommendation workload as a disabled instance whose every call is an
early-returning no-op.  The workload gets realistic I/O-shaped waits
via ``wall_latency_scale`` (the EXP-CONC technique): the paper's
pipeline is network-bound, so that is the wall time the overhead budget
is a fraction of — and it keeps the ratio stable on a noisy machine,
where a purely CPU-bound ~70ms run would drown a 10% budget in
scheduler jitter.  Each mode is timed min-of-3, interleaved so machine
drift hits both modes equally.  The outputs must be bit-identical —
instrumentation is read-only — and the enabled run must cost at most
10% more wall time.

A second benchmark bursts 500 synthetic requests through tail-based
retention (faults on ~5% of them) and micro-times the ledger's charge
path.  Both write ``BENCH_obs.json`` at the repo root, uploaded by CI
like the other benchmark artifacts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.obs import (
    Observability,
    RequestLedger,
    SloSpec,
    TailRetentionPolicy,
    default_http_slos,
    use,
)
from repro.obs.ledger import charge_http
from repro.scholarly.registry import ScholarlyHub
from repro.web.clock import SimulatedClock
from repro.web.faults import FaultPolicy
from repro.web.http import LatencyModel, ServiceUnavailableError, SimulatedHttpClient
from benchmarks.conftest import print_table, sample_manuscripts

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

REPETITIONS = 3
MAX_OVERHEAD = 0.10
#: Fraction of each request's virtual latency really slept (EXP-CONC
#: uses 0.05; the ~58 virtual seconds of this workload make 0.01 a
#: ~300ms wall run at two workers).
WALL_SCALE = 0.01

BURST_REQUESTS = 500
BURST_FAULT_RATE = 0.05
LEDGER_CHARGES = 20_000


def _signature(result):
    return [(s.candidate.candidate_id, s.total_score) for s in result.ranked]


def _merge_output(section: str, payload: dict) -> None:
    record = {}
    if OUTPUT.exists():
        record = json.loads(OUTPUT.read_text(encoding="utf-8"))
    record[section] = payload
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT.name} [{section}]")


def _full_plane(obs, hub, tmp_path, tag):
    """Arm every telemetry subsystem this PR ships on ``obs``."""
    sink = obs.add_jsonl_sink(tmp_path / f"events-{tag}.jsonl")
    obs.tracer.enable_tail_retention(
        TailRetentionPolicy(latency_threshold=1e9)  # healthy => evict
    )
    obs.slo.bind_clock(hub.clock)
    for spec in default_http_slos(hub.http.hosts()):
        obs.slo.add(spec)
    obs.slo.add(
        SloSpec(
            name="pipeline",
            metric="http_request_latency_seconds",
            threshold=2.0,
            objective=0.9,
            window=600.0,
        )
    )
    return sink


def _run(world, manuscript, obs, plane_hooks=None):
    hub = ScholarlyHub.deploy(world, wall_latency_scale=WALL_SCALE)
    sink = plane_hooks(obs, hub) if plane_hooks is not None else None
    try:
        with use(obs):
            minaret = Minaret(hub, config=PipelineConfig(workers=2))
            start = time.perf_counter()
            if obs.enabled:
                with RequestLedger("bench"):
                    result = minaret.recommend(manuscript)
                obs.slo.tick()
            else:
                result = minaret.recommend(manuscript)
            elapsed = time.perf_counter() - start
    finally:
        if sink is not None:
            sink.close()
    return elapsed, _signature(result)


def test_bench_observability_overhead(bench_world, tmp_path):
    manuscript = sample_manuscripts(bench_world, count=1)[0][0]
    timings = {"disabled": [], "enabled": []}
    signatures = {}
    spans = events = 0
    verdict = None
    # Warm-up run so import/JIT-ish first-touch costs hit neither mode.
    _run(bench_world, manuscript, Observability.disabled())
    for repetition in range(REPETITIONS):
        elapsed, signature = _run(
            bench_world, manuscript, Observability.disabled()
        )
        timings["disabled"].append(elapsed)
        signatures["disabled"] = signature

        obs = Observability()
        elapsed, signature = _run(
            bench_world,
            manuscript,
            obs,
            plane_hooks=lambda o, hub, r=repetition: _full_plane(
                o, hub, tmp_path, r
            ),
        )
        timings["enabled"].append(elapsed)
        signatures["enabled"] = signature
        spans = len(obs.tracer.finished()) + (
            obs.tracer.retention_stats()["evicted_spans"]
        )
        events = len(obs.ring.events())
        verdict = obs.slo.verdict()

    best_disabled = min(timings["disabled"])
    best_enabled = min(timings["enabled"])
    overhead = best_enabled / best_disabled - 1.0
    print_table(
        "EXP-OBS full telemetry plane overhead (one recommendation, workers=2)",
        ("mode", "best wall", "spans", "events", "verdict"),
        [
            ("disabled", f"{best_disabled * 1000:.1f}ms", 0, 0, "-"),
            (
                "full plane",
                f"{best_enabled * 1000:.1f}ms",
                spans,
                events,
                verdict,
            ),
            ("overhead", f"{overhead * 100:+.1f}%", "", "", ""),
        ],
    )
    _merge_output(
        "overhead",
        {
            "disabled_ms": round(best_disabled * 1000, 3),
            "full_plane_ms": round(best_enabled * 1000, 3),
            "overhead_pct": round(overhead * 100, 2),
            "budget_pct": MAX_OVERHEAD * 100,
            "spans": spans,
            "events": events,
            "slo_verdict": verdict,
        },
    )
    assert signatures["enabled"] == signatures["disabled"]
    assert spans > 0 and events > 0
    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% budget"
    )


def test_bench_retention_memory_and_ledger_cost():
    host = "burst.example"
    clock = SimulatedClock()
    client = SimulatedHttpClient(clock)
    client.register_host(
        host, lambda req: {}, latency=LatencyModel(base=0.5, jitter=0.0)
    )
    client.set_fault_policy(
        host, FaultPolicy(failure_probability=BURST_FAULT_RATE, seed=13)
    )

    # --- tail retention under a 500-request synthetic burst ------------
    obs = Observability()
    obs.tracer.enable_tail_retention(TailRetentionPolicy(latency_threshold=1e9))
    with use(obs):
        for index in range(BURST_REQUESTS):
            try:
                with obs.span("request", clock=clock, i=index):
                    client.get(host, f"/item/{index}")
            except ServiceUnavailableError:
                pass
    stats = obs.tracer.retention_stats()
    retained_spans = len(obs.tracer.finished())
    total_spans = retained_spans + stats["evicted_spans"]
    kept_fraction = retained_spans / total_spans if total_spans else 0.0

    # --- ledger charge-path micro-cost ---------------------------------
    with RequestLedger("bench"):
        start = time.perf_counter()
        for index in range(LEDGER_CHARGES):
            charge_http(host, 200, 0.001)
        active_ns = (time.perf_counter() - start) / LEDGER_CHARGES * 1e9
    start = time.perf_counter()
    for index in range(LEDGER_CHARGES):
        charge_http(host, 200, 0.001)  # nobody listening: the fast path
    idle_ns = (time.perf_counter() - start) / LEDGER_CHARGES * 1e9

    print_table(
        f"EXP-OBS retention burst ({BURST_REQUESTS} requests, "
        f"{BURST_FAULT_RATE:.0%} faults) and ledger charge cost",
        ("measure", "value"),
        [
            ("retained traces", stats["retained_traces"]),
            ("evicted traces", stats["evicted_traces"]),
            ("retained spans", retained_spans),
            ("span memory kept", f"{kept_fraction:.1%}"),
            ("charge (active ledger)", f"{active_ns:.0f}ns"),
            ("charge (no ledger)", f"{idle_ns:.0f}ns"),
        ],
    )
    _merge_output(
        "retention_and_ledger",
        {
            "burst_requests": BURST_REQUESTS,
            "fault_rate": BURST_FAULT_RATE,
            "retained_traces": stats["retained_traces"],
            "evicted_traces": stats["evicted_traces"],
            "retained_spans": retained_spans,
            "evicted_spans": stats["evicted_spans"],
            "span_memory_kept_pct": round(kept_fraction * 100, 2),
            "ledger_charge_active_ns": round(active_ns, 1),
            "ledger_charge_idle_ns": round(idle_ns, 1),
        },
    )
    # The acceptance bar: >=90% of healthy traces evicted.  Here every
    # healthy trace is evicted, so retained == the faulted ones.
    healthy = BURST_REQUESTS - stats["retained_traces"]
    assert stats["evicted_traces"] >= 0.9 * healthy
    assert 0 < stats["retained_traces"] < 0.2 * BURST_REQUESTS
    # The no-listener fast path must be much cheaper than a real charge.
    assert idle_ns < active_ns
