"""Shared fixtures and helpers for the benchmark harness.

Every benchmark prints the table/series it regenerates (run with ``-s``
to see them) and times its central operation with pytest-benchmark.
Worlds are session-scoped: generation cost must not pollute timings.
"""

from __future__ import annotations

import pytest

from repro.core.models import Manuscript, ManuscriptAuthor
from repro.scholarly.registry import ScholarlyHub
from repro.world.config import WorldConfig
from repro.world.generator import generate_world


@pytest.fixture(scope="session")
def bench_world():
    """The default benchmark world (~300 scholars)."""
    return generate_world(WorldConfig(author_count=300, seed=42))


@pytest.fixture(scope="session")
def big_world():
    """A larger world for the Fig. 1 shape (more yearly signal)."""
    return generate_world(WorldConfig(author_count=800, seed=42))


@pytest.fixture()
def bench_hub(bench_world):
    return ScholarlyHub.deploy(bench_world)


def sample_manuscripts(world, count=8, keyword_count=3):
    """Deterministic manuscripts authored by unambiguous world scholars.

    Returns ``(manuscript, author)`` pairs — the author object gives the
    evaluation its topic ids and world id.
    """
    pairs = []
    for author in world.authors.values():
        if len(pairs) >= count:
            break
        if len(world.authors_by_name(author.name)) > 1:
            continue
        if len(author.topic_expertise) < 2:
            continue
        topics = sorted(author.topic_expertise)[:keyword_count]
        keywords = tuple(world.ontology.topic(t).label for t in topics)
        affiliation = author.affiliations[-1]
        journals = world.journal_venues()
        manuscript = Manuscript(
            title=f"A Study of {keywords[0]}",
            keywords=keywords,
            authors=(
                ManuscriptAuthor(
                    name=author.name,
                    affiliation=affiliation.institution,
                    country=affiliation.country,
                ),
            ),
            target_venue=journals[0].name if journals else "",
        )
        pairs.append((manuscript, author))
    return pairs


def print_table(title, headers, rows):
    """Uniform fixed-width table printer for all benchmark reports."""
    widths = [
        max(len(str(h)), *(len(str(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
