"""EXP-EXPANSION — semantic keyword expansion (paper §2.1).

Regenerates: the paper's worked example ("RDF" → "Semantic Web",
"Linked Open Data", "SPARQL" with similarity scores sc ∈ [0,1]), the
expansion table for the demo manuscript keywords, and a recall check of
expansion against the ontology's own neighbourhood ground truth.
Times: expansion throughput on the curated and a large synthetic
ontology.
"""

from __future__ import annotations

import pytest

from repro.ontology.builder import SyntheticOntologyConfig, build_synthetic_ontology
from repro.ontology.data import build_seed_ontology
from repro.ontology.expansion import ExpansionConfig, KeywordExpander
from benchmarks.conftest import print_table

DEMO_KEYWORDS = ["RDF", "Query Processing", "Big Data"]


def test_bench_expansion_paper_example(benchmark):
    expander = KeywordExpander(build_seed_ontology())
    results = benchmark(expander.expand, ["RDF"])

    print_table(
        "EXP-EXPANSION: expanding 'RDF' (paper §2.1 example)",
        ("keyword", "sc", "depth"),
        [(e.keyword, f"{e.score:.2f}", e.depth) for e in results],
    )
    labels = {e.keyword for e in results}
    assert {"Semantic Web", "Linked Open Data", "SPARQL"} <= labels
    assert all(0.0 <= e.score <= 1.0 for e in results)


def test_bench_expansion_demo_keywords(benchmark):
    expander = KeywordExpander(build_seed_ontology())
    results = benchmark(expander.expand, DEMO_KEYWORDS)
    print(f"\nEXP-EXPANSION: {len(DEMO_KEYWORDS)} demo keywords expand to "
          f"{len(results)} scored keywords")
    assert len(results) > 3 * len(DEMO_KEYWORDS)


def test_bench_expansion_neighbourhood_recall(benchmark):
    """Depth-2 expansion must recover the full 1-hop neighbourhood."""
    ontology = build_seed_ontology()
    expander = KeywordExpander(ontology)
    config = ExpansionConfig(max_depth=2, min_score=0.0,
                             max_results_per_keyword=1000)

    def recall_over_sample():
        topics = sorted(t.topic_id for t in ontology.topics())[:50]
        total, recovered = 0, 0
        for topic_id in topics:
            neighbours = {t.topic_id for t, __ in ontology.neighbors(topic_id)}
            if not neighbours:
                continue
            label = ontology.topic(topic_id).label
            expanded = {e.topic_id for e in expander.expand([label], config)}
            total += len(neighbours)
            recovered += len(neighbours & expanded)
        return recovered, total

    recovered, total = benchmark.pedantic(recall_over_sample, rounds=1, iterations=1)
    recall = recovered / total
    print(f"\nEXP-EXPANSION: 1-hop neighbourhood recall at depth 2 = "
          f"{recall:.3f} ({recovered}/{total})")
    assert recall == 1.0


def test_bench_expansion_synthetic_scale(benchmark):
    """Expansion latency on a CSO-scale (10k topic) synthetic ontology."""
    ontology = build_synthetic_ontology(
        SyntheticOntologyConfig(topic_count=10_000, max_depth=6, branching=8, seed=1)
    )
    assert len(ontology) >= 9_000, "builder must reach CSO scale"
    label = ontology.topic(f"topic-{len(ontology) // 2}").label
    expander = KeywordExpander(ontology)

    results = benchmark(expander.expand, [label])
    print(f"\nEXP-EXPANSION: 10k-topic ontology, {len(results)} expansions")
    assert results
