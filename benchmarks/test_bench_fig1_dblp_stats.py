"""FIG1 — DBLP new records per year by publication type (paper Fig. 1).

The paper motivates the reviewer-selection problem with DBLP's growth
curve: records per year rise steeply, journal articles alone reaching
~120K/year by 2018 out of >3.8M total records.  Our synthetic world is
smaller, but the *shape* must hold: strong monotone-ish growth, with
both journal and conference output rising.

Regenerates: the records-per-year-by-type table, queried through the
simulated DBLP statistics endpoint (as a real client would).
"""

from __future__ import annotations

import pytest

from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table


@pytest.fixture(scope="module")
def stats(big_world):
    hub = ScholarlyHub.deploy(big_world)
    return hub.dblp.records_per_year()


def test_bench_fig1_records_per_year(benchmark, big_world, stats):
    hub = ScholarlyHub.deploy(big_world)
    result = benchmark(hub.dblp.records_per_year)
    assert result == stats

    rows = [
        (year, by_type.get("journal", 0), by_type.get("conference", 0),
         by_type.get("journal", 0) + by_type.get("conference", 0))
        for year, by_type in sorted(stats.items())
    ]
    print_table(
        "FIG1: DBLP new records per year",
        ("year", "journal", "conference", "total"),
        rows,
    )

    # Shape assertions: growth, as in the paper's figure.
    years = sorted(stats)
    thirds = len(years) // 3
    early = sum(sum(stats[y].values()) for y in years[:thirds])
    late = sum(sum(stats[y].values()) for y in years[-thirds:])
    assert late > 2 * early, "records per year must grow steeply"
    # Journal output specifically grows (the paper's 120K/yr claim).
    early_journals = sum(stats[y].get("journal", 0) for y in years[:thirds])
    late_journals = sum(stats[y].get("journal", 0) for y in years[-thirds:])
    assert late_journals > early_journals


def test_bench_fig1_total_volume(benchmark, big_world):
    """The total-records claim (paper: >3.8M indexed publications)."""

    def total_records():
        return sum(
            sum(by_type.values())
            for by_type in big_world.dblp_records_per_year().values()
        )

    total = benchmark(total_records)
    assert total == len(big_world.publications)
    print(f"\nFIG1: total indexed records = {total} "
          f"(paper: 3.8M at real-world scale)")
