"""EXP-TURNAROUND — does the ranking configuration move calendar time?

The paper's introduction: a poorly chosen reviewer "might not reply to
the invitation in a timely manner, simply reject it or accept the
invite and send the review very late.  Such selections may increase
the turnaround time."  The abstract accordingly lists "likelihood to
accept and timely return his review" among the ranking criteria.

We run three ranking configurations through the review-process
simulator (invitations in rank order, hidden responsiveness decides):

- the paper's default weights;
- a turnaround-focused profile (timeliness + review experience up);
- citation-only ranking (the "invite the famous" strategy the intro
  warns about).

Measured: mean decision turnaround (days), invitations needed, review
quality.
"""

from __future__ import annotations

import pytest

from repro.baselines.evaluation import CandidateResolver
from repro.core.config import ImpactMetric, PipelineConfig, RankingWeights
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from repro.simulation import ProcessConfig, ReviewProcessSimulator
from benchmarks.conftest import print_table, sample_manuscripts

PROFILES = {
    "default (paper §2.3)": RankingWeights(),
    "turnaround-focused": RankingWeights(
        topic_coverage=0.30,
        scientific_impact=0.05,
        recency=0.10,
        review_experience=0.20,
        outlet_familiarity=0.05,
        timeliness=0.30,
    ),
    "citation-only": RankingWeights(0.0, 1.0, 0.0, 0.0, 0.0),
}


def simulate_profile(world, weights, seeds=range(4)):
    hub = ScholarlyHub.deploy(world)
    resolver = CandidateResolver(hub)
    config = PipelineConfig(weights=weights, impact_metric=ImpactMetric.CITATIONS)
    minaret = Minaret(hub, config=config)
    turnarounds, invitations, qualities = [], [], []
    for manuscript, author in sample_manuscripts(world, count=5):
        result = minaret.recommend(manuscript)
        ranked_world_ids = resolver.world_ids(
            [s.candidate.candidate_id for s in result.ranked]
        )
        topics = sorted(author.topic_expertise)[:3]
        for seed in seeds:
            simulator = ReviewProcessSimulator(
                world, config=ProcessConfig(reviews_needed=3), seed=seed
            )
            process = simulator.run(ranked_world_ids, topics)
            if process.completed:
                turnarounds.append(process.turnaround_days)
            invitations.append(process.invitations_sent())
            qualities.append(process.mean_review_quality())
    return (
        sum(turnarounds) / len(turnarounds) if turnarounds else float("inf"),
        sum(invitations) / len(invitations),
        sum(qualities) / len(qualities),
    )


def test_bench_turnaround_by_ranking_profile(benchmark, bench_world):
    def run_all():
        return {
            name: simulate_profile(bench_world, weights)
            for name, weights in PROFILES.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (name, f"{days:.1f}", f"{invites:.1f}", f"{quality:.3f}")
        for name, (days, invites, quality) in results.items()
    ]
    print_table(
        "EXP-TURNAROUND: review process by ranking profile "
        "(3 reviews needed, mean over 5 manuscripts x 4 process seeds)",
        ("ranking profile", "turnaround days", "invitations", "review quality"),
        rows,
    )

    turnaround_focused = results["turnaround-focused"]
    citation_only = results["citation-only"]
    # The intro's claim, measured: timeliness-aware ranking returns
    # decisions faster than fame-chasing.
    assert turnaround_focused[0] < citation_only[0]
    # And it does not need more invitations to get there.
    assert turnaround_focused[1] <= citation_only[1] + 1.0
