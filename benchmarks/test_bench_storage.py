"""Storage micro-benchmarks: the substrate under the services.

Not a paper figure — infrastructure characterization: how fast the
document store indexes and serves, what WAL durability costs per write,
and how quickly a journaled store recovers.  These numbers bound how
large a simulated scholarly world stays interactive.
"""

from __future__ import annotations

import pytest

from repro.storage.documents import DocumentStore
from repro.storage.inverted import InvertedIndex
from repro.storage.persistence import JournaledStore

DOCS = 2000


def seed_payloads(count=DOCS):
    return [
        {
            "name": f"scholar-{i}",
            "country": f"country-{i % 20}",
            "interests": [f"topic-{i % 37}", f"topic-{(i * 7) % 37}"],
            "h_index": i % 60,
        }
        for i in range(count)
    ]


def test_bench_store_insert_with_indexes(benchmark):
    payloads = seed_payloads()

    def build():
        store = DocumentStore()
        store.create_index("country", lambda d: d["country"])
        store.create_index("interests", lambda d: d["interests"])
        for payload in payloads:
            store.insert(payload)
        return store

    store = benchmark(build)
    assert len(store) == DOCS
    print(f"\nstorage: {DOCS} inserts with 2 secondary indexes per round")


def test_bench_index_lookup(benchmark):
    store = DocumentStore()
    store.create_index("country", lambda d: d["country"])
    for payload in seed_payloads():
        store.insert(payload)

    result = benchmark(store.lookup_ids, "country", "country-7")
    assert len(result) == DOCS // 20


def test_bench_inverted_search(benchmark):
    index = InvertedIndex()
    for i, payload in enumerate(seed_payloads()):
        index.add(f"d{i}", {t: 1.0 for t in payload["interests"]})

    result = benchmark(index.search, ["topic-5", "topic-11"], limit=50)
    assert result


def test_bench_wal_write_throughput(benchmark, tmp_path_factory):
    payloads = seed_payloads(500)

    def journaled_inserts():
        directory = tmp_path_factory.mktemp("wal-bench")
        with JournaledStore.open(directory) as store:
            for payload in payloads:
                store.insert(payload)
        return directory

    directory = benchmark.pedantic(journaled_inserts, rounds=3, iterations=1)
    assert (directory / "wal.jsonl").stat().st_size > 0
    print(f"\nstorage: 500 WAL-durable inserts per round")


def test_bench_recovery_time(benchmark, tmp_path):
    directory = tmp_path / "recovery"
    with JournaledStore.open(directory) as store:
        for payload in seed_payloads():
            store.insert(payload)

    def recover():
        with JournaledStore.open(directory) as reopened:
            return len(reopened)

    count = benchmark(recover)
    assert count == DOCS
    print(f"\nstorage: recovery replays {DOCS} WAL entries per round")
