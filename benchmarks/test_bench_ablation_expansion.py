"""ABL-EXPANSION — expansion depth and threshold ablation (paper §2.1).

The expansion step has two knobs the paper leaves implicit: traversal
depth and the similarity threshold the editor can set on sc.  Sweep
both and measure what they buy:

- candidate-pool size (the "wider range of related reviewers" claim);
- recommendation quality against the oracle (does a wider net help or
  drown the ranking in weak matches?).
"""

from __future__ import annotations

import pytest

from repro.baselines.evaluation import CandidateResolver, evaluate_recommendation
from repro.core.config import FilterConfig, PipelineConfig
from repro.core.pipeline import Minaret
from repro.ontology.expansion import ExpansionConfig
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts

K = 10
DEPTHS = (0, 1, 2, 3)
THRESHOLDS = (0.9, 0.7, 0.5, 0.3)


def run_config(world, expansion):
    hub = ScholarlyHub.deploy(world)
    resolver = CandidateResolver(hub)
    config = PipelineConfig(
        expansion=expansion,
        filters=FilterConfig(min_keyword_score=min(0.5, expansion.min_score)),
    )
    pools, expanded_counts, ndcgs = [], [], []
    for manuscript, author in sample_manuscripts(world, count=5):
        result = Minaret(hub, config=config).recommend(manuscript)
        topics = sorted(author.topic_expertise)[:3]
        scores = evaluate_recommendation(
            world,
            resolver,
            [s.candidate.candidate_id for s in result.ranked[:K]],
            topics,
            [author.author_id],
            k=K,
        )
        pools.append(len(result.candidates))
        expanded_counts.append(len(result.expanded_keywords))
        ndcgs.append(scores.ndcg)
    count = len(pools)
    return (
        sum(expanded_counts) / count,
        sum(pools) / count,
        sum(ndcgs) / count,
    )


def test_bench_ablation_expansion_depth(benchmark, bench_world):
    def sweep():
        return {
            depth: run_config(
                bench_world, ExpansionConfig(max_depth=depth, min_score=0.3)
            )
            for depth in DEPTHS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "ABL-EXPANSION: traversal depth (threshold fixed at 0.3)",
        ("depth", "expanded keywords", "pool size", "nDCG@10"),
        [
            (depth, f"{kws:.1f}", f"{pool:.1f}", f"{ndcg:.3f}")
            for depth, (kws, pool, ndcg) in results.items()
        ],
    )
    keyword_counts = [kws for kws, __, __n in results.values()]
    assert keyword_counts == sorted(keyword_counts), "depth must widen keywords"
    # Depth>0 must widen the pool over raw matching.
    assert results[2][1] > results[0][1]


def test_bench_ablation_expansion_threshold(benchmark, bench_world):
    def sweep():
        return {
            threshold: run_config(
                bench_world, ExpansionConfig(max_depth=2, min_score=threshold)
            )
            for threshold in THRESHOLDS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "ABL-EXPANSION: sc threshold (depth fixed at 2)",
        ("min sc", "expanded keywords", "pool size", "nDCG@10"),
        [
            (threshold, f"{kws:.1f}", f"{pool:.1f}", f"{ndcg:.3f}")
            for threshold, (kws, pool, ndcg) in results.items()
        ],
    )
    keyword_counts = [kws for kws, __, __n in results.values()]
    assert keyword_counts == sorted(keyword_counts), (
        "lower thresholds must admit more keywords"
    )
