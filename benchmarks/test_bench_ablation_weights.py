"""ABL-WEIGHTS — ranking-component ablation (paper §2.3).

The paper makes the component weights editor-configurable.  This
ablation quantifies how much each of the five components actually
shapes the output: drop one component at a time and measure

- Kendall's tau between the full ranking and the ablated one (how much
  the order moves), and
- the oracle-quality delta (whether the component earns its keep).
"""

from __future__ import annotations

import pytest

from repro.baselines.evaluation import CandidateResolver, evaluate_recommendation
from repro.baselines.metrics import kendall_tau
from repro.core.config import PipelineConfig, RankingWeights
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts

COMPONENTS = (
    "topic_coverage",
    "scientific_impact",
    "recency",
    "review_experience",
    "outlet_familiarity",
)
K = 10


def ranking_ids(result):
    return [s.candidate.candidate_id for s in result.ranked]


def test_bench_ablation_weights(benchmark, bench_world):
    pairs = sample_manuscripts(bench_world, count=5)

    def run_ablation():
        hub = ScholarlyHub.deploy(bench_world)
        resolver = CandidateResolver(hub)
        full_results = {}
        full_quality = {}
        for manuscript, author in pairs:
            result = Minaret(hub).recommend(manuscript)
            topics = sorted(author.topic_expertise)[:3]
            full_results[manuscript.title] = (result, author, topics)
            scores = evaluate_recommendation(
                bench_world, resolver, ranking_ids(result)[:K],
                topics, [author.author_id], k=K,
            )
            full_quality[manuscript.title] = scores.ndcg

        rows = []
        for component in COMPONENTS:
            config = PipelineConfig(weights=RankingWeights().without(component))
            taus, deltas = [], []
            for manuscript, author in pairs:
                ablated = Minaret(hub, config=config).recommend(manuscript)
                full, __, topics = full_results[manuscript.title]
                taus.append(
                    kendall_tau(ranking_ids(full), ranking_ids(ablated))
                )
                scores = evaluate_recommendation(
                    bench_world, resolver, ranking_ids(ablated)[:K],
                    topics, [author.author_id], k=K,
                )
                deltas.append(scores.ndcg - full_quality[manuscript.title])
            rows.append(
                (
                    component,
                    f"{sum(taus) / len(taus):.3f}",
                    f"{sum(deltas) / len(deltas):+.3f}",
                )
            )
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_table(
        "ABL-WEIGHTS: drop one ranking component",
        ("dropped component", "Kendall tau vs full", "nDCG@10 delta"),
        rows,
    )

    taus = {row[0]: float(row[1]) for row in rows}
    # Every component must move the ranking at least somewhat…
    assert all(tau < 1.0 for tau in taus.values()), "some component is dead code"
    # …and dropping topic coverage must hurt quality the most or nearly so.
    deltas = {row[0]: float(row[2]) for row in rows}
    assert deltas["topic_coverage"] <= min(deltas.values()) + 0.05


def test_bench_aggregation_methods(benchmark, bench_world):
    """ABL-WEIGHTS addendum: weighted sum (§2.3) vs OWA (reference [4]).

    Same extraction, same candidates — only the fusion rule changes
    (via the no-recrawl rerank path), so differences are purely the
    aggregation semantics.
    """
    from repro.core.config import AggregationMethod

    pairs = sample_manuscripts(bench_world, count=5)
    methods = {
        "weighted sum (paper)": {},
        "OWA uniform (mean)": {
            "aggregation": AggregationMethod.OWA,
        },
        "OWA optimistic (best 2)": {
            "aggregation": AggregationMethod.OWA,
            "owa_weights": (0.6, 0.4),
        },
        "OWA pessimistic (worst 3)": {
            "aggregation": AggregationMethod.OWA,
            "owa_weights": (0.0, 0.0, 0.0, 0.2, 0.3, 0.5),
        },
    }

    def run_all():
        hub = ScholarlyHub.deploy(bench_world)
        resolver = CandidateResolver(hub)
        minaret = Minaret(hub)
        base_results = [
            (minaret.recommend(manuscript), author)
            for manuscript, author in pairs
        ]
        rows = []
        for label, overrides in methods.items():
            ndcgs = []
            for base, author in base_results:
                reranked = minaret.rerank(base, **overrides)
                topics = sorted(author.topic_expertise)[:3]
                scores = evaluate_recommendation(
                    bench_world,
                    resolver,
                    ranking_ids(reranked)[:K],
                    topics,
                    [author.author_id],
                    k=K,
                )
                ndcgs.append(scores.ndcg)
            rows.append((label, f"{sum(ndcgs) / len(ndcgs):.3f}"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "ABL-WEIGHTS addendum: score-fusion method",
        ("method", "nDCG@10"),
        rows,
    )
    values = {label: float(v) for label, v in rows}
    # All methods must produce sane rankings; the editor-tuned weighted
    # sum should not be dominated by the blunt pessimistic OWA.
    assert all(v > 0 for v in values.values())
    assert (
        values["weighted sum (paper)"]
        >= values["OWA pessimistic (worst 3)"] - 0.05
    )
