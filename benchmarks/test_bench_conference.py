"""EXP-ASSIGN-CONF — whole-conference assignment on planted scenarios.

Three PC pool sizes, each a planted-ground-truth conference
(:mod:`repro.world.conference`): solver runtime and quality against the
planted truth for the flow-exact and greedy-with-swaps solvers, plus a
pipeline-path determinism check at 1/2/8 workers.

The acceptance bars this run enforces:

- min-cost-flow recovers the planted sets exactly (planted recall 1.0)
  at every size and noise level measured;
- greedy-with-swaps reaches ≥0.9 of the flow objective;
- the end-to-end conference run is bit-identical across worker counts.

Results are printed and written to ``BENCH_assign.json`` at the repo
root so CI can archive the run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.assignment import (
    AssignmentObjective,
    assign_conference,
    greedy_assignment,
    greedy_swap_assignment,
    min_cost_flow_assignment,
    objective_value,
)
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from repro.world.conference import (
    ConferenceConfig,
    generate_conference,
    load_spread,
    planted_recall,
    precision_at_set,
)
from benchmarks.conftest import print_table

#: Paper counts chosen so the auto-drafted PC pools span ~17 to ~68
#: members on the 300-scholar bench world.
PAPER_COUNTS = (12, 24, 48)
WORKER_COUNTS = (1, 2, 8)
SCORE_NOISE = 1.0  # hardest permitted setting: separation at its edge
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_assign.json"

SOLVERS = (
    ("flow", min_cost_flow_assignment),
    ("greedy-swap", greedy_swap_assignment),
    ("greedy", lambda problem: greedy_assignment(problem)),
)


def _solve_timed(solver, problem):
    start = time.perf_counter()
    assignment = solver(problem)
    return assignment, time.perf_counter() - start


def test_bench_conference_solvers(bench_world):
    objective = AssignmentObjective()
    rows = []
    record = {"score_noise": SCORE_NOISE, "sizes": [], "pipeline": None}

    for paper_count in PAPER_COUNTS:
        scenario = generate_conference(
            bench_world,
            ConferenceConfig(
                paper_count=paper_count, score_noise=SCORE_NOISE, seed=7
            ),
        )
        problem = scenario.planted_problem()
        size_record = {
            "papers": paper_count,
            "pool": len(scenario.pool),
            "demand": problem.demand(),
            "solvers": {},
        }
        values = {}
        for name, solver in SOLVERS:
            assignment, seconds = _solve_timed(solver, problem)
            recall = planted_recall(scenario, assignment)
            precision = precision_at_set(scenario, assignment)
            spread = load_spread(assignment, scenario.pool)
            value = objective_value(problem, assignment, objective)
            values[name] = value
            size_record["solvers"][name] = {
                "runtime_s": round(seconds, 4),
                "objective": round(value, 6),
                "planted_recall": round(recall, 6),
                "precision_at_set": round(precision, 6),
                "load_spread": spread,
                "unfilled": problem.demand() - assignment.total_assignments(),
            }
            rows.append(
                (
                    paper_count,
                    len(scenario.pool),
                    name,
                    f"{seconds * 1000:.1f}ms",
                    f"{value:.3f}",
                    f"{recall:.3f}",
                    f"{precision:.3f}",
                    spread,
                )
            )
            if name == "flow":
                assert recall == 1.0, (
                    f"flow must recover the planted truth at "
                    f"{paper_count} papers (noise {SCORE_NOISE})"
                )
        assert values["greedy-swap"] >= 0.9 * values["flow"], (
            f"greedy-swap fell below 0.9x flow at {paper_count} papers"
        )
        record["sizes"].append(size_record)

    print_table(
        f"EXP-ASSIGN-CONF planted scenarios (noise {SCORE_NOISE})",
        (
            "papers",
            "pool",
            "solver",
            "runtime",
            "objective",
            "recall",
            "p@set",
            "spread",
        ),
        rows,
    )

    # Pipeline-path determinism: the same conference, recommended and
    # solved end-to-end, must be bit-identical at every worker count.
    scenario = generate_conference(
        bench_world, ConferenceConfig(paper_count=6, seed=7)
    )
    outcomes = []
    wall_by_workers = {}
    for workers in WORKER_COUNTS:
        hub = ScholarlyHub.deploy(bench_world)
        start = time.perf_counter()
        conference = assign_conference(
            Minaret(hub),
            scenario.entries(),
            reviewers_per_paper=2,
            capacity=3,
            solver="flow",
            workers=workers,
        )
        wall_by_workers[workers] = round(time.perf_counter() - start, 2)
        outcomes.append(
            (conference.assignment.by_paper, conference.objective_value)
        )
    identical = all(outcome == outcomes[0] for outcome in outcomes)
    assert identical, "conference results drifted across worker counts"
    record["pipeline"] = {
        "papers": 6,
        "workers": list(WORKER_COUNTS),
        "wall_s": wall_by_workers,
        "bit_identical": identical,
    }

    OUTPUT.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT.name}")
