"""FIG2 — the three-phase workflow, end to end (paper Fig. 2).

Regenerates: a per-phase accounting table (items in/out, simulated
requests, simulated network latency) for one full recommendation run —
the quantified version of the workflow diagram — and times the pipeline.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts


def test_bench_fig2_end_to_end(benchmark, bench_world):
    manuscript, __ = sample_manuscripts(bench_world, count=1)[0]

    def run():
        hub = ScholarlyHub.deploy(bench_world)
        return Minaret(hub).recommend(manuscript)

    result = benchmark.pedantic(run, rounds=3, iterations=1)

    rows = [
        (
            report.phase,
            report.items_in,
            report.items_out,
            report.requests,
            f"{report.virtual_seconds:.2f}s",
            f"{report.wall_seconds * 1000:.1f}ms",
        )
        for report in result.phase_reports
    ]
    print_table(
        "FIG2: workflow phases",
        ("phase", "in", "out", "requests", "sim latency", "wall"),
        rows,
    )

    phases = [r.phase for r in result.phase_reports]
    assert phases == [
        "verify_authors",
        "crawl_outlet",
        "expand_keywords",
        "extract_candidates",
        "filter",
        "rank",
    ]
    # Extraction dominates the on-the-fly cost, as the paper's design implies.
    extract = result.phase("extract_candidates")
    others = sum(r.requests for r in result.phase_reports) - extract.requests
    assert extract.requests > others
    assert result.ranked, "workflow must produce recommendations"
