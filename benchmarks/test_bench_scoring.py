"""EXP-SCORE — the scoring compute plane: precompiled features + top-k.

A 50-manuscript batch over a shared candidate pool is scored two ways
at each worker count:

- **naive** — :class:`~repro.core.ranking.NaiveRanker` plus the
  pairwise :class:`~repro.core.coi.CoiDetector`, everything recomputed
  per manuscript, full ranking truncated to the top 10;
- **plane** — the :mod:`repro.scoring` compute plane: candidate
  features precompiled once in a shared
  :class:`~repro.scoring.features.FeatureStore` and reused across
  manuscripts, indexed :class:`~repro.scoring.coi.CoiScreen`, and
  heap-based top-k selection with recency upper-bound pruning
  (``top_k=10``).

Pools are extracted once through a warm retrieval plane, so candidates
of different manuscripts share their evidence objects — the
steady-state a deployed batch converges to, and the case the feature
store's identity fast path is built for.

Two assertions carry the experiment:

1. the plane ranks **bit-identically** to the naive path (candidate ids
   *and* scores) at 1/2/8 workers;
2. scoring the batch through the plane is **≥3× faster** than the naive
   path at every worker count.

The measured table is printed and also written to ``BENCH_scoring.json``
at the repo root so CI can archive the run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.concurrency import create_executor
from repro.core.config import PipelineConfig
from repro.core.filtering import FilterPhase
from repro.core.pipeline import Minaret
from repro.core.ranking import NaiveRanker, Ranker
from repro.obs import Observability, use
from repro.scholarly.registry import ScholarlyHub
from repro.scoring import FeatureStore, ScoringContext
from benchmarks.conftest import print_table, sample_manuscripts

WORKER_COUNTS = (1, 2, 8)
PAPERS = 50
TOP_K = 10
KEYWORDS = 5
MAX_CANDIDATES = 400
SPEEDUP_FLOOR = 3.0
REPS = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_scoring.json"


def _signature(ranked):
    return [(s.candidate.candidate_id, s.total_score) for s in ranked]


def _prepare_pools(world):
    """Extract every manuscript's candidate pool once, through a warm
    retrieval plane so pools share their evidence objects."""
    config = PipelineConfig(
        max_candidates=MAX_CANDIDATES, scoring_plane=False, warm_cache=True
    )
    minaret = Minaret(ScholarlyHub.deploy(world), config=config)
    pools = []
    for manuscript, __ in sample_manuscripts(
        world, count=PAPERS, keyword_count=KEYWORDS
    ):
        result = minaret.recommend(manuscript)
        pools.append(
            (
                result.manuscript,
                result.verified_authors,
                result.candidates,
                result.expanded_keywords,
            )
        )
    return pools


def _score_pool(filter_phase, ranker, pool):
    manuscript, authors, candidates, expanded = pool
    kept, __ = filter_phase.apply(candidates, list(authors))
    return _signature(ranker.rank(manuscript, kept, list(expanded))[:TOP_K])


def _timed(scorer, pools, workers):
    executor = create_executor(workers)
    best = float("inf")
    signatures = None
    for __ in range(REPS):
        start = time.perf_counter()
        signatures = executor.map(scorer, pools)
        best = min(best, time.perf_counter() - start)
    return signatures, best


def test_bench_scoring(big_world):
    pools = _prepare_pools(big_world)
    assert len(pools) == PAPERS

    naive_config = PipelineConfig(max_candidates=MAX_CANDIDATES, scoring_plane=False)
    naive_filter = FilterPhase(
        naive_config.filters, current_year=naive_config.current_year
    )
    naive_ranker = NaiveRanker(naive_config)

    def naive_one(pool):
        return _score_pool(naive_filter, naive_ranker, pool)

    plane_config = PipelineConfig(max_candidates=MAX_CANDIDATES, top_k=TOP_K)
    store = FeatureStore()
    context = ScoringContext.from_config(plane_config)
    plane_filter = FilterPhase(
        plane_config.filters,
        current_year=plane_config.current_year,
        features=store,
        scoring_context=context,
    )
    plane_ranker = Ranker(plane_config, features=store, context=context)

    def plane_one(pool):
        return _score_pool(plane_filter, plane_ranker, pool)

    baseline = create_executor(1).map(naive_one, pools)

    # One untimed instrumented pass builds the store and captures the
    # pruning behaviour; the timed passes below then measure the
    # steady state with features warm.
    obs = Observability(enabled=True)
    with use(obs):
        create_executor(1).map(plane_one, pools)
    metrics = obs.metrics
    ranked_total = metrics.counter_total("scoring_candidates_ranked_total")
    pruned_total = metrics.counter_total("scoring_recency_pruned_total")

    rows = []
    record = {
        "papers": PAPERS,
        "top_k": TOP_K,
        "pool_sizes": sorted(len(pool[2]) for pool in pools),
        "prune_rate": round(pruned_total / ranked_total, 4) if ranked_total else 0.0,
        "runs": [],
    }

    for workers in WORKER_COUNTS:
        naive_sigs, naive_wall = _timed(naive_one, pools, workers)
        plane_sigs, plane_wall = _timed(plane_one, pools, workers)
        speedup = naive_wall / plane_wall
        identical = plane_sigs == baseline
        rows.append(
            (
                workers,
                f"{naive_wall:.3f}s",
                f"{plane_wall:.3f}s",
                f"{speedup:.2f}x",
                identical,
            )
        )
        record["runs"].append(
            {
                "workers": workers,
                "naive_wall": round(naive_wall, 4),
                "plane_wall": round(plane_wall, 4),
                "speedup": round(speedup, 2),
                "identical_to_naive": identical,
            }
        )
        assert naive_sigs == baseline, (
            f"naive scoring at {workers} workers is not deterministic"
        )
        assert identical, (
            f"plane rankings drifted from naive at {workers} workers"
        )
        # The acceptance bar: >=3x over the naive path at every worker
        # count.  (Measured: ~3.7-4.1x.)
        assert speedup >= SPEEDUP_FLOOR, (
            f"plane speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x "
            f"at {workers} workers"
        )

    record["feature_store"] = store.stats()
    print_table(
        f"EXP-SCORE scoring compute plane ({PAPERS} manuscripts, top-{TOP_K})",
        ("workers", "naive", "plane", "speedup", "identical"),
        rows,
    )
    print(
        f"feature reuse rate {record['feature_store']['reuse_rate']:.2f}, "
        f"recency prune rate {record['prune_rate']:.2f}"
    )
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT.name}")
