"""EXP-WARM — the warm-path retrieval plane: savings without drift.

A 10-manuscript batch is recommended three ways at each worker count:

- **cold** — the paper's pure on-the-fly mode (no plane);
- **warm #1** — a fresh plane: within-batch sharing only (manuscripts
  with overlapping expanded keywords and candidates already coalesce);
- **warm #2** — the same batch again on the now-warm plane: the
  steady-state an editor's deployment converges to.

Two assertions carry the experiment:

1. every configuration ranks **bit-identically** to the cold sequential
   baseline — caches on or off, 1/2/8 workers;
2. the warm steady-state batch issues **≥5× fewer** simulated requests
   than the cold batch.

The measured table is printed and also written to ``BENCH_warmpath.json``
at the repo root so CI can archive the run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.assignment import recommend_batch
from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts

WORKER_COUNTS = (1, 2, 8)
PAPERS = 10
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_warmpath.json"


def _signature(result):
    return [(s.candidate.candidate_id, s.total_score) for s in result.ranked]


def _batch_signature(results):
    return [(paper_id, _signature(result)) for paper_id, result in results]


def _run_batch(minaret, entries, workers):
    hub = minaret.sources
    requests_before = hub.total_requests()
    latency_before = hub.total_latency()
    start = time.perf_counter()
    results = recommend_batch(minaret, entries, workers=workers)
    wall = time.perf_counter() - start
    return {
        "signature": _batch_signature(results),
        "requests": hub.total_requests() - requests_before,
        "sim_latency": round(hub.total_latency() - latency_before, 2),
        "wall": round(wall, 2),
    }


def test_bench_warmpath(bench_world):
    entries = [
        (f"paper-{i}", manuscript)
        for i, (manuscript, __) in enumerate(
            sample_manuscripts(bench_world, count=PAPERS)
        )
    ]
    assert len(entries) == PAPERS

    baseline_hub = ScholarlyHub.deploy(bench_world)
    baseline = _run_batch(Minaret(baseline_hub), entries, workers=1)

    rows = []
    record = {"papers": PAPERS, "baseline_requests": baseline["requests"], "runs": []}

    def note(mode, workers, run, hit_rate=None):
        rows.append(
            (
                mode,
                workers,
                run["requests"],
                f"{run['sim_latency']}s",
                f"{run['wall']}s",
                "-" if hit_rate is None else f"{hit_rate:.2f}",
            )
        )
        record["runs"].append(
            {
                "mode": mode,
                "workers": workers,
                "requests": run["requests"],
                "sim_latency": run["sim_latency"],
                "wall": run["wall"],
                "hit_rate": hit_rate,
                "identical_to_cold_sequential": run["signature"]
                == baseline["signature"],
            }
        )
        assert run["signature"] == baseline["signature"], (
            f"{mode} at {workers} workers drifted from the cold baseline"
        )

    for workers in WORKER_COUNTS:
        hub = ScholarlyHub.deploy(bench_world)
        cold = _run_batch(Minaret(hub), entries, workers=workers)
        note("cold", workers, cold)

        hub = ScholarlyHub.deploy(bench_world)
        minaret = Minaret(hub, config=PipelineConfig(warm_cache=True))
        first = _run_batch(minaret, entries, workers=workers)
        note("warm#1", workers, first, hit_rate=minaret.plane.hit_rate())
        second = _run_batch(minaret, entries, workers=workers)
        note("warm#2", workers, second, hit_rate=minaret.plane.hit_rate())

        # The acceptance bar: steady-state warm traffic is >=5x below
        # cold at every worker count.  (Measured: ~25-30x.)
        assert second["requests"] * 5 <= cold["requests"]
        # Warm run #1 must already save within the batch, never cost.
        assert first["requests"] <= cold["requests"]

    print_table(
        f"EXP-WARM warm-path retrieval plane ({PAPERS} manuscripts)",
        ("mode", "workers", "requests", "sim latency", "wall", "hit rate"),
        rows,
    )
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT.name}")
