"""EXP-SCALE — feasibility at scale: latency, caching, and the scale plane.

The paper's framework extracts everything on-the-fly so that results are
always fresh.  This experiment quantifies what that costs and what buys
it back, in two regimes:

- **Pipeline regime** (hundreds of scholars): simulated network latency
  and request count of one recommendation as the population grows, and
  the same run under increasing cache TTLs (TTL 0 = the paper's pure
  mode).
- **Population regime** (10^3 → 10^5 scholars): the streamed world +
  sharded scale plane (:mod:`repro.scale`).  Worlds are derived lazily
  from the seed, indexes are hash-sharded, and retrieval/screening/
  scoring fan out per shard.  Measures per-query cost (deterministic
  cost units and wall-clock) at each size, the modeled shard-parallel
  speedup, the *measured* process-backend speedup (seed-rehydrated
  worker processes vs a sequential baseline, bit-identical across a
  processes × shards grid), the string-interning savings, and anchors
  correctness against the brute-force full scan.  Writes
  ``BENCH_scale.json`` at the repo root, uploaded by CI's
  ``scale-bench`` job.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.pipeline import Minaret
from repro.scale.bench import run_scale_bench
from repro.scholarly.registry import ScholarlyHub
from repro.world.config import WorldConfig
from repro.world.generator import generate_world
from benchmarks.conftest import print_table, sample_manuscripts

WORLD_SIZES = (100, 300, 600)
CACHE_TTLS = (0.0, 300.0, None)  # on-the-fly, 5-minute, immortal

#: Population sweep of the scale-plane regime (the 10^5 point is the
#: issue's "million-scholar path" acceptance size; ingest is ~1 min).
SCALE_SIZES = (1_000, 10_000, 100_000)
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_scale.json"


def one_run(world, cache_ttl=0.0, repeats=1):
    hub = ScholarlyHub.deploy(world, cache_ttl=cache_ttl)
    manuscript, __ = sample_manuscripts(world, count=1)[0]
    minaret = Minaret(hub)
    result = None
    for __r in range(repeats):
        result = minaret.recommend(manuscript)
    return hub, result


def test_bench_scale_world_size(benchmark):
    def sweep():
        rows = []
        for size in WORLD_SIZES:
            world = generate_world(WorldConfig(author_count=size, seed=42))
            hub, result = one_run(world)
            rows.append(
                (
                    size,
                    hub.total_requests(),
                    f"{hub.total_latency():.1f}s",
                    len(result.candidates),
                    len(result.ranked),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "EXP-SCALE: one recommendation vs world size (TTL 0 = on-the-fly)",
        ("scholars", "requests", "sim latency", "candidates", "recommended"),
        rows,
    )
    # Requests are bounded by max_candidates, not world size: the pipeline
    # must not degrade to crawling the whole world.
    request_counts = [int(r[1]) for r in rows]
    assert max(request_counts) < 3.0 * min(request_counts)


def test_bench_scale_cache_ttl(benchmark, bench_world):
    def sweep():
        rows = []
        for ttl in CACHE_TTLS:
            hub, __ = one_run(bench_world, cache_ttl=ttl, repeats=3)
            label = "0 (on-the-fly)" if ttl == 0 else (str(ttl) if ttl else "inf")
            rows.append(
                (
                    label,
                    hub.total_requests(),
                    f"{hub.crawler.cache_hit_rate():.2f}",
                    f"{hub.total_latency():.1f}s",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "EXP-SCALE: 3 repeated recommendations vs cache TTL",
        ("cache TTL", "requests", "hit rate", "sim latency"),
        rows,
    )
    requests = [int(r[1]) for r in rows]
    # Longer TTLs must strictly reduce network traffic.
    assert requests[0] > requests[-1]
    # The immortal cache must serve the repeat runs almost entirely.
    assert float(rows[-1][2]) > 0.5


def test_bench_scale_population(benchmark):
    """The population-regime sweep: streamed worlds, sharded query path."""
    report = benchmark.pedantic(
        lambda: run_scale_bench(sizes=SCALE_SIZES), rounds=1, iterations=1
    )
    rows = [
        (
            f"{entry['authors']:,}",
            f"{entry['ingest_seconds']:.1f}s",
            f"{entry['index']['postings']:,}",
            f"{entry['mean_query_cost_units']:,.0f}",
            f"{entry['mean_modeled_speedup']:.2f}x",
            f"{entry['mean_wall_seconds'] * 1000:.1f}ms",
            {True: "yes", False: "NO", None: "-"}[
                entry["topk_matches_brute_force"]
            ],
        )
        for entry in report["sizes"]
    ]
    print_table(
        f"EXP-SCALE: sharded query path vs population "
        f"({report['shards']} shards, {report['workers']} workers)",
        (
            "scholars",
            "ingest",
            "postings",
            "query cost",
            "speedup@8",
            "wall/query",
            "brute=",
        ),
        rows,
    )
    interning = report["interning"]
    print(
        f"string interning at {interning['authors']} authors: "
        f"{interning['saved_bytes']:,} bytes saved "
        f"({interning['saved_pct']:.1f}%)"
    )
    scaling = report["scaling"]
    print(
        f"population x{scaling['size_ratio']:.0f} -> query cost "
        f"x{scaling['query_cost_ratio']:.2f} (sublinear={scaling['sublinear']})"
    )
    process = report["process"]
    print(
        f"process backend at {process['size']:,} scholars "
        f"({process['workers']} workers on {process['cpus']} cpus): "
        f"{process['sequential_wall_seconds'] * 1000:.1f}ms sequential -> "
        f"{process['process_wall_seconds'] * 1000:.1f}ms process per query, "
        f"measured x{process['measured_speedup']:.2f} "
        f"(modeled x{process['modeled_speedup']:.2f}); "
        f"first query {process['first_query_wall_seconds'] * 1000:.0f}ms "
        f"incl. spawn+rehydrate"
    )
    print_table(
        "EXP-SCALE: process-backend bit-identity vs brute force "
        f"({process['grid_size']} scholars)",
        ("processes", "shards", "identical"),
        [
            (cell["processes"], cell["shards"], "yes" if cell["identical"] else "NO")
            for cell in process["grid"]
        ],
    )
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    # The 10^5-scholar world must actually have been swept.
    assert report["sizes"][-1]["authors"] >= 100_000
    # Shard-parallel scoring models >= 3x over sequential at 8 workers.
    assert all(
        entry["mean_modeled_speedup"] >= 3.0 for entry in report["sizes"]
    )
    # Wherever the brute-force reference ran, the sharded top-k matched
    # it entry-for-entry.
    verified = [
        entry["topk_matches_brute_force"]
        for entry in report["sizes"]
        if entry["topk_matches_brute_force"] is not None
    ]
    assert verified and all(verified)
    # Per-query cost grows sub-linearly in world size.
    assert scaling["sublinear"]
    # Interning must save memory, not cost it.
    assert interning["saved_bytes"] > 0
    # The process backend answers exactly like the sequential plane —
    # at the measured size and across the whole processes x shards grid
    # against the brute-force reference.  This holds on any host.
    assert process["topk_identical"]
    assert process["grid_identical"]
    # The *measured* wall-clock claim needs real cores to parallelize
    # over; on starved hosts (CI is >= 4) the modeled number carries it.
    if process["cpus"] >= 4:
        assert process["measured_speedup"] >= 2.5, process
