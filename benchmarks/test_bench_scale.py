"""EXP-SCALE — on-the-fly feasibility: latency vs world size and caching.

The paper's framework extracts everything on-the-fly so that results are
always fresh.  This experiment quantifies what that costs and what the
(freshness-sacrificing) response cache buys back:

- simulated network latency and request count of one recommendation,
  as the scholar population grows;
- the same run under increasing cache TTLs, measuring hit rate and
  residual latency (TTL 0 = the paper's pure mode).
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from repro.world.config import WorldConfig
from repro.world.generator import generate_world
from benchmarks.conftest import print_table, sample_manuscripts

WORLD_SIZES = (100, 300, 600)
CACHE_TTLS = (0.0, 300.0, None)  # on-the-fly, 5-minute, immortal


def one_run(world, cache_ttl=0.0, repeats=1):
    hub = ScholarlyHub.deploy(world, cache_ttl=cache_ttl)
    manuscript, __ = sample_manuscripts(world, count=1)[0]
    minaret = Minaret(hub)
    result = None
    for __r in range(repeats):
        result = minaret.recommend(manuscript)
    return hub, result


def test_bench_scale_world_size(benchmark):
    def sweep():
        rows = []
        for size in WORLD_SIZES:
            world = generate_world(WorldConfig(author_count=size, seed=42))
            hub, result = one_run(world)
            rows.append(
                (
                    size,
                    hub.total_requests(),
                    f"{hub.total_latency():.1f}s",
                    len(result.candidates),
                    len(result.ranked),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "EXP-SCALE: one recommendation vs world size (TTL 0 = on-the-fly)",
        ("scholars", "requests", "sim latency", "candidates", "recommended"),
        rows,
    )
    # Requests are bounded by max_candidates, not world size: the pipeline
    # must not degrade to crawling the whole world.
    request_counts = [int(r[1]) for r in rows]
    assert max(request_counts) < 3.0 * min(request_counts)


def test_bench_scale_cache_ttl(benchmark, bench_world):
    def sweep():
        rows = []
        for ttl in CACHE_TTLS:
            hub, __ = one_run(bench_world, cache_ttl=ttl, repeats=3)
            label = "0 (on-the-fly)" if ttl == 0 else (str(ttl) if ttl else "inf")
            rows.append(
                (
                    label,
                    hub.total_requests(),
                    f"{hub.crawler.cache_hit_rate():.2f}",
                    f"{hub.total_latency():.1f}s",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "EXP-SCALE: 3 repeated recommendations vs cache TTL",
        ("cache TTL", "requests", "hit rate", "sim latency"),
        rows,
    )
    requests = [int(r[1]) for r in rows]
    # Longer TTLs must strictly reduce network traffic.
    assert requests[0] > requests[-1]
    # The immortal cache must serve the repeat runs almost entirely.
    assert float(rows[-1][2]) > 0.5
