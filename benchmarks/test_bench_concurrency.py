"""EXP-CONC — wall-clock speedup from the worker pool, output unchanged.

The simulated clock makes latency free, which would hide any threading
win; ``wall_latency_scale`` re-introduces a real ``sleep`` proportional
to each request's virtual latency, so these runs experience genuine
I/O-shaped waiting that the thread pool can overlap (sleeps release the
GIL, like real network waits).

Two levels of fan-out are measured at 1/2/4/8 workers:

- extraction fan-out inside one recommendation run
  (``PipelineConfig.workers``);
- batch fan-out across manuscripts (``recommend_batch`` workers).

Both must return bit-identical rankings at every worker count — the
speedup is the only thing allowed to change.
"""

from __future__ import annotations

import time

from repro.assignment import recommend_batch
from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts

WORKER_COUNTS = (1, 2, 4, 8)
#: Fraction of each request's virtual latency really slept.
WALL_SCALE = 0.05
PAPERS = 8


def _signature(result):
    return [(s.candidate.candidate_id, s.total_score) for s in result.ranked]


def test_bench_extraction_workers(bench_world):
    manuscript = sample_manuscripts(bench_world, count=1)[0][0]
    timings, signatures, rows = {}, {}, []
    for workers in WORKER_COUNTS:
        hub = ScholarlyHub.deploy(bench_world, wall_latency_scale=WALL_SCALE)
        minaret = Minaret(hub, config=PipelineConfig(workers=workers))
        start = time.perf_counter()
        result = minaret.recommend(manuscript)
        timings[workers] = time.perf_counter() - start
        signatures[workers] = _signature(result)
        rows.append(
            (
                workers,
                f"{timings[workers]:.2f}s",
                f"{timings[1] / timings[workers]:.2f}x",
                hub.total_requests(),
            )
        )
    print_table(
        "EXP-CONC extraction fan-out (one recommendation)",
        ("workers", "wall", "speedup", "requests"),
        rows,
    )
    for workers in WORKER_COUNTS[1:]:
        assert signatures[workers] == signatures[1]
    # Extraction is only part of the pipeline (verification stays
    # serial), so expect a real but sub-linear win.
    assert timings[1] / timings[8] >= 1.2


def test_bench_batch_assignment_workers(bench_world):
    entries = [
        (f"paper-{i}", manuscript)
        for i, (manuscript, __) in enumerate(
            sample_manuscripts(bench_world, count=PAPERS)
        )
    ]
    timings, signatures, rows = {}, {}, []
    for workers in WORKER_COUNTS:
        hub = ScholarlyHub.deploy(bench_world, wall_latency_scale=WALL_SCALE)
        minaret = Minaret(hub)
        start = time.perf_counter()
        results = recommend_batch(minaret, entries, workers=workers)
        timings[workers] = time.perf_counter() - start
        signatures[workers] = [
            (paper_id, _signature(result)) for paper_id, result in results
        ]
        rows.append(
            (
                workers,
                f"{timings[workers]:.2f}s",
                f"{timings[1] / timings[workers]:.2f}x",
                hub.total_requests(),
            )
        )
    print_table(
        f"EXP-CONC batch fan-out ({PAPERS} manuscripts)",
        ("workers", "wall", "speedup", "requests"),
        rows,
    )
    for workers in WORKER_COUNTS[1:]:
        assert signatures[workers] == signatures[1]
    # The acceptance bar: parallel batch assignment at 8 workers beats
    # sequential by at least 2x on wall-clock.
    assert timings[1] / timings[8] >= 2.0
