"""EXP-CONC — wall-clock speedup from the worker pool, output unchanged.

The simulated clock makes latency free, which would hide any threading
win; ``wall_latency_scale`` re-introduces a real ``sleep`` proportional
to each request's virtual latency, so these runs experience genuine
I/O-shaped waiting that the thread pool can overlap (sleeps release the
GIL, like real network waits).

Two levels of fan-out are measured at 1/2/4/8 workers:

- extraction fan-out inside one recommendation run
  (``PipelineConfig.workers``);
- batch fan-out across manuscripts (``recommend_batch`` workers).

Both must return bit-identical rankings at every worker count — the
speedup is the only thing allowed to change.
"""

from __future__ import annotations

import time

from repro.assignment import recommend_batch
from repro.concurrency import ThreadExecutor
from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table, sample_manuscripts

WORKER_COUNTS = (1, 2, 4, 8)
#: ``chunk_size`` sweep for the dispatch-overhead probe.
CHUNK_SIZES = (1, 64, 512)
CHUNK_TASKS = 20_000
#: Fraction of each request's virtual latency really slept.
WALL_SCALE = 0.05
PAPERS = 8


def _signature(result):
    return [(s.candidate.candidate_id, s.total_score) for s in result.ranked]


def test_bench_extraction_workers(bench_world):
    manuscript = sample_manuscripts(bench_world, count=1)[0][0]
    timings, signatures, rows = {}, {}, []
    for workers in WORKER_COUNTS:
        hub = ScholarlyHub.deploy(bench_world, wall_latency_scale=WALL_SCALE)
        minaret = Minaret(hub, config=PipelineConfig(workers=workers))
        start = time.perf_counter()
        result = minaret.recommend(manuscript)
        timings[workers] = time.perf_counter() - start
        signatures[workers] = _signature(result)
        rows.append(
            (
                workers,
                f"{timings[workers]:.2f}s",
                f"{timings[1] / timings[workers]:.2f}x",
                hub.total_requests(),
            )
        )
    print_table(
        "EXP-CONC extraction fan-out (one recommendation)",
        ("workers", "wall", "speedup", "requests"),
        rows,
    )
    for workers in WORKER_COUNTS[1:]:
        assert signatures[workers] == signatures[1]
    # Extraction is only part of the pipeline (verification stays
    # serial), so expect a real but sub-linear win.
    assert timings[1] / timings[8] >= 1.2


def test_bench_batch_assignment_workers(bench_world):
    entries = [
        (f"paper-{i}", manuscript)
        for i, (manuscript, __) in enumerate(
            sample_manuscripts(bench_world, count=PAPERS)
        )
    ]
    timings, signatures, rows = {}, {}, []
    for workers in WORKER_COUNTS:
        hub = ScholarlyHub.deploy(bench_world, wall_latency_scale=WALL_SCALE)
        minaret = Minaret(hub)
        start = time.perf_counter()
        results = recommend_batch(minaret, entries, workers=workers)
        timings[workers] = time.perf_counter() - start
        signatures[workers] = [
            (paper_id, _signature(result)) for paper_id, result in results
        ]
        rows.append(
            (
                workers,
                f"{timings[workers]:.2f}s",
                f"{timings[1] / timings[workers]:.2f}x",
                hub.total_requests(),
            )
        )
    print_table(
        f"EXP-CONC batch fan-out ({PAPERS} manuscripts)",
        ("workers", "wall", "speedup", "requests"),
        rows,
    )
    for workers in WORKER_COUNTS[1:]:
        assert signatures[workers] == signatures[1]
    # The acceptance bar: parallel batch assignment at 8 workers beats
    # sequential by at least 2x on wall-clock.
    assert timings[1] / timings[8] >= 2.0


def test_bench_chunk_overhead():
    """Per-task dispatch overhead vs ``chunk_size`` on tiny tasks.

    Each unchunked task pays a future, a span and queue accounting;
    ``chunk_size`` amortizes all three across a batch while keeping
    results (and per-task counters) identical.  The table reports the
    per-task overhead delta that coarse callers (e.g. the scale plane's
    shard fan-outs) leave on the table when they keep tasks individually
    schedulable.
    """
    executor = ThreadExecutor(4)
    expected = [i + 1 for i in range(CHUNK_TASKS)]
    walls, rows = {}, []
    executor.map(lambda x: x + 1, range(CHUNK_TASKS))  # warm the pool
    for chunk_size in CHUNK_SIZES:
        start = time.perf_counter()
        results = executor.map(lambda x: x + 1, range(CHUNK_TASKS), chunk_size=chunk_size)
        walls[chunk_size] = time.perf_counter() - start
        assert results == expected
        per_task_us = walls[chunk_size] / CHUNK_TASKS * 1e6
        rows.append(
            (
                chunk_size,
                f"{walls[chunk_size] * 1000:.1f}ms",
                f"{per_task_us:.1f}us",
                f"{walls[1] / walls[chunk_size]:.2f}x",
            )
        )
    print_table(
        f"EXP-CONC dispatch overhead ({CHUNK_TASKS} trivial tasks, 4 threads)",
        ("chunk_size", "wall", "per-task", "vs chunk=1"),
        rows,
    )
    overhead_delta_us = (walls[1] - walls[max(CHUNK_SIZES)]) / CHUNK_TASKS * 1e6
    print(f"chunking saves {overhead_delta_us:.1f}us per task at chunk=512")
    # Amortizing dispatch must never cost more than dispatching singly.
    assert walls[max(CHUNK_SIZES)] <= walls[1] * 1.2
