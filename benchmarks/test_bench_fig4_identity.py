"""FIG4 — author identity verification (paper Fig. 4).

The demo shows the user a list of candidate profiles per author name and
asks them to confirm the right one.  Quantified here over the whole
planted-collision population:

- how many names are ambiguous (multiple DBLP pages);
- how often the automatic affiliation-evidence resolver decides
  correctly, versus escalating to the user (the paper's manual step);
- accuracy of the naive first-match strategy, as the no-verification
  baseline.
"""

from __future__ import annotations

import pytest

from repro.core.errors import AmbiguousIdentityError
from repro.core.identity import FirstMatchResolver, IdentityVerifier
from repro.core.models import ManuscriptAuthor
from repro.scholarly.records import SourceName
from repro.scholarly.registry import ScholarlyHub
from benchmarks.conftest import print_table


def collision_members(world):
    seen_names = set()
    members = []
    for author in sorted(world.authors.values(), key=lambda a: a.author_id):
        group = world.authors_by_name(author.name)
        if len(group) > 1 and author.name not in seen_names:
            seen_names.add(author.name)
            members.extend(group)
    return members


def test_bench_fig4_disambiguation(benchmark, bench_world):
    members = collision_members(bench_world)
    assert members, "world must contain planted collisions"

    def verify_population():
        hub = ScholarlyHub.deploy(bench_world)
        verifier = IdentityVerifier(hub)
        naive_verifier = IdentityVerifier(hub, resolver=FirstMatchResolver())
        outcomes = []
        for author in members:
            submitted = ManuscriptAuthor(
                author.name, affiliation=author.affiliations[-1].institution
            )
            expected_pid = hub.dblp_service.pid_of(author.author_id)
            try:
                verified = verifier.verify(submitted)
                auto = verified.profile.source_id(SourceName.DBLP) == expected_pid
                escalated = False
            except AmbiguousIdentityError:
                auto = False
                escalated = True
            naive = naive_verifier.verify(submitted)
            naive_ok = naive.profile.source_id(SourceName.DBLP) == expected_pid
            outcomes.append((author, auto, escalated, naive_ok))
        return outcomes

    outcomes = benchmark.pedantic(verify_population, rounds=1, iterations=1)

    total = len(outcomes)
    auto_correct = sum(1 for __, auto, __e, __n in outcomes if auto)
    escalated = sum(1 for __, __a, esc, __n in outcomes if esc)
    naive_correct = sum(1 for __, __a, __e, naive in outcomes if naive)
    print_table(
        "FIG4: identity verification over planted name collisions",
        ("strategy", "correct", "escalated to user", "total"),
        [
            ("affiliation-evidence (MINARET)", auto_correct, escalated, total),
            ("first-match (no verification)", naive_correct, 0, total),
        ],
    )

    # MINARET's evidence-based resolution must beat blind first-match,
    # and escalation must be the fallback, not the common case.
    assert auto_correct + escalated == total or auto_correct <= total
    assert auto_correct > naive_correct
    assert naive_correct < total  # first-match demonstrably mislinks


def test_bench_fig4_match_counts(benchmark, bench_world):
    """Candidates-per-author distribution: the Fig. 4 pick list size."""
    hub = ScholarlyHub.deploy(bench_world)
    collision_names = sorted({a.name for a in collision_members(bench_world)})
    other_names = sorted(
        {a.name for a in bench_world.authors.values()} - set(collision_names)
    )
    names = collision_names + other_names[:100]

    def count_matches():
        return {name: len(hub.dblp.search_author(name)) for name in names}

    counts = benchmark.pedantic(count_matches, rounds=1, iterations=1)
    from collections import Counter

    distribution = Counter(counts.values())
    print_table(
        "FIG4: DBLP profile matches per submitted name",
        ("matches", "names"),
        sorted(distribution.items()),
    )
    assert distribution.get(1, 0) > 0
    assert any(k > 1 for k in distribution)
