"""EXP-TRAFFIC — admission control under a 2x-capacity burst.

The same seeded open-loop arrival schedule (a multi-tenant mix of
recommendation and health traffic with a burst window) is replayed
twice against identical deployments:

- **naive**: no admission limits — every request is queued and served,
  the open-loop backlog grows without bound during the burst, and the
  p95 served latency blows through the SLO threshold;
- **admission**: per-tenant token buckets plus a bounded queue shed the
  overload with typed 429/503 envelopes carrying ``retry_after``, and
  the p95 of what *is* served stays inside the SLO.

A second experiment replays the admission run at 1, 2 and 8 logical
servers and checks the serving invariant: worker count changes *when*
requests are served (and therefore which ones shed), never *what* any
admitted request answers — every served body is bit-identical to a
direct unthrottled dispatch of the same request.

Everything runs on the virtual clock, so every number in
``BENCH_traffic.json`` (QPS, shed rate, p50/p95/p99) reproduces
exactly; only ``wall_seconds`` is physical.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api.handlers import MinaretApi
from repro.scholarly.registry import ScholarlyHub
from repro.serving import (
    Burst,
    LoadGenerator,
    RequestTemplate,
    ServingConfig,
    ServingFrontend,
    TenantLoad,
    TenantPolicy,
    canonical_body,
    manuscript_templates,
    request_key,
    run_load,
)
from benchmarks.conftest import print_table

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_traffic.json"

OFFERED = 50
BASE_RATE = 0.5  # req/s of steady traffic
BURST = Burst(start=20.0, duration=40.0, multiplier=8.0)
LOAD_SEED = 13
TENANTS = (TenantLoad("chairs", 3.0), TenantLoad("editors", 1.0))
#: Served-latency SLO threshold (virtual seconds).  The admission run
#: must keep p95 at or below it; the naive run must blow through it.
SLO_THRESHOLD = 400.0

# Buckets sized so the burst overruns them even though queue_full
# sheds refund their token (only *served* admissions burn budget).
ADMISSION = dict(
    queue_capacity=6,
    default_policy=TenantPolicy(capacity=3.0, refill_rate=0.05),
    degraded_serving=False,
    slo_threshold=SLO_THRESHOLD,
)
#: "No admission control": buckets and queue far beyond the offered load.
NAIVE = dict(
    queue_capacity=1_000_000,
    default_policy=TenantPolicy(capacity=1e9, refill_rate=1e9),
    degraded_serving=False,
    slo_threshold=SLO_THRESHOLD,
)


def _merge_output(section: str, payload: dict) -> None:
    record = {}
    if OUTPUT.exists():
        record = json.loads(OUTPUT.read_text(encoding="utf-8"))
    record[section] = payload
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT.name} [{section}]")


def _templates(world):
    templates = manuscript_templates(world, count=3)
    templates.append(RequestTemplate("GET", "/api/v1/health", weight=0.5))
    return templates


def _arrivals(world):
    return LoadGenerator(
        _templates(world),
        tenants=TENANTS,
        rate=BASE_RATE,
        seed=LOAD_SEED,
        bursts=(BURST,),
    ).arrivals(count=OFFERED)


def _run(world, config, workers):
    api = MinaretApi(ScholarlyHub.deploy(world))
    frontend = ServingFrontend(api, ServingConfig(**config))
    started = time.perf_counter()
    report = run_load(frontend, _arrivals(world), workers=workers)
    wall = time.perf_counter() - started
    return report, wall


def _report_row(name, report, wall):
    d = report.to_dict()
    return [
        name,
        report.offered,
        report.served,
        sum(report.shed.values()),
        report.degraded,
        f"{d['shed_rate']:.3f}",
        f"{d['offered_qps']:.4f}",
        f"{d['served_qps']:.4f}",
        f"{d['latency']['p50']:.1f}",
        f"{d['latency']['p95']:.1f}",
        f"{d['latency']['p99']:.1f}",
        f"{wall:.2f}s",
    ]


def test_bench_traffic_burst_shedding(bench_world):
    naive_report, naive_wall = _run(bench_world, NAIVE, workers=2)
    admission_report, admission_wall = _run(bench_world, ADMISSION, workers=2)

    print_table(
        "EXP-TRAFFIC: 8x burst over steady traffic, 2 workers",
        ["mode", "offered", "served", "shed", "degraded", "shed-rate",
         "offered-qps", "served-qps", "p50", "p95", "p99", "wall"],
        [
            _report_row("naive", naive_report, naive_wall),
            _report_row("admission", admission_report, admission_wall),
        ],
    )

    # The naive run serves everything — and pays for it in the tail.
    assert naive_report.served == OFFERED
    assert naive_report.latency["p95"] > SLO_THRESHOLD

    # Admission sheds the overload with typed envelopes instead.
    sheds = [r for r in admission_report.records if not r.admitted]
    rate_limited = [r for r in sheds if r.reason == "rate_limited"]
    assert rate_limited, "the burst must overrun the token buckets"
    for shed in rate_limited:
        assert shed.status == 429
        assert shed.response.body["reason"] == "rate_limited"
        assert shed.retry_after is not None and shed.retry_after > 0
    for shed in sheds:
        if shed.reason == "queue_full":
            assert shed.status == 503
            assert shed.retry_after is not None

    # What *is* admitted stays within the latency SLO.
    assert admission_report.served > 0
    assert admission_report.latency["p95"] <= SLO_THRESHOLD
    assert admission_report.slo is not None
    # The naive run, measured against the same objective, burns.
    assert naive_report.slo["verdict"] == "burning"

    _merge_output(
        "burst",
        {
            "offered": OFFERED,
            "burst_multiplier": BURST.multiplier,
            "slo_threshold": SLO_THRESHOLD,
            "naive": {
                **naive_report.to_dict(),
                "wall_seconds": round(naive_wall, 3),
            },
            "admission": {
                **admission_report.to_dict(),
                "wall_seconds": round(admission_wall, 3),
            },
        },
    )


def test_bench_traffic_worker_invariance(bench_world):
    # Direct unthrottled dispatch is the reference answer per request.
    reference_api = MinaretApi(ScholarlyHub.deploy(bench_world))
    reference = {}
    for template in _templates(bench_world):
        key = request_key(template.method, template.path, template.body)
        response = reference_api.handle(template.method, template.path, template.body)
        assert response.ok
        reference[key] = canonical_body(response.body)

    rows = []
    sweep = {}
    for workers in (1, 2, 8):
        report, wall = _run(bench_world, ADMISSION, workers=workers)
        checked = 0
        for record in report.records:
            if not record.admitted or record.response is None:
                continue
            if record.path == "/api/v1/health":
                continue  # health bodies carry live SLO state by design
            key = request_key(record.method, record.path, record.body)
            assert canonical_body(record.response.body) == reference[key]
            checked += 1
        assert checked > 0
        sweep[str(workers)] = {
            **report.to_dict(),
            "bodies_checked": checked,
            "wall_seconds": round(wall, 3),
        }
        rows.append(_report_row(f"workers={workers}", report, wall))

    print_table(
        "EXP-TRAFFIC: admission run at 1/2/8 workers (bodies bit-identical)",
        ["mode", "offered", "served", "shed", "degraded", "shed-rate",
         "offered-qps", "served-qps", "p50", "p95", "p99", "wall"],
        rows,
    )
    _merge_output("worker_invariance", sweep)
