"""Conference assignment under a degraded scholarly web (satellite 4).

Runs a planted conference scenario against a hub whose sources fault
hard enough that some papers' identity verification dies outright, and
asserts the tolerant path's contract: every failure is a typed
per-paper record, the surviving papers still get a valid assignment
(no partial-state corruption), and the failures are observable as
events and counters.  Because fault draws are content-keyed, the *same*
papers fail at every worker count.
"""

import pytest

from repro.assignment import PaperFailure, assign_conference
from repro.core.errors import MinaretError
from repro.core.pipeline import Minaret
from repro.obs import Observability, use
from repro.scholarly.records import SourceName
from repro.scholarly.registry import DEFAULT_BEHAVIOUR, ScholarlyHub, SourceBehaviour
from repro.web.crawler import RetryPolicy
from repro.world.conference import ConferenceConfig, generate_conference

#: DBLP and Scholar faulting 55% with single attempts: author searches
#: die for an appreciable fraction of papers, which is exactly the
#: failure mode (IdentityVerificationError) conference mode must absorb.
FAULTY_SOURCES = {SourceName.DBLP, SourceName.GOOGLE_SCHOLAR}


def faulty_behaviour():
    behaviour = {}
    for source in SourceName:
        if source in FAULTY_SOURCES:
            behaviour[source] = SourceBehaviour(
                latency_base=0.001,
                latency_jitter=0.0,
                failure_probability=0.55,
            )
        else:
            behaviour[source] = DEFAULT_BEHAVIOUR[source]
    return behaviour


def deploy_faulty(world):
    return ScholarlyHub.deploy(
        world,
        behaviour=faulty_behaviour(),
        retry=RetryPolicy(max_attempts=1, base_backoff=0.001),
    )


@pytest.fixture(scope="module")
def scenario(world):
    return generate_conference(world, ConferenceConfig(paper_count=8, seed=3))


def run_conference(world, scenario, workers=1):
    obs = Observability()
    with use(obs):
        conference = assign_conference(
            Minaret(deploy_faulty(world)),
            scenario.entries(),
            reviewers_per_paper=2,
            capacity=3,
            solver="flow",
            workers=workers,
            on_error="skip",
        )
    return conference, obs


class TestFaultTolerantConference:
    def test_failures_are_typed_and_run_survives(self, world, scenario):
        conference, _ = run_conference(world, scenario)
        assert conference.failures, (
            "the fault policy must actually kill some papers — "
            "raise failure_probability if this fires"
        )
        assert conference.results, "not every paper may die"
        for failure in conference.failures:
            assert isinstance(failure, PaperFailure)
            # The recorded error type really is a framework error.
            error_types = {
                cls.__name__ for cls in MinaretError.__subclasses__()
            }
            error_types.add("MinaretError")
            assert failure.error in error_types
            assert failure.message

    def test_survivors_get_valid_assignment_no_corruption(
        self, world, scenario
    ):
        conference, _ = run_conference(world, scenario)
        failed_ids = {failure.paper_id for failure in conference.failures}
        survivor_ids = {paper_id for paper_id, _ in conference.results}
        # Exact partition: every paper is either a result or a failure.
        all_ids = {paper_id for paper_id, _ in scenario.entries()}
        assert failed_ids | survivor_ids == all_ids
        assert not failed_ids & survivor_ids
        # The problem and assignment mention only surviving papers.
        assert set(conference.problem.papers()) <= survivor_ids
        assert set(conference.assignment.by_paper) <= survivor_ids
        # And the assignment stays structurally valid.
        loads = conference.assignment.loads()
        assert all(load <= 3 for load in loads.values())
        for paper_id in conference.problem.papers():
            reviewers = conference.assignment.reviewers_of(paper_id)
            assert len(set(reviewers)) == len(reviewers)
            for reviewer in reviewers:
                assert reviewer in conference.problem.scores[paper_id]

    def test_failures_emit_events_and_counters(self, world, scenario):
        conference, obs = run_conference(world, scenario)
        events = obs.ring.events("conference.paper_failed")
        assert len(events) == len(conference.failures)
        event_papers = {event.fields["paper_id"] for event in events}
        assert event_papers == {f.paper_id for f in conference.failures}
        for event in events:
            assert event.fields["error"]
            assert event.fields["message"]
        snapshot = obs.metrics.snapshot()
        failed_total = sum(
            series["value"]
            for name, entries in snapshot.get("counters", {}).items()
            if name == "conference_papers_failed_total"
            for series in entries
        )
        assert failed_total == len(conference.failures)

    def test_same_papers_fail_at_every_worker_count(self, world, scenario):
        """Content-keyed fault draws: the failure pattern is part of the
        deterministic output, not a race artifact."""
        baseline, _ = run_conference(world, scenario, workers=1)
        for workers in (2, 8):
            conference, _ = run_conference(world, scenario, workers=workers)
            assert conference.failures == baseline.failures
            assert (
                conference.assignment.by_paper
                == baseline.assignment.by_paper
            )
