"""Tests for assignment problem/solution models."""

import pytest

from repro.assignment.models import (
    Assignment,
    AssignmentProblem,
    assess_assignment,
)


@pytest.fixture()
def problem():
    return AssignmentProblem(
        scores={
            "p1": {"r1": 0.9, "r2": 0.5},
            "p2": {"r1": 0.8, "r3": 0.6},
        },
        reviewers_per_paper=2,
        max_load=2,
    )


class TestProblemValidation:
    def test_invalid_quota_rejected(self):
        with pytest.raises(ValueError):
            AssignmentProblem(scores={}, reviewers_per_paper=0)

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            AssignmentProblem(scores={}, max_load=0)

    def test_negative_score_rejected(self):
        with pytest.raises(ValueError):
            AssignmentProblem(scores={"p": {"r": -0.1}})

    def test_accessors(self, problem):
        assert problem.papers() == ["p1", "p2"]
        assert problem.reviewers() == ["r1", "r2", "r3"]
        assert problem.demand() == 4
        assert problem.capacity() == 6


class TestAssignmentAccessors:
    def test_loads(self):
        assignment = Assignment(by_paper={"p1": ["r1"], "p2": ["r1", "r2"]})
        assert assignment.loads() == {"r1": 2, "r2": 1}
        assert assignment.total_assignments() == 3

    def test_reviewers_of_missing_paper(self):
        assert Assignment().reviewers_of("nope") == []


class TestAssessment:
    def test_full_feasible_assignment(self, problem):
        assignment = Assignment(by_paper={"p1": ["r1", "r2"], "p2": ["r1", "r3"]})
        quality = assess_assignment(problem, assignment)
        assert quality.is_feasible()
        assert quality.total_score == pytest.approx(2.8)
        assert quality.min_paper_score == pytest.approx(1.4)
        assert quality.max_load == 2

    def test_unfilled_slots_counted(self, problem):
        assignment = Assignment(by_paper={"p1": ["r1"], "p2": []})
        quality = assess_assignment(problem, assignment)
        assert quality.unfilled_slots == 3
        assert not quality.is_feasible()

    def test_overload_rejected(self, problem):
        assignment = Assignment(
            by_paper={"p1": ["r1", "r2"], "p2": ["r1", "r3"]}
        )
        tight = AssignmentProblem(
            scores=problem.scores, reviewers_per_paper=2, max_load=1
        )
        with pytest.raises(ValueError, match="overloaded"):
            assess_assignment(tight, assignment)

    def test_duplicate_reviewer_rejected(self, problem):
        assignment = Assignment(by_paper={"p1": ["r1", "r1"], "p2": []})
        with pytest.raises(ValueError, match="duplicate"):
            assess_assignment(problem, assignment)

    def test_over_quota_rejected(self):
        problem = AssignmentProblem(
            scores={"p1": {"r1": 1, "r2": 1, "r3": 1}},
            reviewers_per_paper=2,
            max_load=3,
        )
        assignment = Assignment(by_paper={"p1": ["r1", "r2", "r3"]})
        with pytest.raises(ValueError, match="over quota"):
            assess_assignment(problem, assignment)

    def test_unassignable_pair_rejected(self, problem):
        assignment = Assignment(by_paper={"p1": ["r3"], "p2": []})
        with pytest.raises(ValueError, match="not assignable"):
            assess_assignment(problem, assignment)

    def test_empty_problem(self):
        problem = AssignmentProblem(scores={})
        quality = assess_assignment(problem, Assignment())
        assert quality.total_score == 0.0
        assert quality.is_feasible()
