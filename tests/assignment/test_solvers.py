"""Tests for the assignment solvers, including optimality properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment.models import AssignmentProblem, assess_assignment
from repro.assignment.solvers import (
    greedy_assignment,
    optimal_assignment,
    random_assignment,
)

SOLVERS = [greedy_assignment, optimal_assignment, lambda p: random_assignment(p, 3)]


def toy_problem():
    return AssignmentProblem(
        scores={
            "paper1": {"r1": 0.9, "r2": 0.5, "r3": 0.4},
            "paper2": {"r1": 0.8, "r2": 0.7},
            "paper3": {"r1": 0.7, "r3": 0.6, "r2": 0.1},
        },
        reviewers_per_paper=2,
        max_load=2,
    )


@st.composite
def random_problems(draw):
    paper_count = draw(st.integers(1, 5))
    reviewer_count = draw(st.integers(1, 6))
    quota = draw(st.integers(1, 3))
    load = draw(st.integers(1, 3))
    rng = random.Random(draw(st.integers(0, 1000)))
    scores = {}
    for p in range(paper_count):
        candidates = {
            f"r{r}": round(rng.random(), 3)
            for r in range(reviewer_count)
            if rng.random() < 0.7
        }
        scores[f"p{p}"] = candidates
    return AssignmentProblem(
        scores=scores, reviewers_per_paper=quota, max_load=load
    )


class TestGreedy:
    def test_respects_constraints(self):
        problem = toy_problem()
        quality = assess_assignment(problem, greedy_assignment(problem))
        assert quality.max_load <= problem.max_load

    def test_takes_best_pair_first(self):
        problem = toy_problem()
        assignment = greedy_assignment(problem)
        assert "r1" in assignment.reviewers_of("paper1")

    def test_deterministic(self):
        a = greedy_assignment(toy_problem())
        b = greedy_assignment(toy_problem())
        assert a.by_paper == b.by_paper

    def test_known_starvation(self):
        # Greedy spends r1 and r2 early and leaves paper3 under quota.
        quality = assess_assignment(toy_problem(), greedy_assignment(toy_problem()))
        assert quality.unfilled_slots == 1


class TestOptimal:
    def test_fills_all_slots_when_possible(self):
        problem = toy_problem()
        quality = assess_assignment(problem, optimal_assignment(problem))
        assert quality.unfilled_slots == 0

    def test_beats_greedy_on_starvation_instance(self):
        problem = toy_problem()
        greedy_quality = assess_assignment(problem, greedy_assignment(problem))
        optimal_quality = assess_assignment(problem, optimal_assignment(problem))
        assert optimal_quality.total_score > greedy_quality.total_score

    def test_single_paper_takes_top_reviewers(self):
        problem = AssignmentProblem(
            scores={"p": {"a": 0.9, "b": 0.8, "c": 0.1}},
            reviewers_per_paper=2,
            max_load=1,
        )
        assignment = optimal_assignment(problem)
        assert sorted(assignment.reviewers_of("p")) == ["a", "b"]

    def test_empty_problem(self):
        problem = AssignmentProblem(scores={})
        assert optimal_assignment(problem).by_paper == {}

    def test_infeasible_quota_partially_filled(self):
        problem = AssignmentProblem(
            scores={"p1": {"r1": 1.0}, "p2": {"r1": 1.0}},
            reviewers_per_paper=1,
            max_load=1,
        )
        assignment = optimal_assignment(problem)
        quality = assess_assignment(problem, assignment)
        assert assignment.total_assignments() == 1
        assert quality.unfilled_slots == 1


class TestRandom:
    def test_seeded(self):
        problem = toy_problem()
        assert (
            random_assignment(problem, 7).by_paper
            == random_assignment(problem, 7).by_paper
        )

    def test_valid(self):
        problem = toy_problem()
        assess_assignment(problem, random_assignment(problem, 5))


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_problems())
    def test_all_solvers_produce_valid_assignments(self, problem):
        for solver in SOLVERS:
            assignment = solver(problem)
            quality = assess_assignment(problem, assignment)
            assert quality.max_load <= problem.max_load

    @settings(max_examples=40, deadline=None)
    @given(random_problems())
    def test_optimal_dominates_on_slots_then_score(self, problem):
        greedy_quality = assess_assignment(problem, greedy_assignment(problem))
        optimal_quality = assess_assignment(problem, optimal_assignment(problem))
        assert optimal_quality.unfilled_slots <= greedy_quality.unfilled_slots
        if optimal_quality.unfilled_slots == greedy_quality.unfilled_slots:
            assert (
                optimal_quality.total_score >= greedy_quality.total_score - 1e-6
            )

    @settings(max_examples=40, deadline=None)
    @given(random_problems())
    def test_optimal_dominates_random(self, problem):
        random_quality = assess_assignment(problem, random_assignment(problem, 1))
        optimal_quality = assess_assignment(problem, optimal_assignment(problem))
        assert optimal_quality.unfilled_slots <= random_quality.unfilled_slots
