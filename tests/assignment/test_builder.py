"""Tests for building assignment problems from pipeline results."""

import pytest

from repro.assignment.builder import problem_from_results
from repro.core.models import (
    Candidate,
    Manuscript,
    ManuscriptAuthor,
    RecommendationResult,
    ScoreBreakdown,
    ScoredCandidate,
)
from repro.scholarly.records import MergedProfile


def make_result(scored_pairs):
    manuscript = Manuscript(
        title="t", keywords=("k",), authors=(ManuscriptAuthor("A"),)
    )
    ranked = [
        ScoredCandidate(
            candidate=Candidate(
                candidate_id=candidate_id,
                name=candidate_id,
                profile=MergedProfile(canonical_name=candidate_id, source_ids=()),
            ),
            total_score=score,
            breakdown=ScoreBreakdown(),
        )
        for candidate_id, score in scored_pairs
    ]
    return RecommendationResult(
        manuscript=manuscript,
        verified_authors=[],
        expanded_keywords=[],
        candidates=[s.candidate for s in ranked],
        filter_decisions=[],
        ranked=ranked,
        phase_reports=[],
    )


class TestBuilder:
    def test_scores_taken_from_ranking(self):
        result = make_result([("r1", 0.9), ("r2", 0.4)])
        problem = problem_from_results([("p1", result)])
        assert problem.scores == {"p1": {"r1": 0.9, "r2": 0.4}}

    def test_top_k_restricts_candidates(self):
        result = make_result([("r1", 0.9), ("r2", 0.8), ("r3", 0.1)])
        problem = problem_from_results([("p1", result)], top_k=2)
        assert set(problem.scores["p1"]) == {"r1", "r2"}

    def test_shared_reviewers_recognized_across_papers(self):
        result_a = make_result([("shared", 0.9)])
        result_b = make_result([("shared", 0.7), ("other", 0.5)])
        problem = problem_from_results([("p1", result_a), ("p2", result_b)])
        assert problem.reviewers() == ["other", "shared"]

    def test_duplicate_paper_ids_rejected(self):
        result = make_result([("r1", 0.9)])
        with pytest.raises(ValueError):
            problem_from_results([("p1", result), ("p1", result)])

    def test_constraints_forwarded(self):
        result = make_result([("r1", 0.9)])
        problem = problem_from_results(
            [("p1", result)], reviewers_per_paper=4, max_load=7
        )
        assert problem.reviewers_per_paper == 4
        assert problem.max_load == 7

    def test_empty_batch(self):
        problem = problem_from_results([])
        assert problem.papers() == []
