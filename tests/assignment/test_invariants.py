"""Property tests for the assignment invariants (ISSUE 6, satellite 1).

Fuzzes randomly generated instances through every solver and asserts
the contract that the conference harness leans on:

- per-reviewer capacity is never exceeded;
- every paper gets exactly ``k`` reviewers, or ``require_full_assignment``
  raises a typed :class:`InfeasibleAssignmentError` naming the shortfall;
- a COI-flagged pair is never assigned (the matrix is COI-screened —
  screened pairs simply do not exist as assignable edges);
- conference runs are bit-identical at 1, 2 and 8 workers, including
  which reviewers each paper gets.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment import (
    AssignmentObjective,
    InfeasibleAssignmentError,
    assign_conference,
    greedy_assignment,
    greedy_swap_assignment,
    min_cost_flow_assignment,
    random_assignment,
    require_full_assignment,
)
from repro.assignment.models import AssignmentProblem
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from repro.world.conference import ConferenceConfig, generate_conference

ALL_SOLVERS = [
    ("greedy", lambda p: greedy_assignment(p)),
    ("greedy-swap", lambda p: greedy_swap_assignment(p)),
    ("flow", lambda p: min_cost_flow_assignment(p)),
    (
        "flow-balance",
        lambda p: min_cost_flow_assignment(
            p, AssignmentObjective(balance_weight=0.2)
        ),
    ),
    ("random", lambda p: random_assignment(p, seed=3)),
]


@st.composite
def screened_problems(draw):
    """A random instance plus the COI pairs its screen removed.

    Mirrors how the real matrix is built: the pipeline's ``CoiScreen``
    drops conflicted candidates *before* the problem exists, so a COI
    pair must never appear among the assignable edges — and therefore
    never in any solver's output.
    """
    paper_count = draw(st.integers(1, 6))
    reviewer_count = draw(st.integers(1, 8))
    quota = draw(st.integers(1, 3))
    load = draw(st.integers(1, 3))
    rng = random.Random(draw(st.integers(0, 10_000)))
    coi_pairs = set()
    scores = {}
    for p in range(paper_count):
        paper_id = f"p{p}"
        row = {}
        for r in range(reviewer_count):
            reviewer_id = f"r{r}"
            if rng.random() < 0.15:
                coi_pairs.add((paper_id, reviewer_id))
            elif rng.random() < 0.75:
                row[reviewer_id] = round(rng.random(), 3)
        scores[paper_id] = row
    problem = AssignmentProblem(
        scores=scores, reviewers_per_paper=quota, max_load=load
    )
    return problem, coi_pairs


class TestCapacityInvariant:
    @settings(max_examples=60, deadline=None)
    @given(screened_problems())
    def test_no_solver_exceeds_capacity(self, case):
        problem, _ = case
        for name, solver in ALL_SOLVERS:
            loads = solver(problem).loads()
            assert all(load <= problem.max_load for load in loads.values()), (
                f"{name} exceeded max_load={problem.max_load}: {dict(loads)}"
            )

    @settings(max_examples=60, deadline=None)
    @given(screened_problems())
    def test_no_solver_overfills_or_duplicates(self, case):
        problem, _ = case
        for name, solver in ALL_SOLVERS:
            assignment = solver(problem)
            for paper_id in problem.papers():
                reviewers = assignment.reviewers_of(paper_id)
                assert len(reviewers) <= problem.reviewers_per_paper, name
                assert len(set(reviewers)) == len(reviewers), (
                    f"{name} assigned a reviewer twice to {paper_id}"
                )


class TestCoiInvariant:
    @settings(max_examples=60, deadline=None)
    @given(screened_problems())
    def test_screened_pairs_never_assigned(self, case):
        problem, coi_pairs = case
        for name, solver in ALL_SOLVERS:
            assignment = solver(problem)
            assigned = {
                (paper_id, reviewer)
                for paper_id in problem.papers()
                for reviewer in assignment.reviewers_of(paper_id)
            }
            flagged = assigned & coi_pairs
            assert not flagged, f"{name} assigned COI pairs {flagged}"


class TestQuotaOrTypedError:
    @settings(max_examples=60, deadline=None)
    @given(screened_problems())
    def test_exactly_k_or_infeasible(self, case):
        """The flow solver either fills every paper or the shortfall is
        a typed error — never a silently short set."""
        problem, _ = case
        assignment = min_cost_flow_assignment(problem)
        try:
            require_full_assignment(problem, assignment)
        except InfeasibleAssignmentError as exc:
            # The error names every short paper with its missing count.
            assert exc.unfilled
            for paper_id, missing in exc.unfilled.items():
                got = len(assignment.reviewers_of(paper_id))
                assert got + missing == problem.reviewers_per_paper
        else:
            for paper_id in problem.papers():
                assert (
                    len(assignment.reviewers_of(paper_id))
                    == problem.reviewers_per_paper
                )

    def test_feasible_dense_instance_fills_exactly(self):
        problem = AssignmentProblem(
            scores={
                f"p{p}": {f"r{r}": 0.5 + 0.01 * r for r in range(6)}
                for p in range(4)
            },
            reviewers_per_paper=3,
            max_load=2,
        )
        assignment = require_full_assignment(
            problem, min_cost_flow_assignment(problem)
        )
        for paper_id in problem.papers():
            assert len(assignment.reviewers_of(paper_id)) == 3

    def test_undersupplied_instance_raises_typed_error(self):
        problem = AssignmentProblem(
            scores={"p0": {"r0": 1.0}, "p1": {"r0": 0.9}},
            reviewers_per_paper=1,
            max_load=1,
        )
        with pytest.raises(InfeasibleAssignmentError) as excinfo:
            require_full_assignment(problem, min_cost_flow_assignment(problem))
        assert excinfo.value.unfilled in ({"p0": 1}, {"p1": 1})
        assert "demand 2 vs capacity 1" in str(excinfo.value)


class TestWorkerDeterminism:
    @pytest.fixture(scope="class")
    def scenario(self, world):
        return generate_conference(
            world, ConferenceConfig(paper_count=4, seed=3)
        )

    def test_conference_bit_identical_across_worker_counts(
        self, world, scenario
    ):
        """The whole conference result — assignments, scores, failures —
        is a pure function of the inputs, not of the worker count."""
        outcomes = []
        for workers in (1, 2, 8):
            hub = ScholarlyHub.deploy(world)
            conference = assign_conference(
                Minaret(hub),
                scenario.entries(),
                reviewers_per_paper=2,
                capacity=3,
                solver="flow",
                workers=workers,
            )
            outcomes.append(
                (
                    conference.assignment.by_paper,
                    conference.objective_value,
                    conference.failures,
                    [
                        (paper_id, [s.total_score for s in result.ranked])
                        for paper_id, result in conference.results
                    ],
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]
