"""Small-instance exactness tests (ISSUE 6, satellite 2).

A brute-force reference solver enumerates every feasible assignment of
tiny instances (≤6 papers × ≤8 reviewers) and maximizes the same
lexicographic objective the solvers claim — fill count first, then
objective value.  Against it:

- min-cost-flow must match *exactly*, for the pure-score objective and
  with a load-balance term (the convex chain-node pricing);
- greedy-with-swaps must land within the stated bound (≥ 0.9 of the
  optimum's objective at equal fill shortfall tolerance).

Plus regression tests pinning the canonical tie-break order: equal
scores resolve by candidate id, and permuting dict insertion order
never changes any solver's output.
"""

import itertools
import random

from repro.assignment import (
    AssignmentObjective,
    greedy_assignment,
    greedy_swap_assignment,
    min_cost_flow_assignment,
    objective_value,
    random_assignment,
)
from repro.assignment.models import Assignment, AssignmentProblem

#: The documented heuristic guarantee: greedy-with-swaps reaches at
#: least this fraction of the brute-force optimum's objective on
#: instances where both fill the same number of slots.
SWAP_BOUND = 0.9


def brute_force(problem, objective=None):
    """Exhaustive lexicographic optimum: (fill, objective value).

    Enumerates per-paper reviewer subsets depth-first under the load
    cap.  Only usable on tiny instances — that is the point: it is
    obviously correct, so the real solvers can be measured against it.
    """
    objective = objective or AssignmentObjective()
    papers = problem.papers()
    best = {"key": (-1, float("-inf")), "assignment": Assignment()}

    def subsets(paper_id, capacity):
        row = [r for r in sorted(problem.scores[paper_id]) if capacity[r] > 0]
        top = min(problem.reviewers_per_paper, len(row))
        for size in range(top, -1, -1):
            yield from itertools.combinations(row, size)

    def recurse(index, capacity, chosen):
        if index == len(papers):
            assignment = Assignment(
                by_paper={p: list(c) for p, c in chosen.items()}
            )
            key = (
                assignment.total_assignments(),
                objective_value(problem, assignment, objective),
            )
            if key > best["key"]:
                best["key"] = key
                best["assignment"] = assignment
            return
        paper_id = papers[index]
        for combo in subsets(paper_id, capacity):
            for reviewer in combo:
                capacity[reviewer] -= 1
            chosen[paper_id] = combo
            recurse(index + 1, capacity, chosen)
            del chosen[paper_id]
            for reviewer in combo:
                capacity[reviewer] += 1

    recurse(0, {r: problem.max_load for r in problem.reviewers()}, {})
    return best["assignment"], best["key"]


def small_instance(seed, paper_count=4, reviewer_count=5, quota=2, load=2):
    rng = random.Random(seed)
    scores = {}
    for p in range(paper_count):
        scores[f"p{p}"] = {
            f"r{r}": round(rng.uniform(0.05, 1.0), 3)
            for r in range(reviewer_count)
            if rng.random() < 0.8
        }
    return AssignmentProblem(
        scores=scores, reviewers_per_paper=quota, max_load=load
    )


class TestFlowMatchesBruteForce:
    def test_pure_score_exact_on_random_instances(self):
        for seed in range(10):
            problem = small_instance(seed)
            brute, (brute_fill, brute_value) = brute_force(problem)
            flow = min_cost_flow_assignment(problem)
            assert flow.total_assignments() == brute_fill, f"seed {seed}"
            value = objective_value(problem, flow, AssignmentObjective())
            assert abs(value - brute_value) < 1e-6, f"seed {seed}"

    def test_balance_objective_exact_on_random_instances(self):
        objective = AssignmentObjective(balance_weight=0.3)
        for seed in range(10):
            problem = small_instance(seed)
            _, (brute_fill, brute_value) = brute_force(problem, objective)
            flow = min_cost_flow_assignment(problem, objective)
            assert flow.total_assignments() == brute_fill, f"seed {seed}"
            value = objective_value(problem, flow, objective)
            assert abs(value - brute_value) < 1e-6, f"seed {seed}"

    def test_exact_at_issue_ceiling_size(self):
        """The largest instance shape the satellite names: 6 × 8."""
        problem = small_instance(
            99, paper_count=6, reviewer_count=8, quota=1, load=1
        )
        _, (brute_fill, brute_value) = brute_force(problem)
        flow = min_cost_flow_assignment(problem)
        assert flow.total_assignments() == brute_fill
        value = objective_value(problem, flow, AssignmentObjective())
        assert abs(value - brute_value) < 1e-6


class TestGreedySwapBound:
    def test_within_stated_bound_of_optimum(self):
        for seed in range(10):
            problem = small_instance(seed)
            _, (brute_fill, brute_value) = brute_force(problem)
            swap = greedy_swap_assignment(problem)
            value = objective_value(problem, swap, AssignmentObjective())
            assert swap.total_assignments() >= brute_fill - 1, f"seed {seed}"
            if brute_value > 0:
                assert value >= SWAP_BOUND * brute_value, (
                    f"seed {seed}: swap {value:.6f} < "
                    f"{SWAP_BOUND} * optimum {brute_value:.6f}"
                )

    def test_improves_on_plain_greedy_starvation(self):
        problem = AssignmentProblem(
            scores={
                "paper1": {"r1": 0.9, "r2": 0.5, "r3": 0.4},
                "paper2": {"r1": 0.8, "r2": 0.7},
                "paper3": {"r1": 0.7, "r3": 0.6, "r2": 0.1},
            },
            reviewers_per_paper=2,
            max_load=2,
        )
        greedy = greedy_assignment(problem)
        swap = greedy_swap_assignment(problem)
        assert swap.total_assignments() > greedy.total_assignments()
        assert swap.total_assignments() == problem.demand()


class TestCanonicalTieBreaking:
    def permuted(self, problem, seed):
        """The same instance with every dict's insertion order shuffled."""
        rng = random.Random(seed)
        paper_ids = list(problem.scores)
        rng.shuffle(paper_ids)
        scores = {}
        for paper_id in paper_ids:
            reviewer_ids = list(problem.scores[paper_id])
            rng.shuffle(reviewer_ids)
            scores[paper_id] = {
                r: problem.scores[paper_id][r] for r in reviewer_ids
            }
        return AssignmentProblem(
            scores=scores,
            reviewers_per_paper=problem.reviewers_per_paper,
            max_load=problem.max_load,
        )

    def test_insertion_order_never_changes_output(self):
        solvers = [
            lambda p: greedy_assignment(p),
            lambda p: greedy_swap_assignment(p),
            lambda p: min_cost_flow_assignment(p),
            lambda p: min_cost_flow_assignment(
                p, AssignmentObjective(balance_weight=0.2)
            ),
            lambda p: random_assignment(p, seed=5),
        ]
        for seed in range(6):
            problem = small_instance(seed)
            for solver in solvers:
                reference = solver(problem).by_paper
                for permutation in range(4):
                    shuffled = self.permuted(problem, permutation)
                    assert solver(shuffled).by_paper == reference, (
                        f"seed {seed}, permutation {permutation}"
                    )

    def test_equal_scores_resolve_by_candidate_id(self):
        """An all-ties instance: every solver must prefer the
        lexicographically smallest candidate ids, not dict order."""
        problem = AssignmentProblem(
            scores={
                "p0": {"rz": 0.5, "ry": 0.5, "ra": 0.5, "rb": 0.5},
                "p1": {"rb": 0.5, "ra": 0.5, "rz": 0.5, "ry": 0.5},
            },
            reviewers_per_paper=2,
            max_load=2,
        )
        for solver in (
            greedy_assignment,
            greedy_swap_assignment,
            min_cost_flow_assignment,
        ):
            assignment = solver(problem)
            for paper_id in problem.papers():
                assert sorted(assignment.reviewers_of(paper_id)) == [
                    "ra",
                    "rb",
                ], solver.__name__
