"""Tests for the baseline recommenders and oracle evaluation."""

import pytest

from repro.baselines.evaluation import CandidateResolver, evaluate_recommendation
from repro.baselines.recommenders import (
    CitationOnlyRecommender,
    MinaretRecommender,
    NoExpansionRecommender,
    RandomRecommender,
)


class TestRecommenderShapes:
    def test_minaret_returns_k(self, hub, manuscript):
        result = MinaretRecommender(hub).recommend(manuscript, k=5)
        assert result.name == "minaret"
        assert len(result.candidate_ids) <= 5

    def test_no_expansion_uses_only_seed_keywords(self, hub, manuscript):
        result = NoExpansionRecommender(hub).recommend(manuscript, k=5)
        assert len(result.result.expanded_keywords) == len(manuscript.keywords)

    def test_citation_only_orders_by_impact(self, hub, manuscript):
        result = CitationOnlyRecommender(hub).recommend(manuscript, k=10)
        impacts = [
            s.breakdown.scientific_impact for s in result.result.ranked
        ]
        assert impacts == sorted(impacts, reverse=True)

    def test_random_permutes_same_pool(self, world, manuscript):
        from repro.scholarly.registry import ScholarlyHub

        minaret = MinaretRecommender(ScholarlyHub.deploy(world)).recommend(
            manuscript, k=100
        )
        random_rec = RandomRecommender(ScholarlyHub.deploy(world), seed=1).recommend(
            manuscript, k=100
        )
        assert set(minaret.candidate_ids) == set(random_rec.candidate_ids)

    def test_random_is_seeded(self, world, manuscript):
        from repro.scholarly.registry import ScholarlyHub

        a = RandomRecommender(ScholarlyHub.deploy(world), seed=5).recommend(
            manuscript, k=50
        )
        b = RandomRecommender(ScholarlyHub.deploy(world), seed=5).recommend(
            manuscript, k=50
        )
        assert a.candidate_ids == b.candidate_ids


class TestCandidateResolver:
    def test_scholar_ids_resolve(self, hub, world):
        resolver = CandidateResolver(hub)
        author = next(
            a
            for a in world.authors.values()
            if hub.scholar_service.user_of(a.author_id)
        )
        user = hub.scholar_service.user_of(author.author_id)
        assert resolver.world_id(user) == author.author_id

    def test_publons_ids_resolve(self, hub, world):
        resolver = CandidateResolver(hub)
        author = next(
            (
                a
                for a in world.authors.values()
                if hub.publons_service.reviewer_id_of(a.author_id)
            ),
            None,
        )
        if author is None:
            pytest.skip("no publons coverage")
        reviewer_id = hub.publons_service.reviewer_id_of(author.author_id)
        assert resolver.world_id(reviewer_id) == author.author_id

    def test_unknown_id_is_none(self, hub):
        assert CandidateResolver(hub).world_id("sch_bogus") is None

    def test_world_ids_drop_unresolvable(self, hub, world):
        resolver = CandidateResolver(hub)
        author = next(
            a
            for a in world.authors.values()
            if hub.scholar_service.user_of(a.author_id)
        )
        user = hub.scholar_service.user_of(author.author_id)
        assert resolver.world_ids([user, "bogus"]) == [author.author_id]


class TestEvaluation:
    def test_scores_in_range(self, hub, world, manuscript):
        recommender = MinaretRecommender(hub)
        result = recommender.recommend(manuscript, k=10)
        author = world.authors_by_name(manuscript.authors[0].name)[0]
        topics = sorted(author.topic_expertise)[:2]
        scores = evaluate_recommendation(
            world,
            CandidateResolver(hub),
            result.candidate_ids,
            topics,
            [author.author_id],
            k=10,
        )
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert 0.0 <= scores.ndcg <= 1.0
        assert scores.mean_utility >= 0.0

    def test_oracle_list_itself_scores_perfectly(self, hub, world, manuscript):
        from repro.world.model import GroundTruthOracle

        author = world.authors_by_name(manuscript.authors[0].name)[0]
        topics = sorted(author.topic_expertise)[:2]
        oracle = GroundTruthOracle(world)
        ideal = oracle.ideal_reviewers(topics, [author.author_id], k=10)
        # Feed the oracle's own answer back through source ids.
        reverse = {}
        for world_id in ideal:
            user = hub.scholar_service.user_of(world_id)
            if user:
                reverse[world_id] = user
        candidate_ids = [reverse[w] for w in ideal if w in reverse]
        scores = evaluate_recommendation(
            world,
            CandidateResolver(hub),
            candidate_ids,
            topics,
            [author.author_id],
            k=len(candidate_ids) or 1,
        )
        if candidate_ids:
            assert scores.precision == 1.0
