"""Tests for the bootstrap statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.stats import (
    MeanWithCi,
    bootstrap_mean_ci,
    paired_bootstrap_pvalue,
)

samples = st.lists(st.floats(0.0, 1.0), min_size=2, max_size=20)


class TestBootstrapCi:
    def test_interval_contains_mean_of_tight_sample(self):
        ci = bootstrap_mean_ci([0.5, 0.5, 0.5, 0.5])
        assert ci.mean == 0.5
        assert ci.low == 0.5
        assert ci.high == 0.5

    def test_interval_ordering(self):
        ci = bootstrap_mean_ci([0.1, 0.9, 0.4, 0.6, 0.2])
        assert ci.low <= ci.mean <= ci.high

    def test_single_value_degenerate(self):
        ci = bootstrap_mean_ci([0.7])
        assert (ci.low, ci.mean, ci.high) == (0.7, 0.7, 0.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0, 2.0], confidence=1.5)

    def test_seeded(self):
        a = bootstrap_mean_ci([0.1, 0.5, 0.9], seed=3)
        b = bootstrap_mean_ci([0.1, 0.5, 0.9], seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_wider_interval_at_higher_confidence(self):
        data = [0.1, 0.9, 0.3, 0.7, 0.5, 0.2, 0.8]
        narrow = bootstrap_mean_ci(data, confidence=0.5)
        wide = bootstrap_mean_ci(data, confidence=0.99)
        assert (wide.high - wide.low) >= (narrow.high - narrow.low)

    def test_str_rendering(self):
        text = str(MeanWithCi(0.5, 0.4, 0.6, 0.95))
        assert text == "0.500 [0.400, 0.600]"

    @given(samples)
    def test_interval_brackets_mean(self, values):
        ci = bootstrap_mean_ci(values, resamples=200)
        assert ci.low - 1e-9 <= ci.mean <= ci.high + 1e-9


class TestPairedBootstrap:
    def test_clear_winner_small_pvalue(self):
        a = [0.9, 0.8, 0.85, 0.95, 0.9]
        b = [0.1, 0.2, 0.15, 0.1, 0.2]
        assert paired_bootstrap_pvalue(a, b) < 0.05

    def test_clear_loser_large_pvalue(self):
        a = [0.1, 0.2, 0.15]
        b = [0.9, 0.8, 0.85]
        assert paired_bootstrap_pvalue(a, b) > 0.9

    def test_identical_samples(self):
        a = [0.5, 0.5, 0.5]
        assert paired_bootstrap_pvalue(a, a) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap_pvalue([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap_pvalue([], [])

    def test_single_pair(self):
        assert paired_bootstrap_pvalue([1.0], [0.5]) == 0.0
        assert paired_bootstrap_pvalue([0.5], [1.0]) == 1.0
