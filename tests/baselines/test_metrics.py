"""Tests for ranking-quality metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.metrics import (
    average_precision,
    kendall_tau,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)

rankings = st.lists(st.sampled_from("abcdefgh"), unique=True, max_size=8)


class TestPrecision:
    def test_known_value(self):
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 2) == 0.5

    def test_perfect(self):
        assert precision_at_k(["a", "b"], {"a", "b"}, 2) == 1.0

    def test_short_list_penalized(self):
        assert precision_at_k(["a"], {"a"}, 10) == pytest.approx(0.1)

    def test_empty_relevant(self):
        assert precision_at_k(["a"], set(), 1) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)


class TestRecall:
    def test_known_value(self):
        assert recall_at_k(["a", "b"], {"a", "c"}, 2) == 0.5

    def test_no_relevant_items(self):
        assert recall_at_k(["a"], set(), 5) == 0.0

    def test_all_found(self):
        assert recall_at_k(["a", "b", "c"], {"b", "c"}, 3) == 1.0

    @given(rankings, st.sets(st.sampled_from("abcdefgh"), max_size=8))
    def test_recall_monotone_in_k(self, ranking, relevant):
        values = [recall_at_k(ranking, relevant, k) for k in range(1, 9)]
        assert values == sorted(values)


class TestNdcg:
    def test_ideal_order_scores_one(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["a", "b", "c"], gains, 3) == pytest.approx(1.0)

    def test_reversed_order_scores_less(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["c", "b", "a"], gains, 3) < 1.0

    def test_unknown_items_zero_gain(self):
        gains = {"a": 1.0}
        assert ndcg_at_k(["x", "y"], gains, 2) == 0.0

    def test_no_positive_gains(self):
        assert ndcg_at_k(["a"], {"a": 0.0}, 1) == 0.0

    @given(
        st.lists(st.sampled_from("abcde"), unique=True, min_size=1, max_size=5),
        st.dictionaries(st.sampled_from("abcde"), st.floats(0.0, 5.0), max_size=5),
    )
    def test_bounded(self, ranking, gains):
        assert 0.0 <= ndcg_at_k(ranking, gains, 5) <= 1.0 + 1e-9


class TestAveragePrecision:
    def test_perfect_prefix(self):
        assert average_precision(["a", "b", "x"], {"a", "b"}) == 1.0

    def test_relevant_at_end(self):
        assert average_precision(["x", "y", "a"], {"a"}) == pytest.approx(1 / 3)

    def test_none_found(self):
        assert average_precision(["x", "y"], {"a"}) == 0.0

    def test_empty_relevant(self):
        assert average_precision(["x"], set()) == 0.0


class TestKendallTau:
    def test_identical_rankings(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_rankings(self):
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_single_swap(self):
        assert kendall_tau(["a", "b", "c"], ["b", "a", "c"]) == pytest.approx(1 / 3)

    def test_fewer_than_two_common(self):
        assert kendall_tau(["a"], ["b"]) == 1.0

    def test_ignores_uncommon_items(self):
        assert kendall_tau(["a", "x", "b"], ["a", "y", "b"]) == 1.0

    @given(rankings, rankings)
    def test_bounded_and_antisymmetric(self, a, b):
        tau = kendall_tau(a, b)
        assert -1.0 <= tau <= 1.0
