"""Phase profiler: self-time math, input normalisation, rendering."""

from repro.obs import Observability, phase_profile, render_flame_table
from repro.obs.events import EventBus, RingSink
from repro.obs.profile import spans_from_events
from repro.web.clock import SimulatedClock


def span_record(
    name,
    trace_id=1,
    span_id=1,
    parent_id=None,
    wall=0.0,
    virtual=0.0,
    error=None,
):
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "wall_seconds": wall,
        "virtual_seconds": virtual,
        "error": error,
    }


class TestSelfTimeMath:
    def test_children_subtracted_from_parent(self):
        spans = [
            span_record("root", span_id=1, wall=10.0, virtual=100.0),
            span_record("child", span_id=2, parent_id=1, wall=4.0, virtual=60.0),
            span_record("child", span_id=3, parent_id=1, wall=3.0, virtual=30.0),
        ]
        by_name = {p.name: p for p in phase_profile(spans)}
        root, child = by_name["root"], by_name["child"]
        assert root.virtual_total == 100.0
        assert root.virtual_self == 10.0  # 100 - (60 + 30)
        assert root.wall_self == 3.0
        assert child.calls == 2
        assert child.virtual_self == 90.0  # leaves keep everything

    def test_grandchildren_only_charge_their_parent(self):
        spans = [
            span_record("root", span_id=1, virtual=100.0),
            span_record("mid", span_id=2, parent_id=1, virtual=80.0),
            span_record("leaf", span_id=3, parent_id=2, virtual=50.0),
        ]
        by_name = {p.name: p for p in phase_profile(spans)}
        assert by_name["root"].virtual_self == 20.0
        assert by_name["mid"].virtual_self == 30.0
        assert by_name["leaf"].virtual_self == 50.0

    def test_self_time_clamped_at_zero(self):
        spans = [
            span_record("root", span_id=1, virtual=1.0),
            span_record("child", span_id=2, parent_id=1, virtual=5.0),
        ]
        by_name = {p.name: p for p in phase_profile(spans)}
        assert by_name["root"].virtual_self == 0.0

    def test_same_span_ids_in_different_traces_stay_separate(self):
        spans = [
            span_record("root", trace_id=1, span_id=1, virtual=10.0),
            span_record("root", trace_id=2, span_id=1, virtual=10.0),
            span_record("child", trace_id=2, span_id=2, parent_id=1, virtual=4.0),
        ]
        by_name = {p.name: p for p in phase_profile(spans)}
        # Only trace 2's root loses the child's time.
        assert by_name["root"].virtual_self == 16.0

    def test_errors_counted(self):
        spans = [
            span_record("a", span_id=1, error="RuntimeError: boom"),
            span_record("a", span_id=2),
        ]
        (profile,) = phase_profile(spans)
        assert profile.errors == 1
        assert profile.calls == 2

    def test_sorted_by_virtual_self_descending(self):
        spans = [
            span_record("cheap", span_id=1, virtual=1.0),
            span_record("dear", span_id=2, virtual=9.0),
        ]
        assert [p.name for p in phase_profile(spans)] == ["dear", "cheap"]


class TestInputShapes:
    def test_live_spans_from_a_tracer(self):
        clock = SimulatedClock()
        obs = Observability()
        with obs.span("outer", clock=clock):
            with obs.span("inner", clock=clock):
                clock.advance(3.0)
            clock.advance(1.0)
        by_name = {p.name: p for p in phase_profile(obs.tracer.finished())}
        assert by_name["outer"].virtual_self == 1.0
        assert by_name["inner"].virtual_self == 3.0

    def test_span_end_events_round_trip(self):
        # The CLI's offline path: events logged to JSONL, read back.
        clock = SimulatedClock()
        sink = RingSink()
        obs = Observability()
        obs.tracer._events = EventBus([sink])
        with obs.span("outer", clock=clock):
            clock.advance(2.0)
        records = spans_from_events(e.to_dict() for e in sink.events())
        assert len(records) == 1
        (profile,) = phase_profile(records)
        assert profile.name == "outer"
        assert profile.virtual_total == 2.0

    def test_spans_from_events_filters_other_events(self):
        rows = [
            {"event": "metric", "name": "x"},
            {"event": "span_end", "span": "a", "wall_seconds": 0.1},
        ]
        records = spans_from_events(rows)
        assert len(records) == 1
        (profile,) = phase_profile(records)
        assert profile.name == "a"


class TestRendering:
    def test_flame_table_has_header_and_rows(self):
        spans = [span_record("alpha", span_id=1, virtual=2.0, wall=0.5)]
        table = render_flame_table(phase_profile(spans))
        lines = table.splitlines()
        assert lines[0].startswith("span")
        assert "alpha" in lines[1]
        assert "2.000s" in lines[1]

    def test_top_limits_rows(self):
        spans = [
            span_record(f"s{i}", span_id=i + 1, virtual=float(i)) for i in range(5)
        ]
        table = render_flame_table(phase_profile(spans), top=2)
        assert len(table.splitlines()) == 3  # header + 2 rows

    def test_to_dict_rounds(self):
        spans = [span_record("a", span_id=1, virtual=1.23456789)]
        (profile,) = phase_profile(spans)
        assert profile.to_dict()["virtual_total"] == 1.234568
