"""Tail-based trace retention: keep the interesting trees, drop the rest."""

import pytest

from repro.obs import Observability, TailRetentionPolicy
from repro.obs.events import EventBus, RingSink
from repro.obs.spans import Tracer
from repro.web.clock import SimulatedClock


def make_tracer(events=None):
    return Tracer(events=events)


class TestPolicyValidation:
    def test_rejects_zero_pending_capacity(self):
        with pytest.raises(ValueError, match="pending_capacity"):
            TailRetentionPolicy(pending_capacity=0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match="latency_threshold"):
            TailRetentionPolicy(latency_threshold=-1.0)

    def test_defaults_keep_errors_only(self):
        policy = TailRetentionPolicy()
        assert policy.keep_errors and policy.latency_threshold is None


class TestRetentionDecisions:
    def test_disabled_by_default_keeps_everything(self):
        tracer = make_tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.finished()) == 1
        assert tracer.retention_stats()["enabled"] is False

    def test_healthy_fast_trace_evicted(self):
        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy(latency_threshold=10.0))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert tracer.finished() == []
        stats = tracer.retention_stats()
        assert stats["evicted_traces"] == 1
        assert stats["evicted_spans"] == 2

    def test_erroring_trace_retained_in_full(self):
        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy())
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("ok_child"):
                    pass
                with tracer.span("bad_child"):
                    raise RuntimeError("boom")
        # The whole tree survives, including the span that did not fail.
        assert sorted(s.name for s in tracer.finished()) == [
            "bad_child",
            "ok_child",
            "root",
        ]
        assert tracer.retention_stats()["retained_traces"] == 1

    def test_error_retention_can_be_disabled(self):
        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy(keep_errors=False))
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                raise RuntimeError("boom")
        assert tracer.finished() == []

    def test_slow_trace_retained_on_virtual_clock(self):
        clock = SimulatedClock()
        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy(latency_threshold=5.0))
        with tracer.span("slow", clock=clock):
            clock.advance(9.0)
        with tracer.span("fast", clock=clock):
            clock.advance(1.0)
        assert [s.name for s in tracer.finished()] == ["slow"]

    def test_wall_clock_fallback_without_virtual_timing(self):
        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy(latency_threshold=0.0))
        with tracer.span("any"):  # wall duration > 0 always
            pass
        assert [s.name for s in tracer.finished()] == ["any"]

    def test_mark_retain_overrides_policy(self):
        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy(latency_threshold=100.0))
        with tracer.span("root") as span:
            tracer.mark_retain(span.trace_id)
        assert [s.name for s in tracer.finished()] == ["root"]

    def test_nested_spans_share_the_root_fate(self):
        clock = SimulatedClock()
        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy(latency_threshold=5.0))
        with tracer.span("root", clock=clock):
            with tracer.span("child", clock=clock):
                clock.advance(9.0)  # child is slow, so root is slow too
        assert sorted(s.name for s in tracer.finished()) == ["child", "root"]


class TestPendingBuffer:
    def test_pending_overflow_evicts_oldest(self):
        import contextvars

        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy(pending_capacity=2))
        # Three traces whose roots never close: each opened in a copied
        # context so the leaked roots stay distinct top-level traces and
        # never pollute this thread's span context.
        def open_trace(i):
            root = tracer.span(f"root-{i}")
            root.__enter__()
            with tracer.span(f"child-{i}"):
                pass

        for i in range(3):
            contextvars.copy_context().run(open_trace, i)
        stats = tracer.retention_stats()
        assert stats["pending_traces"] == 2
        assert stats["evicted_traces"] == 1  # the oldest open trace
        assert stats["evicted_spans"] == 1

    def test_disable_commits_pending(self):
        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy())
        root = tracer.span("root")
        root.__enter__()
        with tracer.span("child"):
            pass
        assert tracer.finished() == []  # buffered, root still open
        tracer.disable_tail_retention()
        assert [s.name for s in tracer.finished()] == ["child"]
        assert tracer.retention_stats()["enabled"] is False
        root.__exit__(None, None, None)

    def test_clear_drops_pending_state(self):
        import contextvars

        tracer = make_tracer()
        tracer.enable_tail_retention(TailRetentionPolicy())

        def open_trace():
            tracer.span("root").__enter__()
            with tracer.span("child"):
                pass

        contextvars.copy_context().run(open_trace)
        assert tracer.retention_stats()["pending_traces"] == 1
        tracer.clear()
        assert tracer.retention_stats()["pending_traces"] == 0


class TestEventsUnaffected:
    def test_span_end_events_emitted_for_evicted_traces(self):
        # Retention governs the in-memory ring only; the structured log
        # still sees every span, so offline profiling stays complete.
        sink = RingSink()
        tracer = make_tracer(events=EventBus([sink]))
        tracer.enable_tail_retention(TailRetentionPolicy(latency_threshold=99.0))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert tracer.finished() == []
        assert sorted(e.fields["span"] for e in sink.events("span_end")) == [
            "child",
            "root",
        ]


class TestObservabilityIntegration:
    def test_facade_exposes_retention(self):
        obs = Observability()
        obs.tracer.enable_tail_retention(TailRetentionPolicy())
        with pytest.raises(ValueError):
            with obs.span("request"):
                raise ValueError("bad request")
        with obs.span("request"):
            pass
        stats = obs.tracer.retention_stats()
        assert stats["retained_traces"] == 1
        assert stats["evicted_traces"] == 1
