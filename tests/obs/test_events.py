"""Tests for structured events and sinks."""

import json

import pytest

from repro.obs.events import Event, EventBus, JsonlSink, RingSink, SinkClosedError


class TestEvent:
    def test_to_dict_flattens_fields(self):
        event = Event("tick", wall_time=1.0, virtual_time=2.0, fields={"n": 3})
        assert event.to_dict() == {
            "event": "tick",
            "wall_time": 1.0,
            "virtual_time": 2.0,
            "n": 3,
        }

    def test_virtual_time_omitted_when_absent(self):
        assert "virtual_time" not in Event("tick", wall_time=1.0).to_dict()


class TestRingSink:
    def test_keeps_most_recent(self):
        sink = RingSink(capacity=3)
        bus = EventBus([sink])
        for i in range(5):
            bus.emit("tick", i=i)
        assert [e.fields["i"] for e in sink.events()] == [2, 3, 4]

    def test_filter_by_name(self):
        sink = RingSink()
        bus = EventBus([sink])
        bus.emit("a")
        bus.emit("b")
        bus.emit("a")
        assert len(sink.events("a")) == 2
        assert len(sink.events()) == 3

    def test_clear(self):
        sink = RingSink()
        sink.write(Event("x", wall_time=0.0))
        sink.clear()
        assert sink.events() == []

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RingSink(capacity=0)


class TestJsonlSink:
    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            bus = EventBus([sink])
            bus.emit("first", n=1)
            bus.emit("second", n=2)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["event"] for line in lines] == ["first", "second"]
        assert lines[1]["n"] == 2

    def test_unserialisable_values_stringified(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.write(Event("odd", wall_time=0.0, fields={"obj": object()}))
        record = json.loads(path.read_text())
        assert record["obj"].startswith("<object object")

    def test_write_after_close_raises_typed_error(self, tmp_path):
        # A silent drop would lose telemetry after a mis-ordered
        # shutdown; the contract is now a loud, typed failure.
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.close()
        with pytest.raises(SinkClosedError, match="late"):
            sink.write(Event("late", wall_time=0.0))
        assert path.read_text() == ""
        assert sink.closed

    def test_exit_flushes_during_exception_propagation(self, tmp_path):
        # A crashing run must still leave its buffered lines on disk.
        path = tmp_path / "events.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with JsonlSink(path) as sink:
                bus = EventBus([sink])
                bus.emit("before_crash", n=1)
                raise RuntimeError("boom")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["event"] for line in lines] == ["before_crash"]
        assert sink.closed

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        sink.close()
        assert sink.closed


class TestEventBus:
    def test_fans_out_to_all_sinks(self):
        a, b = RingSink(), RingSink()
        bus = EventBus([a])
        bus.add_sink(b)
        bus.emit("tick")
        assert len(a.events()) == len(b.events()) == 1

    def test_remove_sink(self):
        sink = RingSink()
        bus = EventBus([sink])
        bus.remove_sink(sink)
        bus.emit("tick")
        assert sink.events() == []
        bus.remove_sink(sink)  # idempotent

    def test_clock_stamps_virtual_time(self):
        from repro.web.clock import SimulatedClock

        clock = SimulatedClock()
        clock.advance(7.5)
        event = EventBus([RingSink()]).emit("tick", clock=clock)
        assert event.virtual_time == 7.5
