"""Tests for hierarchical spans and the tracer."""

import json

import pytest

from repro.obs.events import EventBus, RingSink
from repro.obs.spans import NULL_SPAN, Tracer, current_span
from repro.web.clock import SimulatedClock


class TestParenting:
    def test_nested_spans_share_a_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert outer.trace_id == middle.trace_id == inner.trace_id
        assert outer.parent_id is None

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_current_span_tracks_context(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_parenting_crosses_pool_threads(self):
        from repro.concurrency import create_executor
        from repro.obs import Observability, use

        obs = Observability()
        executor = create_executor(4, backend="thread")

        def task(i):
            with obs.span("child", i=i) as span:
                return span

        with use(obs):
            with obs.span("parent") as parent:
                children = executor.map(task, range(8))
        assert all(c.trace_id == parent.trace_id for c in children)
        # Each child sits inside the executor's own per-task span, which
        # in turn parents under the span that was open at submit time.
        wrappers = {s.span_id: s for s in obs.tracer.finished("executor.task")}
        for child in children:
            assert wrappers[child.parent_id].parent_id == parent.span_id


class TestTiming:
    def test_wall_duration_recorded(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.wall_end is not None
        assert span.wall_seconds >= 0.0

    def test_virtual_duration_from_clock(self):
        tracer = Tracer()
        clock = SimulatedClock()
        with tracer.span("work", clock=clock) as span:
            clock.advance(3.25)
        assert span.virtual_seconds == pytest.approx(3.25)

    def test_virtual_is_none_without_clock(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.virtual_seconds is None
        assert "virtual_seconds" not in span.to_dict()

    def test_children_inherit_parent_clock(self):
        tracer = Tracer()
        clock = SimulatedClock()
        with tracer.span("outer", clock=clock):
            with tracer.span("inner") as inner:
                clock.advance(1.0)
        assert inner.virtual_seconds == pytest.approx(1.0)


class TestRecording:
    def test_finished_ring_bounded(self):
        tracer = Tracer(capacity=2)
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.finished()] == ["s2", "s3"]

    def test_error_captured(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        [span] = tracer.finished()
        assert span.error == "RuntimeError: kaput"
        assert span.to_dict()["error"] == "RuntimeError: kaput"

    def test_span_end_event_emitted(self):
        ring = RingSink()
        tracer = Tracer(events=EventBus([ring]))
        with tracer.span("work", host="dblp"):
            pass
        [event] = ring.events("span_end")
        assert event.fields["span"] == "work"
        assert event.fields["labels"] == {"host": "dblp"}

    def test_labels_and_set_label(self):
        tracer = Tracer()
        with tracer.span("work", a=1) as span:
            span.set_label("b", 2)
        assert span.to_dict()["labels"] == {"a": 1, "b": 2}

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        tracer.clear()
        assert tracer.finished() == []

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestSpanTrees:
    def test_forest_structure(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("left"):
                pass
            with tracer.span("right"):
                with tracer.span("leaf"):
                    pass
        [tree] = tracer.span_trees()
        assert tree["name"] == "root"
        assert [c["name"] for c in tree["children"]] == ["left", "right"]
        assert tree["children"][1]["children"][0]["name"] == "leaf"

    def test_trace_id_filter(self):
        tracer = Tracer()
        with tracer.span("first") as first:
            pass
        with tracer.span("second"):
            pass
        trees = tracer.span_trees(trace_id=first.trace_id)
        assert [t["name"] for t in trees] == ["first"]

    def test_orphans_surface_as_roots(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            # The parent is still open (unrecorded), so the finished
            # child has no recorded parent and surfaces as a root.
            [tree] = tracer.span_trees()
        assert tree["name"] == "child"

    def test_trees_are_json_serialisable(self):
        tracer = Tracer()
        clock = SimulatedClock()
        with tracer.span("root", clock=clock, n=1):
            clock.advance(0.5)
        json.dumps(tracer.span_trees())


class TestNullSpan:
    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set_label("anything", 1)
        assert span is NULL_SPAN
        assert current_span() is None
