"""Per-request cost ledger: unit accounting and pipeline wiring.

The ledger is a contextvar-scoped accumulator: instrumented code calls
the module-level ``charge_*`` helpers, which bill every ledger active
on the current context — so a whole recommendation run rolls up into
one itemised cost record without threading a handle through the stack.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.obs import Observability, RequestLedger, use
from repro.obs.ledger import (
    active_ledgers,
    charge_cache,
    charge_features,
    charge_http,
    charge_pruning,
    record_phase,
)
from repro.scholarly.registry import ScholarlyHub


class TestRequestLedgerUnit:
    def test_http_rolls_up_by_host(self):
        ledger = RequestLedger("r")
        ledger.add_http("a.example", 200, 0.5)
        ledger.add_http("a.example", 503, 1.5)
        ledger.add_http("b.example", 200, 0.25)
        payload = ledger.to_dict()
        assert payload["http"]["a.example"] == {
            "requests": 2,
            "errors": 1,
            "virtual_seconds": 2.0,
        }
        assert payload["http"]["b.example"]["errors"] == 0
        assert ledger.requests == 3
        assert ledger.virtual_seconds == pytest.approx(2.25)

    def test_client_errors_counted_as_errors(self):
        ledger = RequestLedger()
        ledger.add_http("a.example", 404, 0.1)
        assert ledger.to_dict()["http"]["a.example"]["errors"] == 1

    def test_cache_hit_rates(self):
        ledger = RequestLedger()
        for hit in (True, True, False):
            ledger.add_cache("crawler", hit)
        payload = ledger.to_dict()["caches"]["crawler"]
        assert payload == {"hits": 2, "misses": 1, "hit_rate": pytest.approx(2 / 3)}

    def test_feature_reuse_and_prune_rates(self):
        ledger = RequestLedger()
        ledger.add_features(built=3, reused=1)
        ledger.add_pruning(ranked=10, pruned=4)
        payload = ledger.to_dict()
        assert payload["features"] == {
            "built": 3,
            "reused": 1,
            "reuse_rate": pytest.approx(0.25),
        }
        assert payload["pruning"] == {
            "ranked": 10,
            "pruned": 4,
            "prune_rate": pytest.approx(0.4),
        }

    def test_phases_preserve_order(self):
        ledger = RequestLedger()
        ledger.add_phase("resolve", 0.1, 1.0, 2)
        ledger.add_phase("score", 0.2, 3.0, 5)
        names = [phase["phase"] for phase in ledger.to_dict()["phases"]]
        assert names == ["resolve", "score"]

    def test_empty_ledger_serialises_cleanly(self):
        payload = RequestLedger("empty").to_dict()
        assert payload["label"] == "empty"
        assert payload["requests"] == 0
        assert payload["http"] == {}
        assert payload["features"]["reuse_rate"] == 0.0


class TestChargeHelpers:
    def test_charges_reach_only_active_ledgers(self):
        outside = RequestLedger("outside")
        with RequestLedger("inside") as inside:
            charge_http("a.example", 200, 0.5)
            charge_cache("crawler", hit=True)
        charge_http("a.example", 200, 0.5)  # nobody listening
        assert inside.requests == 1
        assert outside.requests == 0
        assert active_ledgers() == ()

    def test_nested_ledgers_both_billed(self):
        with RequestLedger("outer") as outer:
            charge_http("a.example", 200, 1.0)
            with RequestLedger("inner") as inner:
                charge_http("b.example", 503, 2.0)
                charge_features(2, 3)
                charge_pruning(10, 5)
                record_phase("score", 0.1, 2.0, 1)
        assert outer.requests == 2
        assert inner.requests == 1
        assert outer.to_dict()["features"]["built"] == 2
        assert inner.to_dict()["pruning"]["pruned"] == 5
        assert [p["phase"] for p in outer.to_dict()["phases"]] == ["score"]

    def test_zero_feature_charge_is_free(self):
        with RequestLedger() as ledger:
            charge_features(0, 0)
        assert ledger.to_dict()["features"] == {
            "built": 0,
            "reused": 0,
            "reuse_rate": 0.0,
        }

    def test_exit_restores_previous_stack(self):
        with RequestLedger("a") as a:
            with RequestLedger("b"):
                assert len(active_ledgers()) == 2
            assert active_ledgers() == (a,)


class TestLedgerPipelineWiring:
    """A real recommendation run bills http, caches, features, phases."""

    @pytest.fixture(scope="class")
    def bills(self, world):
        from tests.conftest import make_manuscript

        author = next(iter(world.authors.values()))
        manuscript = make_manuscript(world, author)
        hub = ScholarlyHub.deploy(world, cache_ttl=None)
        obs = Observability()
        with use(obs):
            minaret = Minaret(hub, config=PipelineConfig(workers=2))
            with RequestLedger("cold") as cold:
                minaret.recommend(manuscript)
            with RequestLedger("warm") as warm:
                minaret.recommend(manuscript)
        return cold.to_dict(), warm.to_dict()

    def test_http_charged_per_host(self, bills):
        cold, _ = bills
        assert cold["requests"] > 0
        assert cold["http"]
        for host, row in cold["http"].items():
            assert host in ("dblp.org", "scholar.google.com", "dl.acm.org",
                            "orcid.org", "publons.com", "researcherid.com")
            assert row["requests"] >= 1
            assert row["virtual_seconds"] > 0

    def test_warm_run_billed_to_caches_not_the_wire(self, bills):
        cold, warm = bills
        assert cold["caches"]["crawler"]["misses"] > 0
        assert warm["caches"]["crawler"]["hit_rate"] == 1.0
        assert warm["caches"]["crawler"]["misses"] == 0
        assert warm["requests"] == 0  # cache absorbed the whole run

    def test_features_built_then_reused(self, bills):
        cold, warm = bills
        assert cold["features"]["built"] > 0
        assert warm["features"]["built"] == 0
        assert warm["features"]["reuse_rate"] == 1.0

    def test_phases_cover_the_pipeline(self, bills):
        cold, _ = bills
        phases = {phase["phase"] for phase in cold["phases"]}
        assert {"verify_authors", "extract_candidates", "rank"} <= phases
        total_virtual = sum(phase["virtual_seconds"] for phase in cold["phases"])
        assert total_virtual >= cold["virtual_seconds"] * 0.5

    def test_worker_threads_bill_the_request_ledger(self, bills):
        # Phase work runs on pool threads; context propagation means
        # their http spend still lands on this request's ledger.
        cold, _ = bills
        assert sum(row["requests"] for row in cold["http"].values()) == (
            cold["requests"]
        )
