"""SLO engine: specs, windows, burn-rate alerts, and the degradation arc.

The centerpiece is the synthetic-incident scenario the issue demands:
a steady request stream against one simulated host whose fault policy
ramps up mid-run, walking the health verdict ``ok -> warn -> burning``
deterministically under the virtual clock — with the burn-rate alert
firing *before* the compliance window's error budget is exhausted, and
tail-based retention keeping the breaching traces while evicting the
healthy ones.
"""

import pytest

from repro.obs import (
    BurnAlert,
    Observability,
    SloEngine,
    SloSpec,
    TailRetentionPolicy,
    default_http_slos,
    use,
)
from repro.obs.metrics import MetricsRegistry
from repro.web.clock import SimulatedClock
from repro.web.faults import FaultPolicy
from repro.web.http import LatencyModel, ServiceUnavailableError, SimulatedHttpClient


class TestSloSpec:
    def test_budget_is_one_minus_objective(self):
        spec = SloSpec(name="s", metric="m", objective=0.95)
        assert spec.budget == pytest.approx(0.05)

    def test_default_alerts_fill_in(self):
        spec = SloSpec(name="s", metric="m", window=3600.0)
        severities = [alert.severity for alert in spec.alerts]
        assert severities == ["burning", "warn"]

    def test_objective_validated(self):
        with pytest.raises(ValueError, match="objective"):
            SloSpec(name="s", metric="m", objective=1.0)

    def test_labels_sorted_for_stable_identity(self):
        spec = SloSpec(name="s", metric="m", labels=(("b", "2"), ("a", "1")))
        assert spec.labels == (("a", "1"), ("b", "2"))

    def test_alert_validation(self):
        with pytest.raises(ValueError, match="severity"):
            BurnAlert("page", 1.0, 60.0, 10.0)
        with pytest.raises(ValueError, match="short window"):
            BurnAlert("warn", 1.0, 10.0, 60.0)


class TestSloEngine:
    def test_no_traffic_is_healthy(self):
        engine = SloEngine(MetricsRegistry())
        engine.add(SloSpec(name="s", metric="m"))
        status = engine.status("s")
        assert status.verdict == "ok"
        assert status.good_ratio == 1.0
        assert status.events == 0

    def test_good_ratio_counts_threshold_breaches(self):
        registry = MetricsRegistry()
        engine = SloEngine(registry)
        engine.add(SloSpec(name="s", metric="m", threshold=0.1, objective=0.5))
        for _ in range(8):
            registry.observe("m", 0.05)
        for _ in range(2):
            registry.observe("m", 5.0)
        status = engine.status("s")
        assert status.good_ratio == pytest.approx(0.8)
        assert status.bad == pytest.approx(2.0)

    def test_error_metric_subtracts_from_good(self):
        registry = MetricsRegistry()
        engine = SloEngine(registry)
        engine.add(
            SloSpec(
                name="s",
                metric="m",
                threshold=10.0,
                error_metric="errors_total",
                error_labels=(("kind", "fault"),),
            )
        )
        for _ in range(10):
            registry.observe("m", 0.05)
        registry.inc("errors_total", 3.0, kind="fault")
        registry.inc("errors_total", 99.0, kind="other")  # filtered out
        status = engine.status("s")
        assert status.bad == pytest.approx(3.0)

    def test_window_forgets_old_badness(self):
        clock = SimulatedClock()
        registry = MetricsRegistry()
        engine = SloEngine(registry, clock=clock)
        engine.add(
            SloSpec(name="s", metric="m", threshold=0.1, objective=0.9, window=100.0)
        )
        # Ten bad events early on, checkpointed ...
        for _ in range(10):
            registry.observe("m", 5.0)
        engine.tick()
        assert engine.status("s").verdict == "burning"
        # ... then the window slides past them with only good traffic.
        for _ in range(20):
            clock.advance(10.0)
            registry.observe("m", 0.01)
            engine.tick()
        status = engine.status("s")
        assert status.good_ratio == 1.0
        assert status.verdict == "ok"

    def test_replace_and_remove(self):
        engine = SloEngine(MetricsRegistry())
        engine.add(SloSpec(name="s", metric="m", objective=0.9))
        engine.add(SloSpec(name="s", metric="m", objective=0.5))
        assert [spec.objective for spec in engine.specs()] == [0.5]
        engine.remove("s")
        assert engine.specs() == []
        assert not engine.has_specs

    def test_verdict_aggregates_worst(self):
        registry = MetricsRegistry()
        engine = SloEngine(registry)
        engine.add(SloSpec(name="good", metric="a", threshold=1.0, objective=0.5))
        engine.add(SloSpec(name="bad", metric="b", threshold=0.1, objective=0.99))
        registry.observe("a", 0.01)
        for _ in range(5):
            registry.observe("b", 9.0)
        assert engine.status("good").verdict == "ok"
        assert engine.status("bad").verdict == "burning"
        assert engine.verdict() == "burning"

    def test_default_http_slos_one_per_host(self):
        specs = default_http_slos(["b.example", "a.example"])
        assert [spec.name for spec in specs] == [
            "http-a.example",
            "http-b.example",
        ]
        assert specs[0].error_labels == (
            ("host", "a.example"),
            ("status", "503"),
        )

    def test_status_to_dict_round_trips_alerts(self):
        engine = SloEngine(MetricsRegistry())
        engine.add(SloSpec(name="s", metric="m"))
        payload = engine.status("s").to_dict()
        assert payload["verdict"] == "ok"
        assert all("firing" in alert for alert in payload["alerts"])


HOST = "degrading.example"


class TestDegradationScenario:
    """The issue's acceptance scenario, end to end and deterministic."""

    # 1 virtual second per request: request index == virtual time.
    WARN_ALERT = BurnAlert("warn", 2.0, long_window=60.0, short_window=20.0)
    BURN_ALERT = BurnAlert("burning", 6.0, long_window=60.0, short_window=10.0)

    @pytest.fixture(scope="class")
    def arc(self):
        """Run the three-phase incident once; tests assert on its course."""
        obs = Observability()
        obs.tracer.enable_tail_retention(
            TailRetentionPolicy(latency_threshold=50.0, keep_errors=True)
        )
        clock = SimulatedClock()
        client = SimulatedHttpClient(clock)
        client.register_host(
            HOST, lambda req: {}, latency=LatencyModel(base=1.0, jitter=0.0)
        )
        engine = obs.slo
        engine.bind_clock(clock)
        engine.add(
            SloSpec(
                name="slo",
                metric="http_request_latency_seconds",
                labels=(("host", HOST),),
                threshold=2.0,
                objective=0.9,
                window=600.0,
                error_metric="http_requests_total",
                error_labels=(("host", HOST), ("status", "503")),
                alerts=(self.BURN_ALERT, self.WARN_ALERT),
            )
        )
        course = []  # (index, verdict, status) after each request
        healthy_traces = 0
        with use(obs):
            index = 0

            def drive(count):
                nonlocal index
                for _ in range(count):
                    try:
                        with obs.span("request", clock=clock, i=index):
                            client.get(HOST, f"/item/{index}")
                    except ServiceUnavailableError:
                        pass
                    engine.tick()
                    course.append((index, engine.status("slo")))
                    index += 1

            drive(500)  # phase 1: healthy steady state
            healthy_traces = index - client.stats[HOST].faults
            client.set_fault_policy(
                HOST, FaultPolicy(failure_probability=0.3, seed=1)
            )
            drive(60)  # phase 2: partial degradation
            client.set_fault_policy(
                HOST, FaultPolicy(failure_probability=0.9, seed=2)
            )
            drive(40)  # phase 3: the host falls over
        return {
            "obs": obs,
            "client": client,
            "course": course,
            "healthy_traces": healthy_traces,
        }

    @staticmethod
    def _first(course, verdict, start=0):
        for index, status in course[start:]:
            if status.verdict == verdict:
                return index
        return None

    def test_verdict_walks_ok_warn_burning(self, arc):
        course = arc["course"]
        # Phase 1 is entirely healthy.
        assert all(status.verdict == "ok" for _, status in course[:500])
        first_warn = self._first(course, "warn")
        first_burning = self._first(course, "burning")
        assert first_warn is not None and first_burning is not None
        # Warn during the partial degradation, burning after the cliff.
        assert 500 <= first_warn < 560
        assert 560 <= first_burning < 600
        assert first_warn < first_burning
        # The end state stays on fire.
        assert course[-1][1].verdict == "burning"

    def test_alert_fires_before_budget_exhausted(self, arc):
        course = arc["course"]
        first_burning = self._first(course, "burning")
        status = dict(course)[first_burning]
        # The page fired on burn *rate*, while the compliance window was
        # still inside its objective — that is the point of burn alerts.
        assert status.good_ratio >= status.objective
        assert status.budget_consumed < 1.0
        firing = [dict(a) for a in status.alerts if dict(a)["firing"]]
        assert any(alert["severity"] == "burning" for alert in firing)

    def test_burn_rates_reported_per_tier(self, arc):
        final = arc["course"][-1][1]
        alerts = [dict(a) for a in final.alerts]
        assert {alert["severity"] for alert in alerts} == {"warn", "burning"}
        for alert in alerts:
            assert alert["long_burn"] > alert["factor"]
            assert alert["short_burn"] > alert["factor"]

    def test_breaching_traces_retained_healthy_evicted(self, arc):
        obs, client = arc["obs"], arc["client"]
        stats = obs.tracer.retention_stats()
        faults = client.stats[HOST].faults
        # Every faulted request errored inside its root span: retained.
        assert stats["retained_traces"] == faults
        retained = obs.tracer.finished("request")
        assert retained and all(span.error is not None for span in retained)
        # And at least 90% of the healthy traces were evicted (here: all).
        total_traces = stats["retained_traces"] + stats["evicted_traces"]
        assert total_traces == 600
        assert stats["evicted_traces"] >= 0.9 * (total_traces - faults)

    def test_course_is_deterministic(self, arc):
        """Replaying the exact arc reproduces verdict flips bit-identically."""
        obs = Observability()
        clock = SimulatedClock()
        client = SimulatedHttpClient(clock)
        client.register_host(
            HOST, lambda req: {}, latency=LatencyModel(base=1.0, jitter=0.0)
        )
        engine = obs.slo
        engine.bind_clock(clock)
        engine.add(
            SloSpec(
                name="slo",
                metric="http_request_latency_seconds",
                labels=(("host", HOST),),
                threshold=2.0,
                objective=0.9,
                window=600.0,
                error_metric="http_requests_total",
                error_labels=(("host", HOST), ("status", "503")),
                alerts=(self.BURN_ALERT, self.WARN_ALERT),
            )
        )
        verdicts = []
        with use(obs):
            for index in range(600):
                if index == 500:
                    client.set_fault_policy(
                        HOST, FaultPolicy(failure_probability=0.3, seed=1)
                    )
                if index == 560:
                    client.set_fault_policy(
                        HOST, FaultPolicy(failure_probability=0.9, seed=2)
                    )
                try:
                    client.get(HOST, f"/item/{index}")
                except ServiceUnavailableError:
                    pass
                engine.tick()
                verdicts.append(engine.status("slo").verdict)
        assert verdicts == [status.verdict for _, status in arc["course"]]
