"""Observability must be read-only: enabling it changes no output.

The acceptance bar for the whole subsystem: an instrumented run at any
worker count is bit-identical — same ranking, same scores, same request
counts — to a sequential run with observability disabled.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.obs import Observability, use
from repro.scholarly.registry import ScholarlyHub


def _run(world, manuscript, workers, obs):
    hub = ScholarlyHub.deploy(world)
    with use(obs):
        result = Minaret(hub, config=PipelineConfig(workers=workers)).recommend(
            manuscript
        )
    return result, hub


def _fingerprint(result):
    return [
        (
            scored.candidate.candidate_id,
            scored.total_score,
            scored.breakdown.topic_coverage,
            scored.breakdown.scientific_impact,
            scored.breakdown.recency,
            scored.breakdown.review_experience,
            scored.breakdown.outlet_familiarity,
        )
        for scored in result.ranked
    ]


@pytest.fixture(scope="module")
def manuscript(world):
    from tests.conftest import make_manuscript

    for author in world.authors.values():
        if len(world.authors_by_name(author.name)) == 1:
            return make_manuscript(world, author)
    raise RuntimeError("world has no unambiguous author")


class TestObservabilityIsReadOnly:
    @pytest.fixture(scope="class")
    def baseline(self, world, manuscript):
        result, hub = _run(world, manuscript, 1, Observability.disabled())
        return _fingerprint(result), hub.total_requests(), hub.total_latency()

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_enabled_matches_disabled_baseline(
        self, world, manuscript, baseline, workers
    ):
        obs = Observability()
        result, hub = _run(world, manuscript, workers, obs)
        fingerprint, requests, latency = baseline
        assert _fingerprint(result) == fingerprint
        assert hub.total_requests() == requests
        assert hub.total_latency() == latency
        # The run really was observed, not silently unplugged.
        assert obs.metrics.counter_total("http_requests_total") == requests
        assert obs.tracer.finished("pipeline.recommend")

    def test_jsonl_sink_does_not_perturb(self, world, manuscript, baseline, tmp_path):
        obs = Observability()
        sink = obs.add_jsonl_sink(tmp_path / "events.jsonl")
        try:
            result, hub = _run(world, manuscript, 8, obs)
        finally:
            sink.close()
        fingerprint, requests, _ = baseline
        assert _fingerprint(result) == fingerprint
        assert hub.total_requests() == requests

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_full_telemetry_plane_is_read_only(
        self, world, manuscript, baseline, workers, tmp_path
    ):
        """SLOs ticking + ledger + tail retention + jsonl, still bit-identical."""
        from repro.obs import (
            RequestLedger,
            SloSpec,
            TailRetentionPolicy,
            default_http_slos,
        )

        obs = Observability()
        obs.tracer.enable_tail_retention(
            TailRetentionPolicy(latency_threshold=0.001)  # keep ~everything
        )
        sink = obs.add_jsonl_sink(tmp_path / "events.jsonl")
        hub = ScholarlyHub.deploy(world)
        for spec in default_http_slos(hub.http.hosts()):
            obs.slo.add(spec)
        obs.slo.add(SloSpec(name="strict", metric="http_request_latency_seconds",
                            threshold=0.0001, objective=0.999, window=60.0))
        obs.slo.bind_clock(hub.clock)
        try:
            with use(obs):
                with RequestLedger("determinism") as ledger:
                    result = Minaret(
                        hub, config=PipelineConfig(workers=workers)
                    ).recommend(manuscript)
                obs.slo.tick()
        finally:
            sink.close()
        fingerprint, requests, latency = baseline
        assert _fingerprint(result) == fingerprint
        assert hub.total_requests() == requests
        assert hub.total_latency() == latency
        # The plane really ran: bills were itemised, verdicts computed.
        assert ledger.requests == requests
        assert obs.slo.verdict() in ("ok", "warn", "burning")

    def test_batch_identical_across_worker_counts(self, world):
        from repro.assignment.batch import recommend_batch
        from tests.conftest import make_manuscript

        authors = [
            a
            for a in world.authors.values()
            if len(world.authors_by_name(a.name)) == 1
        ][:3]
        entries = [
            (f"paper-{i}", make_manuscript(world, author))
            for i, author in enumerate(authors)
        ]

        def run(workers, obs):
            hub = ScholarlyHub.deploy(world)
            with use(obs):
                results = recommend_batch(
                    Minaret(hub), entries, workers=workers
                )
            return [
                (paper_id, _fingerprint(result)) for paper_id, result in results
            ]

        baseline = run(1, Observability.disabled())
        assert run(2, Observability()) == baseline
        assert run(8, Observability()) == baseline
