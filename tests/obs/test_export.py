"""Prometheus text exposition and the shared deployment metrics payload."""

import pytest

from repro.obs import Observability, deployment_metrics, render_prometheus, use
from repro.obs.metrics import MetricsRegistry
from repro.scholarly.registry import ScholarlyHub


def populated_registry():
    registry = MetricsRegistry()
    registry.declare_histogram("lat", (0.1, 1.0))
    registry.observe("lat", 0.05, host="a")
    registry.observe("lat", 5.0, host="a")
    registry.inc("reqs_total", host="a", status="200")
    registry.gauge_set("depth", 3, queue="q")
    return registry


class TestRenderPrometheus:
    def test_counter_gauge_histogram_sections(self):
        text = render_prometheus(populated_registry().snapshot())
        lines = text.splitlines()
        assert "# TYPE reqs_total counter" in lines
        assert 'reqs_total{host="a",status="200"} 1' in lines
        assert "# TYPE depth gauge" in lines
        assert 'depth{queue="q"} 3' in lines
        assert "# TYPE lat histogram" in lines

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_prometheus(populated_registry().snapshot())
        lines = text.splitlines()
        assert 'lat_bucket{host="a",le="0.1"} 1' in lines
        assert 'lat_bucket{host="a",le="1.0"} 1' in lines
        assert 'lat_bucket{host="a",le="+Inf"} 2' in lines
        assert 'lat_sum{host="a"} 5.05' in lines
        assert 'lat_count{host="a"} 2' in lines

    def test_ends_with_newline_and_empty_snapshot_is_empty(self):
        assert render_prometheus(populated_registry().snapshot()).endswith("\n")
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.inc("c_total", path='say "hi"\n')
        text = render_prometheus(registry.snapshot())
        assert r'c_total{path="say \"hi\"\n"} 1' in text

    def test_metric_names_sanitised(self):
        registry = MetricsRegistry()
        registry.inc("weird-name.with/slashes")
        text = render_prometheus(registry.snapshot())
        assert "weird_name_with_slashes 1" in text

    def test_deterministic_output(self):
        a = render_prometheus(populated_registry().snapshot())
        b = render_prometheus(populated_registry().snapshot())
        assert a == b


class TestDeploymentMetrics:
    def test_bare_obs_only(self):
        obs = Observability()
        obs.metrics.inc("x_total")
        payload = deployment_metrics(obs)
        assert payload["metrics"]["counters"]["x_total"][0]["value"] == 1.0
        assert payload["http"] == {}
        assert payload["cache"] is None
        assert payload["retrieval"] is None
        assert payload["features"] is None

    def test_full_deployment_payload(self, world):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import Minaret
        from tests.conftest import make_manuscript

        hub = ScholarlyHub.deploy(world)
        obs = Observability()
        with use(obs):
            minaret = Minaret(hub, config=PipelineConfig(warm_cache=True))
            minaret.recommend(
                make_manuscript(world, next(iter(world.authors.values())))
            )
            payload = deployment_metrics(
                obs,
                http=hub.http,
                cache=hub.crawler.cache,
                plane=minaret.plane,
                features=minaret.features,
            )
        assert payload["http"], "per-host stats missing"
        host, row = next(iter(payload["http"].items()))
        assert {"requests", "rate_limited", "faults", "not_found",
                "total_latency"} <= set(row)
        assert payload["cache"]["hit_rate"] == pytest.approx(
            hub.crawler.cache.hit_rate(), abs=1e-4
        )
        assert payload["retrieval"] is not None
        assert payload["features"]["features_built"] > 0

    def test_hosts_sorted(self, world):
        hub = ScholarlyHub.deploy(world)
        payload = deployment_metrics(Observability(), http=hub.http)
        hosts = list(payload["http"])
        assert hosts == sorted(hosts)
