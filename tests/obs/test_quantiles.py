"""Streaming quantile accuracy: bucket interpolation vs. the exact answer.

The histogram keeps an exact sample window for small series and falls
back to bucket-boundary interpolation once the window overflows.  These
tests bound the interpolation error against the exact empirical
quantile on known distributions, pin down the degenerate single-bucket
case, and property-check monotonicity with hypothesis.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import SAMPLE_CAPACITY, MetricsRegistry


def exact_quantile(values, q):
    """Reference implementation: linear interpolation, like numpy default."""
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def fill(registry, name, values, buckets=None):
    if buckets:
        registry.declare_histogram(name, buckets)
    for value in values:
        registry.observe(name, value)


class TestExactPath:
    """While the sample window is complete the answer is exact, full stop."""

    def test_small_series_matches_reference(self):
        registry = MetricsRegistry()
        values = [0.9, 0.1, 0.5, 0.3, 0.7]
        fill(registry, "m", values)
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert registry.quantile("m", q) == pytest.approx(
                exact_quantile(values, q)
            )

    def test_single_observation(self):
        registry = MetricsRegistry()
        registry.observe("m", 42.0)
        assert registry.quantile("m", 0.5) == 42.0
        assert registry.quantile("m", 0.99) == 42.0

    def test_empty_series_is_none(self):
        registry = MetricsRegistry()
        registry.observe("other", 1.0)
        assert registry.quantile("other", 0.5) is not None
        assert registry.quantile("missing", 0.5) is None

    def test_invalid_q_rejected(self):
        registry = MetricsRegistry()
        registry.observe("m", 1.0)
        with pytest.raises(ValueError, match="quantile"):
            registry.quantile("m", 1.5)


class TestBucketPath:
    """Past the window, error is bounded by the bucket width at the mass."""

    BUCKETS = tuple(i / 10 for i in range(1, 21))  # 0.1 .. 2.0 by 0.1

    def overflow_series(self, values):
        """Pad so count > SAMPLE_CAPACITY and the bucket path engages."""
        assert len(values) > SAMPLE_CAPACITY
        return values

    def test_uniform_distribution(self):
        rng = random.Random(7)
        values = [rng.uniform(0.0, 2.0) for _ in range(2 * SAMPLE_CAPACITY)]
        registry = MetricsRegistry()
        fill(registry, "m", self.overflow_series(values), buckets=self.BUCKETS)
        for q in (0.5, 0.95, 0.99):
            estimate = registry.quantile("m", q)
            truth = exact_quantile(values, q)
            # One bucket width of slack on either side.
            assert abs(estimate - truth) <= 0.1 + 1e-9, (q, estimate, truth)

    def test_bimodal_distribution(self):
        rng = random.Random(11)
        values = [rng.uniform(0.1, 0.2) for _ in range(600)]
        values += [rng.uniform(1.8, 1.9) for _ in range(600)]
        rng.shuffle(values)
        registry = MetricsRegistry()
        fill(registry, "m", values, buckets=self.BUCKETS)
        # With exactly half the mass in each mode, order-statistic
        # interpolation puts the median mid-valley (~1.0) — a value the
        # series never produced.  The bucket estimate snaps to the edge
        # of the lower mode instead, which is the answer we want.
        p50 = registry.quantile("m", 0.5)
        assert 0.1 <= p50 <= 0.2 + 1e-9
        # Tail quantiles live inside the upper mode for both methods.
        assert registry.quantile("m", 0.99) == pytest.approx(
            exact_quantile(values, 0.99), abs=0.1
        )
        assert 1.8 - 0.1 <= registry.quantile("m", 0.95) <= 1.9 + 1e-9

    def test_single_bucket_degenerate(self):
        # Every observation in one bucket: interpolation degenerates to
        # a position inside that bucket, never outside its bounds.
        registry = MetricsRegistry()
        registry.declare_histogram("m", (1.0, 2.0, 3.0))
        for _ in range(SAMPLE_CAPACITY + 100):
            registry.observe("m", 1.5)
        for q in (0.01, 0.5, 0.99):
            estimate = registry.quantile("m", q)
            assert 1.0 <= estimate <= 2.0

    def test_overflow_bucket_clamps_to_highest_bound(self):
        registry = MetricsRegistry()
        registry.declare_histogram("m", (1.0, 2.0))
        for _ in range(SAMPLE_CAPACITY + 100):
            registry.observe("m", 50.0)  # all in +Inf
        assert registry.quantile("m", 0.99) == 2.0


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=0.0,
                max_value=100.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=SAMPLE_CAPACITY + 64,
        ),
        qs=st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=2,
            max_size=6,
        ),
    )
    def test_estimates_monotone_in_q(self, values, qs):
        """quantile(q) is non-decreasing in q, exact path or bucketed."""
        registry = MetricsRegistry()
        fill(registry, "m", values)
        estimates = [registry.quantile("m", q) for q in sorted(qs)]
        assert all(not math.isnan(e) for e in estimates)
        assert all(a <= b + 1e-9 for a, b in zip(estimates, estimates[1:]))
