"""Tests for the metrics registry."""

import threading

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounters:
    def test_inc_and_read(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", host="dblp")
        registry.inc("requests_total", host="dblp")
        registry.inc("requests_total", 3.0, host="scholar")
        assert registry.counter_value("requests_total", host="dblp") == 2.0
        assert registry.counter_value("requests_total", host="scholar") == 3.0
        assert registry.counter_total("requests_total") == 5.0

    def test_unwritten_series_reads_zero(self):
        registry = MetricsRegistry()
        assert registry.counter_value("nothing", a="b") == 0.0
        assert registry.counter_total("nothing") == 0.0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.inc("m", a="1", b="2")
        assert registry.counter_value("m", b="2", a="1") == 1.0

    def test_label_values_stringified(self):
        registry = MetricsRegistry()
        registry.inc("m", code=404)
        assert registry.counter_value("m", code="404") == 1.0


class TestGauges:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        registry.gauge_set("inflight", 4.0, pool="a")
        registry.gauge_add("inflight", -1.0, pool="a")
        assert registry.gauge_value("inflight", pool="a") == 3.0

    def test_add_creates_series(self):
        registry = MetricsRegistry()
        registry.gauge_add("inflight", 2.0)
        assert registry.gauge_value("inflight") == 2.0


class TestHistograms:
    def test_observe_and_stats(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.004, host="dblp")
        registry.observe("latency", 0.09, host="dblp")
        registry.observe("latency", 99.0, host="dblp")
        stats = registry.histogram_stats("latency", host="dblp")
        assert stats["count"] == 3
        assert stats["sum"] == pytest.approx(99.094)
        assert stats["buckets"]["0.005"] == 1
        assert stats["buckets"]["0.1"] == 2
        assert stats["buckets"]["+Inf"] == 3

    def test_buckets_are_cumulative_and_monotone(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.02, 0.3, 4.0):
            registry.observe("latency", value)
        stats = registry.histogram_stats("latency")
        counts = list(stats["buckets"].values())
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_first_observation_fixes_bounds(self):
        registry = MetricsRegistry()
        registry.observe("latency", 1.0, buckets=(0.5, 2.0))
        registry.observe("latency", 1.0, buckets=(9.9,), host="x")  # ignored
        assert set(registry.histogram_stats("latency", host="x")["buckets"]) == {
            "0.5",
            "2.0",
            "+Inf",
        }

    def test_default_bounds(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.01)
        buckets = registry.histogram_stats("latency")["buckets"]
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1

    def test_missing_series_is_none(self):
        assert MetricsRegistry().histogram_stats("nope") is None


class TestDeclaredBounds:
    """declare_histogram fixes bucket bounds ahead of any observation."""

    def test_declared_bounds_used_by_all_series(self):
        registry = MetricsRegistry()
        registry.declare_histogram("latency", (0.25, 0.5, 1.0))
        registry.observe("latency", 0.3, host="a")
        registry.observe("latency", 0.3, host="b")
        for host in ("a", "b"):
            buckets = registry.histogram_stats("latency", host=host)["buckets"]
            assert set(buckets) == {"0.25", "0.5", "1.0", "+Inf"}

    def test_declaration_beats_observe_time_buckets(self):
        registry = MetricsRegistry()
        registry.declare_histogram("latency", (1.0, 2.0))
        registry.observe("latency", 0.5, buckets=(9.9,))  # ignored
        buckets = registry.histogram_stats("latency")["buckets"]
        assert set(buckets) == {"1.0", "2.0", "+Inf"}

    def test_identical_redeclaration_is_a_noop(self):
        registry = MetricsRegistry()
        registry.declare_histogram("latency", (1.0, 2.0))
        registry.declare_histogram("latency", (1.0, 2.0))
        registry.observe("latency", 1.5)
        assert registry.histogram_stats("latency")["count"] == 1

    def test_conflicting_redeclaration_raises(self):
        from repro.obs.metrics import HistogramBoundsError

        registry = MetricsRegistry()
        registry.declare_histogram("latency", (1.0, 2.0))
        with pytest.raises(HistogramBoundsError, match="already fixed"):
            registry.declare_histogram("latency", (1.0, 3.0))

    def test_mismatch_after_first_observation_raises(self):
        # Regression guard: the silent-footgun case the declaration API
        # exists to catch — bounds fixed implicitly by a first
        # observation, then a deployment declares different ones.
        from repro.obs.metrics import HistogramBoundsError

        registry = MetricsRegistry()
        registry.observe("latency", 0.2)  # DEFAULT_BUCKETS now fixed
        with pytest.raises(HistogramBoundsError, match="latency"):
            registry.declare_histogram("latency", (1.0, 2.0))
        registry.declare_histogram("latency", DEFAULT_BUCKETS)  # same: fine

    def test_invalid_declarations_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one"):
            registry.declare_histogram("latency", ())
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.declare_histogram("latency", (2.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.declare_histogram("latency", (1.0, 1.0))


class TestSnapshotAndReset:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("c", host="h")
        registry.gauge_set("g", 1.5)
        registry.observe("h", 0.2, route="/x")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c"] == [
            {"labels": {"host": "h"}, "value": 1.0}
        ]
        assert snapshot["gauges"]["g"] == [{"labels": {}, "value": 1.5}]
        [series] = snapshot["histograms"]["h"]
        assert series["labels"] == {"route": "/x"}
        assert series["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.inc("c", host="h", status=200)
        registry.observe("h", 0.2)
        json.dumps(registry.snapshot())

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 0.1, buckets=(1.0,))
        registry.reset()
        assert registry.counter_total("c") == 0.0
        assert registry.histogram_stats("h") is None
        # Bucket-bound registration is gone too: new bounds apply.
        registry.observe("h", 0.1, buckets=(5.0,))
        assert set(registry.histogram_stats("h")["buckets"]) == {"5.0", "+Inf"}


class TestThreadSafety:
    def test_concurrent_increments_all_land(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.inc("c", worker="shared")
                registry.observe("h", 0.01, worker="shared")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("c", worker="shared") == 8000.0
        assert registry.histogram_stats("h", worker="shared")["count"] == 8000


class TestStateShipping:
    """export_state/merge_state: the process backend's delta channel."""

    def test_counters_and_gauges_merge_additively(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.inc("c", backend="process")
        child.inc("c", 2.0, backend="process")
        child.gauge_set("g", 7.0, shard="0")
        parent.merge_state(child.export_state())
        assert parent.counter_value("c", backend="process") == 3.0
        assert parent.snapshot()["gauges"]["g"][0]["value"] == 7.0

    def test_export_reset_clears_the_source(self):
        child = MetricsRegistry()
        child.inc("c")
        child.observe("h", 0.2)
        state = child.export_state(reset=True)
        assert child.counter_total("c") == 0.0
        assert child.histogram_stats("h") is None
        fresh = MetricsRegistry()
        fresh.merge_state(state)
        assert fresh.counter_total("c") == 1.0
        assert fresh.histogram_stats("h")["count"] == 1

    def test_histograms_merge_bucket_for_bucket(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        for value in (0.1, 0.5):
            parent.observe("h", value, buckets=(0.25, 1.0))
        for value in (0.2, 2.0):
            child.observe("h", value, buckets=(0.25, 1.0))
        parent.merge_state(child.export_state())
        stats = parent.histogram_stats("h")
        assert stats["count"] == 4
        assert stats["sum"] == pytest.approx(2.8)
        assert stats["buckets"]["0.25"] == 2

    def test_mismatched_bucket_bounds_fall_back_to_reobserve(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.observe("h", 0.1, buckets=(1.0,))
        child.observe("h", 0.3, buckets=(0.25, 0.5))
        parent.merge_state(child.export_state())
        stats = parent.histogram_stats("h")
        assert stats["count"] == 2
        assert stats["sum"] == pytest.approx(0.4)
        # Parent keeps its own bounds; the child sample lands in them.
        assert set(stats["buckets"]) == {"1.0", "+Inf"}

    def test_merge_state_round_trips_through_pickle(self):
        import pickle

        child = MetricsRegistry()
        child.inc("c", backend="process")
        child.observe("h", 0.2, backend="process")
        state = pickle.loads(pickle.dumps(child.export_state()))
        parent = MetricsRegistry()
        parent.merge_state(state)
        assert parent.counter_value("c", backend="process") == 1.0
        assert parent.histogram_stats("h", backend="process")["count"] == 1
