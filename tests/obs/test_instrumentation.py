"""End-to-end checks that the hot layers actually report telemetry."""

import pytest

from repro.core.pipeline import Minaret
from repro.obs import Observability, get_obs, use
from repro.web.cache import TTLCache
from repro.web.clock import SimulatedClock
from repro.web.faults import FaultPolicy
from repro.web.ratelimit import TokenBucket


@pytest.fixture()
def obs():
    return Observability()


class TestAmbientInstance:
    def test_use_installs_and_restores(self, obs):
        default = get_obs()
        with use(obs):
            assert get_obs() is obs
        assert get_obs() is default

    def test_instrumentation_lands_in_installed_instance(self, obs):
        other = Observability()
        clock = SimulatedClock()
        cache = TTLCache(ttl=None, capacity=4, clock=clock, name="probe")
        with use(obs):
            cache.get("missing")
        assert obs.metrics.counter_value("cache_misses_total", cache="probe") == 1.0
        assert other.metrics.counter_total("cache_misses_total") == 0.0


class TestHttpInstrumentation:
    def test_per_host_counters_and_latency(self, obs, hub, manuscript):
        with use(obs):
            Minaret(hub).recommend(manuscript)
        for host, stats in hub.http.stats.items():
            total = sum(
                series["value"]
                for series in obs.metrics.snapshot()["counters"][
                    "http_requests_total"
                ]
                if series["labels"]["host"] == host
            )
            assert total == stats.requests
            histogram = obs.metrics.snapshot()["histograms"][
                "http_request_latency_seconds"
            ]
            by_host = [s for s in histogram if s["labels"]["host"] == host]
            assert sum(s["count"] for s in by_host) == stats.requests

    def test_status_label_present(self, obs, hub, manuscript):
        with use(obs):
            Minaret(hub).recommend(manuscript)
        assert (
            obs.metrics.counter_value(
                "http_requests_total", host="dblp.org", status="200"
            )
            > 0
        )


class TestCacheInstrumentation:
    def test_hits_misses_and_evictions(self, obs):
        clock = SimulatedClock()
        cache = TTLCache(ttl=10.0, capacity=2, clock=clock, name="c")
        with use(obs):
            cache.get("a")  # miss
            cache.put("a", 1)
            cache.get("a")  # hit
            cache.put("b", 2)
            cache.put("c", 3)  # evicts "a" (capacity)
            clock.advance(11.0)
            cache.get("b")  # expired -> miss + eviction
        counter = obs.metrics.counter_value
        assert counter("cache_hits_total", cache="c") == 1.0
        assert counter("cache_misses_total", cache="c") == 2.0
        assert counter("cache_evictions_total", cache="c", reason="capacity") == 1.0
        assert counter("cache_evictions_total", cache="c", reason="expired") >= 1.0


class TestRateLimitInstrumentation:
    def test_granted_and_denied(self, obs):
        clock = SimulatedClock()
        bucket = TokenBucket(2, 1.0, clock, name="b")
        with use(obs):
            assert bucket.try_acquire()
            assert bucket.try_acquire()
            assert not bucket.try_acquire()
        assert obs.metrics.counter_value("ratelimit_granted_total", bucket="b") == 2.0
        assert obs.metrics.counter_value("ratelimit_denied_total", bucket="b") == 1.0


class TestFaultInstrumentation:
    def test_injected_faults_counted(self, obs):
        policy = FaultPolicy(burst_every=2, seed=7, name="p")
        with use(obs):
            outcomes = [policy.decide(ordinal) for ordinal in range(1, 7)]
        injected = sum(outcomes)
        assert injected > 0
        assert (
            obs.metrics.counter_value("faults_injected_total", policy="p") == injected
        )

    def test_clean_policy_counts_nothing(self, obs):
        policy = FaultPolicy.never()
        with use(obs):
            assert not policy.decide(1)
        assert obs.metrics.counter_total("faults_injected_total") == 0.0


class TestExecutorInstrumentation:
    @pytest.mark.parametrize("workers,backend", [(1, "sequential"), (4, "thread")])
    def test_task_counters_and_spans(self, obs, workers, backend):
        from repro.concurrency import create_executor

        executor = create_executor(workers)
        with use(obs):
            with obs.span("driver"):
                results = executor.map(lambda x: x * 2, range(6))
        assert results == [0, 2, 4, 6, 8, 10]
        assert (
            obs.metrics.counter_value(
                "executor_tasks_total", backend=backend, outcome="ok"
            )
            == 6.0
        )
        assert obs.metrics.gauge_value("executor_inflight", backend=backend) == 0.0
        tasks = obs.tracer.finished("executor.task")
        assert len(tasks) == 6
        [driver] = obs.tracer.finished("driver")
        assert all(t.parent_id == driver.span_id for t in tasks)

    def test_failed_task_counted_as_error(self, obs):
        from repro.concurrency import create_executor

        def boom(x):
            raise ValueError(x)

        with use(obs):
            with pytest.raises(ValueError):
                create_executor(1).map(boom, [1])
        assert (
            obs.metrics.counter_value(
                "executor_tasks_total", backend="sequential", outcome="error"
            )
            == 1.0
        )
        assert obs.metrics.gauge_value("executor_inflight", backend="sequential") == 0.0


class TestPipelineSpans:
    def test_phases_nest_under_recommend(self, obs, hub, manuscript):
        with use(obs):
            result = Minaret(hub).recommend(manuscript)
        [root] = obs.tracer.finished("pipeline.recommend")
        phases = [
            s
            for s in obs.tracer.finished()
            if s.name.startswith("phase.") and s.parent_id == root.span_id
        ]
        assert {s.name for s in phases} == {
            f"phase.{r.phase}" for r in result.phase_reports
        }
        by_name = {s.name: s for s in phases}
        for report in result.phase_reports:
            span = by_name[f"phase.{report.phase}"]
            assert span.labels["items_in"] == report.items_in
            assert span.labels["items_out"] == report.items_out
            assert span.labels["requests"] == report.requests
            assert span.virtual_seconds == pytest.approx(report.virtual_seconds)


class TestStorageAndOntologyEvents:
    def test_wal_appends_reported(self, obs, tmp_path):
        from repro.storage.persistence import JournaledStore

        with use(obs):
            with JournaledStore.open(tmp_path, name="profiles") as store:
                store.insert({"name": "Ada"})
                store.snapshot()
        assert (
            obs.metrics.counter_value(
                "wal_appends_total", store="profiles", op="insert"
            )
            == 1.0
        )
        assert obs.metrics.counter_value("snapshots_total", store="profiles") == 1.0
        names = {e.name for e in obs.ring.events()}
        assert {"wal_recovered", "wal_append", "snapshot_written"} <= names

    def test_ontology_build_event(self, obs):
        from repro.ontology.data import build_seed_ontology

        with use(obs):
            build_seed_ontology()
        [event] = obs.ring.events("ontology_built")
        assert event.fields["topics"] > 0
        assert event.fields["edges"] > 0
