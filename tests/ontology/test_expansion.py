"""Unit tests for semantic keyword expansion (the §2.1 module)."""

import pytest

from repro.ontology.data import build_seed_ontology
from repro.ontology.expansion import (
    DEFAULT_RELATION_DECAY,
    ExpansionConfig,
    KeywordExpander,
)
from repro.ontology.graph import Relation


@pytest.fixture(scope="module")
def expander():
    return KeywordExpander(build_seed_ontology())


class TestPaperExample:
    """§2.1: expanding "RDF" must surface the three keywords named."""

    def test_rdf_expansion_contains_papers_keywords(self, expander):
        labels = {e.keyword for e in expander.expand(["RDF"])}
        assert {"Semantic Web", "Linked Open Data", "SPARQL"} <= labels

    def test_scores_in_unit_interval(self, expander):
        for expansion in expander.expand(["RDF"]):
            assert 0.0 <= expansion.score <= 1.0

    def test_seed_itself_scores_one(self, expander):
        by_keyword = {e.keyword: e for e in expander.expand(["RDF"])}
        assert by_keyword["RDF"].score == 1.0
        assert by_keyword["RDF"].depth == 0


class TestTraversalSemantics:
    def test_depth_zero_returns_only_seed(self, expander):
        config = ExpansionConfig(max_depth=0)
        results = expander.expand(["RDF"], config)
        assert [e.keyword for e in results] == ["RDF"]

    def test_deeper_expansion_is_superset(self, expander):
        shallow = {e.topic_id for e in expander.expand(["RDF"], ExpansionConfig(max_depth=1, min_score=0.0))}
        deep = {e.topic_id for e in expander.expand(["RDF"], ExpansionConfig(max_depth=2, min_score=0.0))}
        assert shallow <= deep

    def test_threshold_cuts_results(self, expander):
        strict = expander.expand(["RDF"], ExpansionConfig(min_score=0.85))
        loose = expander.expand(["RDF"], ExpansionConfig(min_score=0.5))
        assert len(strict) < len(loose)
        assert all(e.score >= 0.85 for e in strict)

    def test_score_multiplies_along_path(self, expander):
        # sparql --BROADER--> rdf --BROADER--> semantic-web
        config = ExpansionConfig(max_depth=2, min_score=0.0)
        by_topic = {e.topic_id: e for e in expander.expand(["SPARQL"], config)}
        decay = DEFAULT_RELATION_DECAY[Relation.BROADER]
        assert by_topic["rdf"].score == pytest.approx(decay)
        assert by_topic["semantic-web"].score == pytest.approx(decay * decay)

    def test_best_path_wins(self, expander):
        # linked-open-data is both RELATED to rdf (1 hop, 0.7) and
        # reachable via semantic-web (2 hops, 0.8*0.9=0.72) — the best
        # score must be kept.
        config = ExpansionConfig(max_depth=2, min_score=0.0)
        by_topic = {e.topic_id: e for e in expander.expand(["RDF"], config)}
        assert by_topic["linked-open-data"].score == pytest.approx(0.72)

    def test_max_results_cap(self, expander):
        config = ExpansionConfig(max_results_per_keyword=3, min_score=0.0)
        assert len(expander.expand(["RDF"], config)) <= 3

    def test_disabled_relation_not_traversed(self, expander):
        config = ExpansionConfig(
            relation_decay={Relation.SAME_AS: 1.0}, min_score=0.0
        )
        results = expander.expand(["RDF"], config)
        assert [e.topic_id for e in results] == ["rdf"]


class TestMultiSeed:
    def test_merges_and_dedupes(self, expander):
        results = expander.expand(["RDF", "SPARQL"])
        topic_ids = [e.topic_id for e in results]
        assert len(topic_ids) == len(set(topic_ids))

    def test_best_seed_attribution(self, expander):
        results = {e.topic_id: e for e in expander.expand(["RDF", "SPARQL"])}
        # SPARQL is its own seed at score 1.0, beating RDF's expansion.
        assert results["sparql"].seed == "SPARQL"
        assert results["sparql"].score == 1.0

    def test_sorted_by_score_then_label(self, expander):
        results = expander.expand(["RDF"])
        scores = [e.score for e in results]
        assert scores == sorted(scores, reverse=True)


class TestUnknownKeywords:
    def test_passthrough_with_score_one(self, expander):
        results = expander.expand(["Quantum Basket Weaving"])
        assert len(results) == 1
        assert results[0].keyword == "Quantum Basket Weaving"
        assert results[0].score == 1.0
        assert results[0].topic_id == ""

    def test_alt_label_resolves(self, expander):
        labels = {e.keyword for e in expander.expand(["triple stores"])}
        assert "RDF Stores" in labels


class TestExpandToWeights:
    def test_weight_map_normalized_keys(self, expander):
        weights = expander.expand_to_weights(["RDF"])
        assert "semantic web" in weights
        assert all(0.0 <= w <= 1.0 for w in weights.values())


class TestProperties:
    """Hypothesis invariants over arbitrary seed topics and configs."""

    import hypothesis.strategies as _st
    from hypothesis import given as _given, settings as _settings

    _topics = _st.sampled_from(
        [
            "rdf", "databases", "machine-learning", "computer-vision",
            "stream-processing", "peer-review", "blockchain", "indexing",
        ]
    )

    @_settings(max_examples=30, deadline=None)
    @_given(topic=_topics, depth=_st.integers(0, 3))
    def test_deeper_never_loses_topics(self, expander, topic, depth):
        label = expander.ontology.topic(topic).label
        shallow = {
            e.topic_id
            for e in expander.expand([label], ExpansionConfig(max_depth=depth, min_score=0.0, max_results_per_keyword=10_000))
        }
        deep = {
            e.topic_id
            for e in expander.expand([label], ExpansionConfig(max_depth=depth + 1, min_score=0.0, max_results_per_keyword=10_000))
        }
        assert shallow <= deep

    @_settings(max_examples=30, deadline=None)
    @_given(topic=_topics, threshold=_st.sampled_from([0.3, 0.5, 0.7, 0.9]))
    def test_threshold_filters_exactly(self, expander, topic, threshold):
        label = expander.ontology.topic(topic).label
        unfiltered = expander.expand(
            [label], ExpansionConfig(min_score=0.0, max_results_per_keyword=10_000)
        )
        filtered = expander.expand(
            [label],
            ExpansionConfig(min_score=threshold, max_results_per_keyword=10_000),
        )
        expected = {e.topic_id for e in unfiltered if e.score >= threshold}
        assert {e.topic_id for e in filtered} == expected

    @_settings(max_examples=20, deadline=None)
    @_given(topic=_topics)
    def test_scores_never_exceed_seed(self, expander, topic):
        label = expander.ontology.topic(topic).label
        results = expander.expand([label], ExpansionConfig(min_score=0.0))
        by_topic = {e.topic_id: e.score for e in results}
        assert by_topic[topic] == 1.0
        assert all(score <= 1.0 for score in by_topic.values())


class TestMemoization:
    def test_repeat_expansion_hits_memo(self):
        expander = KeywordExpander(build_seed_ontology())
        first = expander.expand(["RDF"])
        assert expander.memo_hits == 0
        second = expander.expand(["RDF"])
        assert expander.memo_hits == 1
        assert first == second

    def test_different_config_misses_memo(self):
        expander = KeywordExpander(build_seed_ontology())
        expander.expand(["RDF"])
        expander.expand(["RDF"], ExpansionConfig(max_depth=1))
        assert expander.memo_hits == 0

    def test_memo_shared_across_multi_seed_calls(self):
        expander = KeywordExpander(build_seed_ontology())
        expander.expand(["RDF", "Big Data"])
        expander.expand(["Big Data", "Indexing"])
        assert expander.memo_hits == 1


class TestConfigValidation:
    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            ExpansionConfig(max_depth=-1)

    def test_bad_min_score_rejected(self):
        with pytest.raises(ValueError):
            ExpansionConfig(min_score=1.5)

    def test_bad_decay_rejected(self):
        with pytest.raises(ValueError):
            ExpansionConfig(relation_decay={Relation.RELATED: 2.0})

    def test_with_helpers(self):
        config = ExpansionConfig()
        assert config.with_min_score(0.9).min_score == 0.9
        assert config.with_max_depth(4).max_depth == 4
        # Originals untouched (frozen dataclass copies).
        assert config.min_score == 0.5
