"""Tests for the synthetic ontology generator."""

import pytest

from repro.ontology.builder import SyntheticOntologyConfig, build_synthetic_ontology
from repro.ontology.graph import Relation


class TestConfigValidation:
    def test_zero_topics_rejected(self):
        with pytest.raises(ValueError):
            SyntheticOntologyConfig(topic_count=0)

    def test_zero_branching_rejected(self):
        with pytest.raises(ValueError):
            SyntheticOntologyConfig(branching=0)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            SyntheticOntologyConfig(max_depth=-1)


class TestGeneration:
    def test_topic_count_honoured(self):
        onto = build_synthetic_ontology(SyntheticOntologyConfig(topic_count=200))
        assert len(onto) <= 200
        assert len(onto) >= 150  # frontier exhaustion may stop short

    def test_deterministic(self):
        config = SyntheticOntologyConfig(topic_count=150, seed=3)
        a = build_synthetic_ontology(config)
        b = build_synthetic_ontology(config)
        assert len(a) == len(b)
        assert a.edge_count() == b.edge_count()

    def test_different_seeds_differ(self):
        a = build_synthetic_ontology(SyntheticOntologyConfig(topic_count=300, seed=1))
        b = build_synthetic_ontology(SyntheticOntologyConfig(topic_count=300, seed=2))
        assert a.edge_count() != b.edge_count()

    def test_single_root(self):
        onto = build_synthetic_ontology(SyntheticOntologyConfig(topic_count=100))
        assert [t.topic_id for t in onto.roots()] == ["topic-0"]

    def test_max_depth_respected(self):
        config = SyntheticOntologyConfig(topic_count=500, max_depth=3)
        onto = build_synthetic_ontology(config)
        assert max(onto.depth(t.topic_id) for t in onto.topics()) <= 3

    def test_related_edges_connect_same_depth(self):
        config = SyntheticOntologyConfig(
            topic_count=300, related_probability=1.0, seed=5
        )
        onto = build_synthetic_ontology(config)
        related_pairs = [
            (edge.source, edge.target)
            for edge in onto.edges()
            if edge.relation is Relation.RELATED
        ]
        assert related_pairs  # probability 1.0 must produce some
        for source, target in related_pairs:
            assert onto.depth(source) == onto.depth(target)

    def test_tiny_ontology(self):
        onto = build_synthetic_ontology(SyntheticOntologyConfig(topic_count=1))
        assert len(onto) == 1
