"""Round-trip tests for ontology serialization."""

import pytest

from repro.ontology.builder import SyntheticOntologyConfig, build_synthetic_ontology
from repro.ontology.data import build_seed_ontology
from repro.ontology.graph import Relation
from repro.ontology.io import (
    load_ontology,
    ontology_from_dict,
    ontology_to_dict,
    save_ontology,
)


class TestRoundTrip:
    def test_seed_ontology_roundtrips(self):
        original = build_seed_ontology()
        restored = ontology_from_dict(ontology_to_dict(original))
        assert len(restored) == len(original)
        assert restored.edge_count() == original.edge_count()

    def test_labels_survive(self):
        original = build_seed_ontology()
        restored = ontology_from_dict(ontology_to_dict(original))
        assert restored.topic("rdf").label == "RDF"
        assert restored.find("resource description framework").topic_id == "rdf"

    def test_relations_survive(self):
        original = build_seed_ontology()
        restored = ontology_from_dict(ontology_to_dict(original))
        parents = {t.topic_id for t in restored.related("rdf", Relation.BROADER)}
        assert "semantic-web" in parents

    def test_synthetic_roundtrips(self):
        original = build_synthetic_ontology(SyntheticOntologyConfig(topic_count=120))
        restored = ontology_from_dict(ontology_to_dict(original))
        assert len(restored) == len(original)
        assert restored.edge_count() == original.edge_count()

    def test_serialization_is_deterministic(self):
        onto = build_seed_ontology()
        assert ontology_to_dict(onto) == ontology_to_dict(onto)

    def test_symmetric_edges_emitted_once(self):
        data = ontology_to_dict(build_seed_ontology())
        related = [
            (e["source"], e["target"])
            for e in data["edges"]
            if e["relation"] == "related"
        ]
        assert len(related) == len(set(related))
        assert all(s <= t for s, t in related)


class TestFormatGuard:
    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            ontology_from_dict({"format": "not-a-format", "topics": [], "edges": []})

    def test_missing_format_rejected(self):
        with pytest.raises(ValueError):
            ontology_from_dict({"topics": [], "edges": []})


class TestFiles:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "onto.json"
        original = build_seed_ontology()
        save_ontology(original, path)
        restored = load_ontology(path)
        assert len(restored) == len(original)
        assert restored.edge_count() == original.edge_count()
