"""Unit tests for ontology similarity measures."""

import pytest

from repro.ontology.data import build_seed_ontology
from repro.ontology.graph import Relation, TopicOntology
from repro.ontology.similarity import (
    lowest_common_ancestor_depth,
    path_similarity,
    shortest_relation_path,
    wu_palmer_similarity,
)


@pytest.fixture(scope="module")
def onto():
    graph = TopicOntology()
    for topic_id in ("root", "a", "b", "a1", "a2", "b1", "island"):
        graph.add_topic(topic_id)
    graph.add_edge("a", Relation.BROADER, "root")
    graph.add_edge("b", Relation.BROADER, "root")
    graph.add_edge("a1", Relation.BROADER, "a")
    graph.add_edge("a2", Relation.BROADER, "a")
    graph.add_edge("b1", Relation.BROADER, "b")
    return graph


class TestShortestPath:
    def test_identity(self, onto):
        assert shortest_relation_path(onto, "a", "a") == ["a"]

    def test_siblings(self, onto):
        assert shortest_relation_path(onto, "a1", "a2") == ["a1", "a", "a2"]

    def test_disconnected(self, onto):
        assert shortest_relation_path(onto, "a", "island") is None

    def test_unknown_topic_raises(self, onto):
        with pytest.raises(KeyError):
            shortest_relation_path(onto, "a", "nope")


class TestPathSimilarity:
    def test_identity_is_one(self, onto):
        assert path_similarity(onto, "a", "a") == 1.0

    def test_adjacent(self, onto):
        assert path_similarity(onto, "a1", "a") == 0.5

    def test_decreases_with_distance(self, onto):
        assert path_similarity(onto, "a1", "a2") < path_similarity(onto, "a1", "a")

    def test_disconnected_is_zero(self, onto):
        assert path_similarity(onto, "a", "island") == 0.0


class TestLca:
    def test_sibling_lca(self, onto):
        assert lowest_common_ancestor_depth(onto, "a1", "a2") == 1

    def test_cousin_lca_is_root(self, onto):
        assert lowest_common_ancestor_depth(onto, "a1", "b1") == 0

    def test_ancestor_is_own_lca(self, onto):
        assert lowest_common_ancestor_depth(onto, "a1", "a") == 1

    def test_no_common_ancestor(self, onto):
        assert lowest_common_ancestor_depth(onto, "a", "island") is None


class TestWuPalmer:
    def test_identity(self, onto):
        assert wu_palmer_similarity(onto, "a1", "a1") == 1.0

    def test_siblings(self, onto):
        assert wu_palmer_similarity(onto, "a1", "a2") == pytest.approx(0.5)

    def test_cousins_lower_than_siblings(self, onto):
        siblings = wu_palmer_similarity(onto, "a1", "a2")
        cousins = wu_palmer_similarity(onto, "a1", "b1")
        assert cousins < siblings

    def test_disconnected_is_zero(self, onto):
        assert wu_palmer_similarity(onto, "a1", "island") == 0.0

    def test_two_roots(self, onto):
        assert wu_palmer_similarity(onto, "root", "island") == 0.0

    def test_bounded_on_seed_ontology(self):
        seed = build_seed_ontology()
        value = wu_palmer_similarity(seed, "rdf", "sparql")
        assert 0.0 < value <= 1.0

    def test_seed_semantics(self):
        seed = build_seed_ontology()
        close = wu_palmer_similarity(seed, "rdf", "sparql")
        far = wu_palmer_similarity(seed, "rdf", "computer-vision")
        assert close > far
