"""Tests for the CSO CSV reader/writer."""

import pytest

from repro.ontology.cso import load_cso_csv, parse_cso_csv, write_cso_csv
from repro.ontology.data import build_seed_ontology
from repro.ontology.expansion import KeywordExpander
from repro.ontology.graph import Relation

SAMPLE = """\
"<https://cso.kmi.open.ac.uk/topics/semantic_web>","<http://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/rdf>"
"<https://cso.kmi.open.ac.uk/topics/rdf>","<http://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/sparql>"
"<https://cso.kmi.open.ac.uk/topics/rdf>","<http://cso.kmi.open.ac.uk/schema/cso#contributesTo>","<https://cso.kmi.open.ac.uk/topics/linked_data>"
"<https://cso.kmi.open.ac.uk/topics/rdf>","<http://cso.kmi.open.ac.uk/schema/cso#relatedEquivalent>","<https://cso.kmi.open.ac.uk/topics/resource_description_framework>"
"<https://cso.kmi.open.ac.uk/topics/rdf>","<http://www.w3.org/2000/01/rdf-schema#label>","RDF"
"<https://cso.kmi.open.ac.uk/topics/rdf>","<http://www.w3.org/2002/07/owl#sameAs>","<http://dbpedia.org/resource/Resource_Description_Framework>"
"""


class TestParse:
    def test_topics_extracted(self):
        onto = parse_cso_csv(SAMPLE)
        for slug in ("semantic-web", "rdf", "sparql", "linked-data"):
            assert slug in onto

    def test_super_topic_becomes_broader(self):
        onto = parse_cso_csv(SAMPLE)
        parents = {t.topic_id for t in onto.related("rdf", Relation.BROADER)}
        assert parents == {"semantic-web"}
        children = {t.topic_id for t in onto.related("rdf", Relation.NARROWER)}
        assert "sparql" in children

    def test_contributes_to_becomes_related(self):
        onto = parse_cso_csv(SAMPLE)
        related = {t.topic_id for t in onto.related("rdf", Relation.RELATED)}
        assert "linked-data" in related

    def test_related_equivalent_becomes_same_as(self):
        onto = parse_cso_csv(SAMPLE)
        synonyms = {t.topic_id for t in onto.related("rdf", Relation.SAME_AS)}
        assert "resource-description-framework" in synonyms

    def test_label_applied(self):
        onto = parse_cso_csv(SAMPLE)
        assert onto.topic("rdf").label == "RDF"

    def test_external_links_ignored(self):
        onto = parse_cso_csv(SAMPLE)
        assert "resource-description-framework" in onto
        # The DBpedia URL must not have become a topic.
        assert all("dbpedia" not in t.topic_id for t in onto.topics())

    def test_blank_lines_tolerated(self):
        onto = parse_cso_csv("\n" + SAMPLE + "\n\n")
        assert "rdf" in onto

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError, match="expected 3"):
            parse_cso_csv('"only","two"\n')

    def test_expansion_works_on_parsed_ontology(self):
        onto = parse_cso_csv(SAMPLE)
        expander = KeywordExpander(onto)
        labels = {e.keyword for e in expander.expand(["RDF"])}
        assert "semantic web" in labels
        assert "sparql" in labels


class TestRoundTrip:
    def test_seed_ontology_survives_cso_round_trip(self, tmp_path):
        original = build_seed_ontology()
        path = tmp_path / "cso.csv"
        write_cso_csv(original, path)
        restored = load_cso_csv(path)
        assert len(restored) == len(original)
        assert restored.edge_count() == original.edge_count()
        assert restored.topic("rdf").label == "RDF"
        parents = {t.topic_id for t in restored.related("rdf", Relation.BROADER)}
        assert "semantic-web" in parents

    def test_round_trip_preserves_expansion_semantics(self, tmp_path):
        path = tmp_path / "cso.csv"
        write_cso_csv(build_seed_ontology(), path)
        restored = load_cso_csv(path)
        expander = KeywordExpander(restored)
        labels = {e.keyword for e in expander.expand(["RDF"])}
        assert {"Semantic Web", "Linked Open Data", "SPARQL"} <= labels
