"""Sanity tests over the curated seed ontology."""

import pytest

from repro.ontology.data import build_seed_ontology, seed_topic_ids
from repro.ontology.graph import Relation


@pytest.fixture(scope="module")
def onto():
    return build_seed_ontology()


class TestShape:
    def test_size(self, onto):
        assert len(onto) >= 250

    def test_link_density(self, onto):
        # CSO-like: more links than topics.
        assert onto.edge_count() >= len(onto)

    def test_single_root(self, onto):
        assert [t.topic_id for t in onto.roots()] == ["computer-science"]

    def test_every_topic_reaches_the_root(self, onto):
        for topic in onto.topics():
            if topic.topic_id == "computer-science":
                continue
            chain = onto.broader_chain(topic.topic_id)
            assert chain, f"{topic.topic_id} has no broader chain"
            assert chain[-1].topic_id == "computer-science"

    def test_depth_is_bounded(self, onto):
        assert max(onto.depth(t.topic_id) for t in onto.topics()) <= 7

    def test_declaration_order_ids_unique(self):
        ids = seed_topic_ids()
        assert len(ids) == len(set(ids))


class TestContent:
    def test_paper_example_topics_present(self, onto):
        for topic_id in ("rdf", "sparql", "semantic-web", "linked-open-data"):
            assert topic_id in onto

    def test_rdf_broader_semantic_web(self, onto):
        parents = {t.topic_id for t in onto.related("rdf", Relation.BROADER)}
        assert "semantic-web" in parents

    def test_alt_labels_resolve(self, onto):
        assert onto.find("web ontology language").topic_id == "owl"
        assert onto.find("nosql databases").topic_id == "nosql"

    def test_domain_specific_topics(self, onto):
        # The reproduction's own subject matter is in the ontology.
        for topic_id in ("reviewer-assignment", "peer-review", "name-disambiguation"):
            assert topic_id in onto

    def test_labels_nonempty(self, onto):
        assert all(t.label for t in onto.topics())

    def test_deterministic_rebuild(self):
        first = build_seed_ontology()
        second = build_seed_ontology()
        assert len(first) == len(second)
        assert first.edge_count() == second.edge_count()
