"""Unit tests for the typed topic graph."""

import pytest

from repro.ontology.graph import Relation, Topic, TopicOntology, UnknownTopicError


@pytest.fixture()
def onto():
    graph = TopicOntology()
    graph.add_topic("cs", "Computer Science")
    graph.add_topic("sw", "Semantic Web")
    graph.add_topic("rdf", "RDF", alt_labels=("resource description framework",))
    graph.add_topic("sparql", "SPARQL")
    graph.add_topic("lod", "Linked Open Data")
    graph.add_edge("sw", Relation.BROADER, "cs")
    graph.add_edge("rdf", Relation.BROADER, "sw")
    graph.add_edge("sparql", Relation.BROADER, "rdf")
    graph.add_edge("lod", Relation.BROADER, "sw")
    graph.add_edge("rdf", Relation.RELATED, "lod")
    return graph


class TestRelation:
    def test_broader_inverse(self):
        assert Relation.BROADER.inverse() is Relation.NARROWER

    def test_narrower_inverse(self):
        assert Relation.NARROWER.inverse() is Relation.BROADER

    def test_symmetric_relations_self_inverse(self):
        assert Relation.RELATED.inverse() is Relation.RELATED
        assert Relation.SAME_AS.inverse() is Relation.SAME_AS


class TestTopics:
    def test_len_and_contains(self, onto):
        assert len(onto) == 5
        assert "rdf" in onto
        assert "RDF" in onto  # slugified lookup
        assert "nope" not in onto

    def test_topic_fetch(self, onto):
        assert onto.topic("rdf").label == "RDF"

    def test_unknown_topic_raises(self, onto):
        with pytest.raises(UnknownTopicError):
            onto.topic("nope")

    def test_add_is_idempotent_with_same_label(self, onto):
        onto.add_topic("rdf", "RDF")
        assert len(onto) == 5

    def test_add_merges_alt_labels(self, onto):
        onto.add_topic("rdf", "RDF", alt_labels=("rdf 1.1",))
        assert "rdf 1.1" in onto.topic("rdf").alt_labels
        assert "resource description framework" in onto.topic("rdf").alt_labels

    def test_conflicting_label_rejected(self, onto):
        with pytest.raises(ValueError):
            onto.add_topic("rdf", "Something Else")

    def test_default_label_derived_from_id(self):
        graph = TopicOntology()
        topic = graph.add_topic("big-data")
        assert topic.label == "big data"

    def test_all_labels(self, onto):
        assert onto.topic("rdf").all_labels() == (
            "RDF",
            "resource description framework",
        )


class TestFind:
    def test_find_by_label(self, onto):
        assert onto.find("Semantic Web").topic_id == "sw"

    def test_find_by_alt_label(self, onto):
        assert onto.find("Resource Description Framework").topic_id == "rdf"

    def test_find_by_slug(self, onto):
        assert onto.find("sw").topic_id == "sw"

    def test_find_normalizes(self, onto):
        assert onto.find("  semantic   WEB ").topic_id == "sw"

    def test_find_missing_returns_none(self, onto):
        assert onto.find("quantum basket weaving") is None


class TestEdges:
    def test_self_loop_rejected(self, onto):
        with pytest.raises(ValueError):
            onto.add_edge("rdf", Relation.RELATED, "rdf")

    def test_edge_to_unknown_topic_rejected(self, onto):
        with pytest.raises(UnknownTopicError):
            onto.add_edge("rdf", Relation.BROADER, "nope")

    def test_neighbors_report_inverse_relation(self, onto):
        neighbor_map = {
            t.topic_id: r for t, r in onto.neighbors("sw")
        }
        assert neighbor_map["cs"] is Relation.BROADER
        assert neighbor_map["rdf"] is Relation.NARROWER

    def test_related_by_type(self, onto):
        narrower = [t.topic_id for t in onto.related("sw", Relation.NARROWER)]
        assert narrower == ["lod", "rdf"]

    def test_symmetric_relation_visible_both_ways(self, onto):
        assert "lod" in {t.topic_id for t in onto.related("rdf", Relation.RELATED)}
        assert "rdf" in {t.topic_id for t in onto.related("lod", Relation.RELATED)}

    def test_edge_count_counts_links_once(self, onto):
        assert onto.edge_count() == 5

    def test_neighbors_unknown_topic(self, onto):
        with pytest.raises(UnknownTopicError):
            onto.neighbors("nope")


class TestHierarchy:
    def test_broader_chain(self, onto):
        chain = [t.topic_id for t in onto.broader_chain("sparql")]
        assert chain == ["rdf", "sw", "cs"]

    def test_depth(self, onto):
        assert onto.depth("cs") == 0
        assert onto.depth("sw") == 1
        assert onto.depth("sparql") == 3

    def test_roots(self, onto):
        assert [t.topic_id for t in onto.roots()] == ["cs"]

    def test_broader_chain_handles_cycles(self):
        graph = TopicOntology()
        graph.add_topic("a")
        graph.add_topic("b")
        # a broader b and b broader a — pathological but must terminate.
        graph.add_edge("a", Relation.BROADER, "b")
        graph.add_edge("b", Relation.BROADER, "a")
        chain = graph.broader_chain("a")
        assert [t.topic_id for t in chain] == ["b"]


class TestExport:
    def test_to_networkx(self, onto):
        graph = onto.to_networkx()
        assert graph.number_of_nodes() == 5
        assert graph.nodes["rdf"]["label"] == "RDF"
        # Directed multigraph: each link stored with its inverse.
        assert graph.number_of_edges() == 10
