"""Run every docstring example in the library as a test.

Docstrings carry executable examples throughout the codebase; stale
examples are worse than none, so they are all executed here.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

# Modules whose doctests need heavyweight setup are exercised by their
# regular test suites instead.
_SKIP = {
    "repro.cli",
}


def _all_modules():
    names = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name not in _SKIP:
            names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
