"""Tests for phonetic surname codes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.phonetic import nysiis, phonetic_family_match, soundex
from repro.text.strings import name_similarity, same_person_heuristic

surnames = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)


class TestSoundex:
    def test_classic_values(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Ashcraft") == soundex("Ashcroft")

    def test_spelling_variants_collapse(self):
        assert soundex("Schmidt") == soundex("Schmitt")
        assert soundex("Sorensen") == soundex("Sorenson")

    def test_different_names_differ(self):
        assert soundex("Zhang") != soundex("Moawad")

    def test_diacritics_folded(self):
        assert soundex("Sørensen") == soundex("Sorensen")

    def test_empty(self):
        assert soundex("") == ""
        assert soundex("!!!") == ""

    def test_short_name_padded(self):
        code = soundex("Li")
        assert len(code) == 4
        assert code.endswith("00")

    @given(surnames)
    def test_format(self, name):
        code = soundex(name)
        assert len(code) == 4
        assert code[0].isupper()
        assert code[1:].isdigit()


class TestNysiis:
    def test_variants_collapse(self):
        assert nysiis("Moawad") == nysiis("Mouawad")
        assert nysiis("Knight") == nysiis("Night")

    def test_mac_prefix(self):
        assert nysiis("MacDonald") == nysiis("McDonald")

    def test_empty(self):
        assert nysiis("") == ""

    @given(surnames)
    def test_nonempty_for_alpha_input(self, name):
        assert nysiis(name)

    @given(surnames)
    def test_deterministic(self, name):
        assert nysiis(name) == nysiis(name)


class TestFamilyMatch:
    def test_phonetic_agreement(self):
        assert phonetic_family_match("Schmidt", "Schmitt")

    def test_disagreement(self):
        assert not phonetic_family_match("Zhang", "Kumar")

    def test_empty_never_matches(self):
        assert not phonetic_family_match("", "")
        assert not phonetic_family_match("Zhang", "")


class TestNameSimilarityIntegration:
    def test_spelling_drift_boosted(self):
        drifted = name_similarity("Anna Schmidt", "Anna Schmitt")
        assert drifted > 0.9

    def test_same_person_across_transliteration(self):
        assert same_person_heuristic("Mohamed Moawad", "Mohamed Mouawad")

    def test_phonetic_boost_capped_below_exact(self):
        exact = name_similarity("Anna Schmidt", "Anna Schmidt")
        drifted = name_similarity("Anna Schmidt", "Anna Schmitt")
        assert drifted < exact

    def test_unrelated_names_not_boosted(self):
        assert name_similarity("Anna Schmidt", "Anna Kumar") < 0.88
