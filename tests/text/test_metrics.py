"""Unit and property tests for set/bag similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.metrics import (
    cosine_bag_similarity,
    dice_coefficient,
    jaccard_similarity,
    overlap_coefficient,
    weighted_jaccard,
)

small_sets = st.sets(st.sampled_from("abcdefgh"), max_size=8)
weight_maps = st.dictionaries(
    st.sampled_from("abcdef"), st.floats(0.0, 10.0), max_size=6
)


class TestJaccard:
    def test_known_value(self):
        assert jaccard_similarity({"rdf", "sparql"}, {"rdf", "owl"}) == pytest.approx(
            1 / 3
        )

    def test_identical(self):
        assert jaccard_similarity({"a"}, {"a"}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard_similarity({"a"}, set()) == 0.0

    def test_accepts_lists_with_duplicates(self):
        assert jaccard_similarity(["a", "a"], ["a"]) == 1.0

    @given(small_sets, small_sets)
    def test_symmetric(self, a, b):
        assert jaccard_similarity(a, b) == jaccard_similarity(b, a)

    @given(small_sets, small_sets)
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard_similarity(a, b) <= 1.0

    @given(small_sets)
    def test_self_similarity_is_one(self, a):
        assert jaccard_similarity(a, a) == 1.0


class TestDice:
    def test_known_value(self):
        assert dice_coefficient({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert dice_coefficient(set(), set()) == 1.0

    @given(small_sets, small_sets)
    def test_dice_geq_jaccard(self, a, b):
        # Dice >= Jaccard always (equality iff 0 or 1).
        assert dice_coefficient(a, b) >= jaccard_similarity(a, b) - 1e-12


class TestOverlap:
    def test_containment_scores_one(self):
        assert overlap_coefficient({"a"}, {"a", "b", "c"}) == 1.0

    def test_disjoint(self):
        assert overlap_coefficient({"a"}, {"b"}) == 0.0

    def test_one_empty(self):
        assert overlap_coefficient(set(), {"a"}) == 0.0

    def test_both_empty(self):
        assert overlap_coefficient(set(), set()) == 1.0

    @given(small_sets, small_sets)
    def test_overlap_geq_jaccard(self, a, b):
        assert overlap_coefficient(a, b) >= jaccard_similarity(a, b) - 1e-12


class TestCosineBag:
    def test_known_value(self):
        assert cosine_bag_similarity(["rdf", "rdf", "owl"], ["rdf"]) == pytest.approx(
            2 / (5**0.5), rel=1e-6
        )

    def test_identical_bags(self):
        assert cosine_bag_similarity(["a", "b"], ["a", "b"]) == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_bag_similarity(["a"], ["b"]) == 0.0

    def test_both_empty(self):
        assert cosine_bag_similarity([], []) == 1.0

    def test_one_empty(self):
        assert cosine_bag_similarity(["a"], []) == 0.0

    @given(
        st.lists(st.sampled_from("abc"), max_size=6),
        st.lists(st.sampled_from("abc"), max_size=6),
    )
    def test_symmetric_and_bounded(self, a, b):
        value = cosine_bag_similarity(a, b)
        assert value == pytest.approx(cosine_bag_similarity(b, a))
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestWeightedJaccard:
    def test_known_value(self):
        a = {"x": 1.0, "y": 2.0}
        b = {"x": 2.0, "y": 1.0}
        assert weighted_jaccard(a, b) == pytest.approx(2.0 / 4.0)

    def test_identical(self):
        assert weighted_jaccard({"x": 0.7}, {"x": 0.7}) == 1.0

    def test_empty(self):
        assert weighted_jaccard({}, {}) == 1.0

    def test_all_zero_weights(self):
        assert weighted_jaccard({"x": 0.0}, {"x": 0.0}) == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_jaccard({"x": -1.0}, {"x": 1.0})

    @given(weight_maps, weight_maps)
    def test_symmetric_and_bounded(self, a, b):
        value = weighted_jaccard(a, b)
        assert value == pytest.approx(weighted_jaccard(b, a))
        assert 0.0 <= value <= 1.0

    @given(weight_maps)
    def test_self_is_one(self, a):
        assert weighted_jaccard(a, a) == 1.0
