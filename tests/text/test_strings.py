"""Unit and property tests for the edit-distance family."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.strings import (
    damerau_levenshtein_distance,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_ratio,
    name_similarity,
    same_person_heuristic,
)

short_text = st.text(alphabet="abcdef", max_size=8)


class TestLevenshtein:
    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_identical(self):
        assert levenshtein_distance("abc", "abc") == 0

    def test_empty_vs_word(self):
        assert levenshtein_distance("", "abc") == 3

    def test_single_substitution(self):
        assert levenshtein_distance("cat", "car") == 1

    @given(short_text, short_text)
    def test_symmetric(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(short_text, short_text)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(
            a, b
        ) + levenshtein_distance(b, c)


class TestDamerauLevenshtein:
    def test_transposition_costs_one(self):
        assert damerau_levenshtein_distance("mohamed", "mohmaed") == 1

    def test_matches_levenshtein_without_transpositions(self):
        assert damerau_levenshtein_distance("kitten", "sitting") == 3

    def test_empty_cases(self):
        assert damerau_levenshtein_distance("", "ab") == 2
        assert damerau_levenshtein_distance("ab", "") == 2

    @given(short_text, short_text)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)


class TestLevenshteinRatio:
    def test_identical(self):
        assert levenshtein_ratio("abc", "abc") == 1.0

    def test_empty_pair(self):
        assert levenshtein_ratio("", "") == 1.0

    def test_completely_different(self):
        assert levenshtein_ratio("aa", "bb") == 0.0

    @given(short_text, short_text)
    def test_bounded(self, a, b):
        assert 0.0 <= levenshtein_ratio(a, b) <= 1.0


class TestJaro:
    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-4)

    def test_identical(self):
        assert jaro_similarity("dixon", "dixon") == 1.0

    def test_no_match(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    @given(short_text, short_text)
    def test_symmetric_and_bounded(self, a, b):
        value = jaro_similarity(a, b)
        assert value == pytest.approx(jaro_similarity(b, a))
        assert 0.0 <= value <= 1.0


class TestJaroWinkler:
    def test_known_value(self):
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(
            0.9611, abs=1e-4
        )

    def test_prefix_boost(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted > plain

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)

    @given(short_text, short_text)
    def test_geq_jaro_and_bounded(self, a, b):
        jw = jaro_winkler_similarity(a, b)
        assert jw >= jaro_similarity(a, b) - 1e-12
        assert 0.0 <= jw <= 1.0


class TestNameSimilarity:
    def test_initials_match_full_given_name(self):
        assert name_similarity("Moawad, Mohamed R.", "M. R. Moawad") > 0.95

    def test_different_family_names_score_low(self):
        assert name_similarity("Mohamed Moawad", "Mohamed Maher") < 0.9

    def test_sibling_names_distinguished(self):
        assert name_similarity("Lei Zhou", "Wei Zhou") < 0.88

    def test_family_only_form_is_conservative(self):
        assert name_similarity("Zhou", "Lei Zhou") <= 0.5

    def test_empty_name(self):
        assert name_similarity("", "Lei Zhou") == 0.0

    def test_symmetry_on_typical_names(self):
        a, b = "Sherif Sakr", "Sakr, Sherif"
        assert name_similarity(a, b) == pytest.approx(name_similarity(b, a))


class TestSamePersonHeuristic:
    def test_exact_canonical_match(self):
        assert same_person_heuristic("Sakr, Sherif", "Sherif Sakr")

    def test_initials_variant(self):
        assert same_person_heuristic("Mohamed R. Moawad", "M. R. Moawad")

    def test_different_people(self):
        assert not same_person_heuristic("Lei Zhou", "Wei Zhou")

    def test_threshold_respected(self):
        # An absurdly high threshold rejects everything non-identical.
        assert not same_person_heuristic("Jon Smith", "John Smith", threshold=1.0)
