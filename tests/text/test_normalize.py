"""Unit tests for string and name normalization."""

import pytest

from repro.text.normalize import (
    canonical_person_name,
    family_name,
    fold_diacritics,
    given_names,
    name_initials_form,
    normalize_keyword,
    normalize_whitespace,
    slugify,
)


class TestFoldDiacritics:
    def test_accents_are_stripped(self):
        assert fold_diacritics("Müller") == "Muller"

    def test_cedilla_and_acute(self):
        assert fold_diacritics("François José") == "Francois Jose"

    def test_plain_ascii_unchanged(self):
        assert fold_diacritics("Smith") == "Smith"

    def test_empty_string(self):
        assert fold_diacritics("") == ""

    def test_non_decomposable_characters_survive(self):
        # CJK has no ASCII decomposition and must not be dropped.
        assert fold_diacritics("周磊") == "周磊"


class TestNormalizeWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("a  b\t c\n d") == "a b c d"

    def test_strips_ends(self):
        assert normalize_whitespace("  x  ") == "x"

    def test_empty(self):
        assert normalize_whitespace("   ") == ""


class TestNormalizeKeyword:
    def test_lowercases_and_trims(self):
        assert normalize_keyword("  Semantic Web ") == "semantic web"

    def test_hyphen_equals_space(self):
        assert normalize_keyword("machine-learning") == normalize_keyword(
            "machine learning"
        )

    def test_punctuation_removed(self):
        assert normalize_keyword("graphs!") == "graphs"

    def test_diacritics_folded(self):
        assert normalize_keyword("Données") == "donnees"


class TestSlugify:
    def test_basic(self):
        assert slugify("Semantic Web!") == "semantic-web"

    def test_leading_trailing_symbols(self):
        assert slugify("--RDF--") == "rdf"

    def test_numbers_kept(self):
        assert slugify("Web 2.0") == "web-2-0"


class TestCanonicalPersonName:
    def test_surname_first_form(self):
        assert canonical_person_name("Moawad, Mohamed R.") == "mohamed r moawad"

    def test_plain_form(self):
        assert canonical_person_name("Mohamed R. Moawad") == "mohamed r moawad"

    def test_suffix_removed(self):
        assert canonical_person_name("John Smith Jr.") == "john smith"

    def test_diacritics(self):
        assert canonical_person_name("Sørén Kierkegaard") == "søren kierkegaard"

    def test_apostrophe(self):
        assert canonical_person_name("Conor O'Brien") == "conor o brien"

    def test_empty(self):
        assert canonical_person_name("") == ""

    def test_same_for_both_written_forms(self):
        assert canonical_person_name("Sakr, Sherif") == canonical_person_name(
            "Sherif Sakr"
        )


class TestNameInitialsForm:
    def test_reduces_given_names(self):
        assert name_initials_form("Mohamed Ragab Moawad") == "m. r. moawad"

    def test_single_token(self):
        assert name_initials_form("Moawad") == "moawad"

    def test_already_initials(self):
        assert name_initials_form("M. R. Moawad") == "m. r. moawad"

    def test_empty(self):
        assert name_initials_form("") == ""


class TestFamilyAndGivenNames:
    def test_family_from_comma_form(self):
        assert family_name("Moawad, Mohamed") == "moawad"

    def test_family_from_plain_form(self):
        assert family_name("Mohamed Moawad") == "moawad"

    def test_given_names(self):
        assert given_names("Moawad, Mohamed R.") == ["mohamed", "r"]

    def test_single_token_has_no_given(self):
        assert given_names("Moawad") == []

    def test_empty_family(self):
        assert family_name("") == ""
