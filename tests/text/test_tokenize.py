"""Unit tests for tokenization and n-grams."""

import pytest

from repro.text.tokenize import (
    DEFAULT_STOPWORDS,
    character_ngrams,
    sentences,
    tokenize,
    word_ngrams,
)


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("Efficient RDF Processing") == [
            "efficient",
            "rdf",
            "processing",
        ]

    def test_stopwords_removed(self):
        assert tokenize("the internet of things") == ["internet", "things"]

    def test_stopwords_disabled(self):
        assert tokenize("internet of things", stopwords=None) == [
            "internet",
            "of",
            "things",
        ]

    def test_min_length(self):
        assert tokenize("a bb ccc", stopwords=None, min_length=3) == ["ccc"]

    def test_punctuation_ignored(self):
        assert tokenize("graphs, trees; forests!") == ["graphs", "trees", "forests"]

    def test_empty(self):
        assert tokenize("") == []

    def test_numbers_kept(self):
        assert "5g" in tokenize("5g networks")


class TestWordNgrams:
    def test_bigrams(self):
        assert word_ngrams(["linked", "open", "data"], 2) == [
            ("linked", "open"),
            ("open", "data"),
        ]

    def test_n_equals_length(self):
        assert word_ngrams(["a", "b"], 2) == [("a", "b")]

    def test_n_longer_than_input(self):
        assert word_ngrams(["a"], 2) == []

    def test_unigrams(self):
        assert word_ngrams(["x", "y"], 1) == [("x",), ("y",)]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            word_ngrams(["a"], 0)

    def test_accepts_generators(self):
        assert word_ngrams((t for t in ["a", "b", "c"]), 3) == [("a", "b", "c")]


class TestCharacterNgrams:
    def test_padded_bigrams(self):
        assert character_ngrams("rdf", 2) == ["#r", "rd", "df", "f#"]

    def test_unpadded(self):
        assert character_ngrams("rdf", 2, pad=False) == ["rd", "df"]

    def test_short_string(self):
        assert character_ngrams("a", 3, pad=False) == ["a"]

    def test_empty(self):
        assert character_ngrams("", 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            character_ngrams("abc", 0)

    def test_unigrams_never_padded(self):
        assert character_ngrams("ab", 1) == ["a", "b"]


class TestSentences:
    def test_splits_on_terminators(self):
        text = "First sentence. Second one! Third?"
        assert list(sentences(text)) == [
            "First sentence.",
            "Second one!",
            "Third?",
        ]

    def test_empty(self):
        assert list(sentences("")) == []

    def test_no_terminator(self):
        assert list(sentences("just a fragment")) == ["just a fragment"]


class TestStopwords:
    def test_is_frozenset(self):
        assert isinstance(DEFAULT_STOPWORDS, frozenset)

    def test_contains_core_function_words(self):
        assert {"the", "of", "and"} <= DEFAULT_STOPWORDS

    def test_does_not_contain_content_words(self):
        assert "data" not in DEFAULT_STOPWORDS
