"""The memoized text helpers must be invisible wrappers.

``normalize_keyword`` and ``tokenize`` are the hottest functions in the
scoring plane; both now sit on bounded ``lru_cache``\\ s.  These tests pin
the contract: cached results equal the uncached computation for every
input class (unicode, casefold, punctuation), and callers still receive
fresh mutable lists.
"""

from repro.text.normalize import _normalize_keyword_cached, normalize_keyword
from repro.text.tokenize import DEFAULT_STOPWORDS, _tokenize_cached, tokenize

NORMALIZE_INPUTS = [
    "",
    "Semantic Web",
    "  Machine-Learning ",
    "MACHINE-Learning",
    "machine_learning",
    "Sørensen",
    "Müller-Lüdenscheidt",
    "internet of things!",
    "RDF/SPARQL   queries",
    "データベース",  # non-decomposable characters must survive
]

TOKENIZE_INPUTS = [
    "",
    "Efficient Processing of RDF Data!",
    "The Internet of Things",
    "Sørensen–Dice coefficient",
    "a of the",  # pure stopwords
    "Big-Data systems, at scale",
]


def test_normalize_cached_equals_uncached():
    uncached = _normalize_keyword_cached.__wrapped__
    for text in NORMALIZE_INPUTS:
        assert normalize_keyword(text) == uncached(text)


def test_normalize_repeated_calls_stable():
    for text in NORMALIZE_INPUTS:
        assert normalize_keyword(text) == normalize_keyword(text)


def test_normalize_cache_is_bounded():
    assert _normalize_keyword_cached.cache_info().maxsize == 16384


def test_tokenize_cached_equals_uncached():
    uncached = _tokenize_cached.__wrapped__
    for text in TOKENIZE_INPUTS:
        assert tokenize(text) == list(uncached(text, DEFAULT_STOPWORDS, 1))
        assert tokenize(text, stopwords=None) == list(uncached(text, None, 1))
        assert tokenize(text, min_length=3) == list(
            uncached(text, DEFAULT_STOPWORDS, 3)
        )


def test_tokenize_returns_fresh_mutable_list():
    first = tokenize("Efficient Processing of RDF Data!")
    first.append("mutated")
    second = tokenize("Efficient Processing of RDF Data!")
    assert "mutated" not in second


def test_tokenize_accepts_unhashed_stopword_collections():
    # Callers may pass sets or lists; the wrapper freezes them before
    # they reach the cache key.
    stop = {"rdf", "data"}
    assert tokenize("Efficient RDF Data", stopwords=stop) == ["efficient"]
    assert tokenize("Efficient RDF Data", stopwords=["rdf", "data"]) == ["efficient"]


def test_tokenize_cache_is_bounded():
    assert _tokenize_cached.cache_info().maxsize == 16384


def test_doctest_examples_still_hold():
    assert normalize_keyword("  Machine-Learning ") == "machine learning"
    assert tokenize("Efficient Processing of RDF Data!") == [
        "efficient",
        "processing",
        "rdf",
        "data",
    ]
