"""Unit tests for the TF-IDF vectorizer."""

import math

import pytest

from repro.text.tfidf import TfidfVectorizer, sparse_cosine

CORPUS = [
    "rdf stores and query processing",
    "sparql query engines for rdf",
    "cache coherence protocols",
    "deep learning for image classification",
]


@pytest.fixture()
def fitted():
    return TfidfVectorizer().fit(CORPUS)


class TestFitting:
    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform("anything")

    def test_is_fitted_flag(self, fitted):
        assert fitted.is_fitted
        assert not TfidfVectorizer().is_fitted

    def test_vocabulary_size(self, fitted):
        assert fitted.vocabulary_size > 0

    def test_fit_returns_self(self):
        vectorizer = TfidfVectorizer()
        assert vectorizer.fit(["a b"]) is vectorizer

    def test_refit_replaces_state(self, fitted):
        old_vocab = fitted.vocabulary_size
        fitted.fit(["one tiny document"])
        assert fitted.vocabulary_size != old_vocab


class TestTransform:
    def test_vectors_are_l2_normalized(self, fitted):
        vector = fitted.transform("rdf query processing")
        norm = math.sqrt(sum(w * w for w in vector.values()))
        assert norm == pytest.approx(1.0)

    def test_empty_document_gives_empty_vector(self, fitted):
        assert fitted.transform("") == {}

    def test_stopwords_excluded(self, fitted):
        assert "and" not in fitted.transform("rdf and stores")

    def test_unseen_terms_get_high_idf(self, fitted):
        vector = fitted.transform("rdf zeppelin")
        # "zeppelin" is unseen and should dominate "rdf", which occurs in
        # half the corpus.
        assert vector["zeppelin"] > vector["rdf"]


class TestSimilarity:
    def test_related_documents_score_positive(self, fitted):
        assert fitted.cosine_similarity("rdf engines", "sparql rdf") > 0.2

    def test_unrelated_documents_score_low(self, fitted):
        related = fitted.cosine_similarity("rdf stores", "sparql rdf engines")
        unrelated = fitted.cosine_similarity("rdf stores", "image classification")
        assert unrelated < related

    def test_self_similarity(self, fitted):
        assert fitted.cosine_similarity("rdf stores", "rdf stores") == pytest.approx(
            1.0
        )


class TestRank:
    def test_orders_by_relevance(self, fitted):
        ranking = fitted.rank("rdf query", CORPUS)
        top_index, top_score = ranking[0]
        assert top_index in (0, 1)
        assert top_score > 0

    def test_returns_all_documents(self, fitted):
        assert len(fitted.rank("rdf", CORPUS)) == len(CORPUS)

    def test_deterministic_tiebreak(self, fitted):
        documents = ["same text", "same text"]
        ranking = fitted.rank("same text", documents)
        assert [index for index, __ in ranking] == [0, 1]


class TestSparseCosine:
    def test_empty_vectors(self):
        assert sparse_cosine({}, {}) == 0.0

    def test_orthogonal(self):
        assert sparse_cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_dot_product(self):
        assert sparse_cosine({"a": 0.6, "b": 0.8}, {"a": 1.0}) == pytest.approx(0.6)
