"""CoiScreen ≡ CoiDetector: flags *and* reason tuples, across the world.

The indexed screen must be a pure reimplementation, never a semantic
fork: for every candidate the extraction phase produces and every COI
configuration the editor can choose, the verdict — including the exact
reason strings in their exact order — must match the naive detector's.
"""

import pytest

from repro.core.coi import CoiDetector
from repro.core.config import AffiliationCoiLevel, CoiConfig, PipelineConfig
from repro.core.filtering import _collect_publication_years
from repro.core.pipeline import Minaret
from repro.scholarly.records import Affiliation
from repro.scoring import CoiScreen, ScoringContext, build_candidate_features
from tests.conftest import make_manuscript
from tests.scoring.conftest import make_author, make_candidate

CTX = ScoringContext(current_year=2019, half_life_years=3.0)

CONFIGS = {
    "default": CoiConfig(),
    "lookback": CoiConfig(coauthorship_lookback_years=5),
    "country": CoiConfig(affiliation_level=AffiliationCoiLevel.COUNTRY),
    "no-affiliation": CoiConfig(affiliation_level=AffiliationCoiLevel.NONE),
    "no-coauthorship": CoiConfig(check_coauthorship=False),
    "mentorship": CoiConfig(check_mentorship=True),
}


@pytest.fixture(scope="module")
def screening_pools(world):
    """(candidates, verified authors, publication years) per manuscript.

    Real pipeline output — the same objects FilterPhase screens — for a
    handful of manuscripts by distinct world authors.
    """
    from repro.scholarly.registry import ScholarlyHub

    minaret = Minaret(
        ScholarlyHub.deploy(world), config=PipelineConfig(scoring_plane=False)
    )
    pools = []
    for author in world.authors.values():
        if len(pools) >= 3:
            break
        if len(world.authors_by_name(author.name)) > 1:
            continue
        if len(author.topic_expertise) < 2:
            continue
        result = minaret.recommend(make_manuscript(world, author))
        pools.append(
            (
                result.candidates,
                list(result.verified_authors),
                _collect_publication_years(result.candidates),
            )
        )
    assert len(pools) == 3
    return pools


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_world_verdicts_identical(screening_pools, config_name):
    config = CONFIGS[config_name]
    conflicts = 0
    for candidates, authors, years in screening_pools:
        detector = CoiDetector(config, current_year=2019)
        screen = CoiScreen(authors, config, current_year=2019)
        for candidate in candidates:
            naive = detector.check(candidate, authors, years)
            fast = screen.screen(build_candidate_features(candidate, CTX), years)
            assert fast.has_conflict == naive.has_conflict
            assert fast.reasons == naive.reasons
            conflicts += naive.has_conflict
    if config_name != "no-coauthorship":
        # The screen must prove equivalence on real conflicts, not just
        # on all-clear pools: every manuscript author retrieved as their
        # own reviewer is at minimum a same-person conflict.
        assert conflicts > 0


def test_empty_author_list_passes():
    screen = CoiScreen([])
    candidate = make_candidate("c", pub_ids=("p1",))
    verdict = screen.screen(build_candidate_features(candidate, CTX))
    assert not verdict.has_conflict
    assert verdict.reasons == ()


def test_reason_order_interleaves_rules_per_author():
    # Two authors; the candidate conflicts with both through different
    # rules.  Reasons must come grouped per author, in author order —
    # exactly how CoiDetector emits them.
    shared_aff = Affiliation("MIT", "US", 2015, None)
    candidate = make_candidate(
        "c", pub_ids=("p1",), affiliations=(shared_aff,)
    )
    authors = [
        make_author(name="First", affiliations=(Affiliation("MIT", "US", 2014, None),)),
        make_author(name="Second", pub_ids=("p1",)),
    ]
    naive = CoiDetector().check(candidate, authors)
    fast = CoiScreen(authors).screen(build_candidate_features(candidate, CTX))
    assert fast.reasons == naive.reasons
    assert "First" in fast.reasons[0] and "Second" in fast.reasons[1]


def test_submitted_affiliation_counts_as_evidence():
    candidate = make_candidate(
        "c", affiliations=(Affiliation("KAUST", "Saudi Arabia", 2017, None),)
    )
    authors = [
        make_author(
            name="A",
            submitted_affiliation="KAUST",
            submitted_country="Saudi Arabia",
        )
    ]
    naive = CoiDetector().check(candidate, authors)
    fast = CoiScreen(authors).screen(build_candidate_features(candidate, CTX))
    assert fast.has_conflict and naive.has_conflict
    assert fast.reasons == naive.reasons


def test_country_level_matches_naive_on_disjoint_institutions():
    config = CoiConfig(affiliation_level=AffiliationCoiLevel.COUNTRY)
    candidate = make_candidate(
        "c", affiliations=(Affiliation("ETH", "Switzerland", 2015, None),)
    )
    authors = [
        make_author(
            name="A", affiliations=(Affiliation("EPFL", "Switzerland", 2014, None),)
        )
    ]
    naive = CoiDetector(config).check(candidate, authors)
    fast = CoiScreen(authors, config).screen(build_candidate_features(candidate, CTX))
    assert fast.has_conflict and naive.has_conflict
    assert fast.reasons == naive.reasons


def test_mentorship_matches_naive():
    config = CoiConfig(check_mentorship=True)
    senior = [{"id": f"s{y}", "year": y} for y in range(1995, 2015)]
    shared = [{"id": "j1", "year": 2012}, {"id": "j2", "year": 2013}]
    junior = shared + [{"id": "j3", "year": 2018}]
    candidate = make_candidate("c", dblp_pubs=junior)
    authors = [make_author(name="Prof", dblp_publications=tuple(senior + shared))]
    naive = CoiDetector(config).check(candidate, authors)
    fast = CoiScreen(authors, config).screen(build_candidate_features(candidate, CTX))
    assert fast.has_conflict and naive.has_conflict
    assert fast.reasons == naive.reasons
    assert "advisee" in fast.reasons[0]


def test_lookback_window_matches_naive():
    config = CoiConfig(coauthorship_lookback_years=5)
    candidate = make_candidate("c", pub_ids=("old", "new"))
    authors = [make_author(name="A", pub_ids=("old", "new"))]
    years = {"old": 2005, "new": 2018}
    naive = CoiDetector(config, current_year=2019).check(candidate, authors, years)
    fast = CoiScreen(authors, config, current_year=2019).screen(
        build_candidate_features(candidate, CTX), years
    )
    assert fast.reasons == naive.reasons
    assert "1 publication(s)" in fast.reasons[0]


def test_filter_phase_paths_agree(screening_pools):
    """FilterPhase itself: naive vs indexed verdicts on real pools."""
    from repro.core.filtering import FilterPhase
    from repro.scoring import FeatureStore

    for candidates, authors, _ in screening_pools:
        naive_kept, naive_decisions = FilterPhase(current_year=2019).apply(
            candidates, authors
        )
        fast_kept, fast_decisions = FilterPhase(
            current_year=2019,
            features=FeatureStore(),
            scoring_context=CTX,
        ).apply(candidates, authors)
        assert [c.candidate_id for c in fast_kept] == [
            c.candidate_id for c in naive_kept
        ]
        assert fast_decisions == naive_decisions
