"""Top-k selection: exact prefixes of the full ranking, never approximations."""

import pytest

from repro.core.config import AggregationMethod, PipelineConfig, RankingWeights
from repro.core.models import ScoredCandidate
from repro.core.ranking import Ranker
from repro.scoring import select_top_k
from tests.scoring.conftest import expansion, make_candidate, make_manuscript

SEEDS = [
    expansion("Semantic Web", 1.0, "Semantic Web", depth=0),
    expansion("Big Data", 1.0, "Big Data", depth=0),
    expansion("RDF", 0.9, "Semantic Web"),
    expansion("Linked Data", 0.7, "Semantic Web"),
]


def pub(pid, year, keywords=(), title="", venue=""):
    return {
        "id": pid,
        "year": year,
        "keywords": list(keywords),
        "title": title,
        "venue": venue,
    }


def make_pool(size=12):
    """A pool with spread-out component values so rankings are stable."""
    pool = []
    for i in range(size):
        interests = [("Semantic Web", "Big Data", "RDF")[j] for j in range(i % 4 % 3)]
        pubs = [
            pub(f"c{i}-p{j}", 2019 - (i + j) % 8, keywords=(interests or ["x"])[:1])
            for j in range(i % 5)
        ]
        pool.append(
            make_candidate(
                f"cand-{i:02d}",
                interests=interests,
                citations=37 * i % 400,
                h_index=i % 9,
                review_count=(7 * i) % 13,
                on_time_rate=None if i % 3 else 0.1 * (i % 10),
                scholar_pubs=pubs,
                venues_reviewed=(
                    ({"venue": "Journal X", "count": i % 4},) if i % 2 else ()
                ),
                dblp_pubs=(
                    (pub(f"c{i}-d0", 2018, title="a study", venue="Journal X"),)
                    if i % 4 == 0
                    else ()
                ),
            )
        )
    return pool


def signature(ranked):
    return [
        (s.candidate.candidate_id, s.total_score, s.breakdown.as_dict()) for s in ranked
    ]


class TestSelectTopK:
    def scored(self, cid, total):
        return ScoredCandidate(
            candidate=make_candidate(cid), total_score=total, breakdown=None
        )

    def test_none_returns_full_sorted(self):
        scored = [self.scored("b", 0.5), self.scored("a", 0.9), self.scored("c", 0.1)]
        assert [s.candidate.candidate_id for s in select_top_k(scored, None)] == [
            "a",
            "b",
            "c",
        ]

    def test_k_is_exact_prefix(self):
        scored = [self.scored(f"c{i}", (i * 7 % 10) / 10) for i in range(10)]
        full = select_top_k(scored, None)
        assert select_top_k(scored, 3) == full[:3]

    def test_ties_break_by_candidate_id(self):
        scored = [self.scored("z", 0.5), self.scored("a", 0.5), self.scored("m", 0.5)]
        assert [s.candidate.candidate_id for s in select_top_k(scored, 2)] == [
            "a",
            "m",
        ]

    def test_k_at_least_pool_size_is_full_ranking(self):
        scored = [self.scored(f"c{i}", i / 10) for i in range(4)]
        assert select_top_k(scored, 4) == select_top_k(scored, None)
        assert select_top_k(scored, 99) == select_top_k(scored, None)


class TestRankerTopK:
    @pytest.mark.parametrize("k", [1, 3, 5, 12, 50])
    def test_plane_top_k_is_prefix_of_full_ranking(self, k):
        pool = make_pool()
        manuscript = make_manuscript()
        full = Ranker(PipelineConfig()).rank(manuscript, pool, SEEDS)
        top = Ranker(PipelineConfig(top_k=k)).rank(manuscript, pool, SEEDS)
        assert signature(top) == signature(full)[:k]

    @pytest.mark.parametrize("k", [1, 4, 12])
    def test_naive_and_plane_agree_under_top_k(self, k):
        pool = make_pool()
        manuscript = make_manuscript()
        plane = Ranker(PipelineConfig(top_k=k)).rank(manuscript, pool, SEEDS)
        naive = Ranker(PipelineConfig(top_k=k, scoring_plane=False)).rank(
            manuscript, pool, SEEDS
        )
        assert signature(plane) == signature(naive)

    def test_owa_top_k_is_prefix(self):
        pool = make_pool()
        manuscript = make_manuscript()
        config = PipelineConfig(
            aggregation=AggregationMethod.OWA, owa_weights=(0.5, 0.3, 0.2)
        )
        full = Ranker(config).rank(manuscript, pool, SEEDS)
        top = Ranker(
            PipelineConfig(
                aggregation=AggregationMethod.OWA,
                owa_weights=(0.5, 0.3, 0.2),
                top_k=4,
            )
        ).rank(manuscript, pool, SEEDS)
        assert signature(top) == signature(full)[:4]

    def test_skewed_weights_still_exact(self):
        # All weight on recency: the pruned component *is* the score.
        pool = make_pool()
        manuscript = make_manuscript()
        weights = RankingWeights(
            topic_coverage=0.0,
            scientific_impact=0.0,
            recency=1.0,
            review_experience=0.0,
            outlet_familiarity=0.0,
        )
        full = Ranker(PipelineConfig(weights=weights)).rank(manuscript, pool, SEEDS)
        top = Ranker(PipelineConfig(weights=weights, top_k=3)).rank(
            manuscript, pool, SEEDS
        )
        assert signature(top) == signature(full)[:3]

    def test_no_expansions_top_k_still_prefix(self):
        # Empty expansion list: max recency weight is 0, pruning
        # disables itself, yet top_k must still be the exact prefix.
        pool = make_pool()
        manuscript = make_manuscript(keywords=("Semantic Web",))
        full = Ranker(PipelineConfig()).rank(manuscript, pool, [])
        top = Ranker(PipelineConfig(top_k=2)).rank(manuscript, pool, [])
        assert signature(top) == signature(full)[:2]

    def test_top_k_validated(self):
        with pytest.raises(ValueError):
            PipelineConfig(top_k=0)

    def test_payload_round_trip(self):
        from repro.api.serialization import config_from_payload

        config = config_from_payload({"top_k": 7, "scoring_plane": False})
        assert config.top_k == 7
        assert config.scoring_plane is False
        assert config_from_payload({}).top_k is None
        assert config_from_payload({}).scoring_plane is True


class TestPruneMetrics:
    def test_prune_rate_visible(self):
        from repro.obs import Observability, use

        pool = make_pool(20)
        manuscript = make_manuscript()
        obs = Observability(enabled=True)
        with use(obs):
            Ranker(PipelineConfig(top_k=2)).rank(manuscript, pool, SEEDS)
        assert obs.metrics.counter_total("scoring_candidates_ranked_total") == 20.0
        assert "scoring_prune_rate" in obs.metrics.snapshot()["gauges"]

    def test_full_ranking_never_prunes(self):
        from repro.obs import Observability, use

        pool = make_pool()
        manuscript = make_manuscript()
        obs = Observability(enabled=True)
        with use(obs):
            Ranker(PipelineConfig()).rank(manuscript, pool, SEEDS)
        assert "scoring_recency_pruned_total" not in obs.metrics.snapshot()["counters"]


class TestCanonicalPruneOrder:
    """Regression: the prune walk's tie-break is candidate id, not
    arrival position (ISSUE 6, satellite 3).

    Clone pools give every candidate an identical recency upper bound,
    so the walk's visiting order is decided purely by the tie-break —
    if that ever regresses to list position, a permuted pool changes
    which candidate's exact recency settles the maximum first and the
    rankings drift.
    """

    def clone_pool(self, size=10):
        pubs = [pub(f"shared-{j}", 2018, keywords=["Semantic Web"]) for j in range(3)]
        return [
            make_candidate(
                f"cand-{i:02d}",
                interests=("Semantic Web",),
                citations=100 + i,
                h_index=5,
                review_count=3,
                scholar_pubs=[
                    dict(p, id=f"c{i}-{p['id']}") for p in pubs
                ],
            )
            for i in range(size)
        ]

    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_arrival_order_never_changes_pruned_ranking(self, k):
        import random as stdlib_random

        pool = self.clone_pool()
        manuscript = make_manuscript()
        ranker = Ranker(PipelineConfig(top_k=k))
        reference = signature(ranker.rank(manuscript, pool, SEEDS))
        for seed in range(5):
            shuffled = list(pool)
            stdlib_random.Random(seed).shuffle(shuffled)
            assert signature(ranker.rank(manuscript, shuffled, SEEDS)) == reference
