"""The feature store: reuse, invalidation, eviction, plane attachment."""

import copy

import pytest

from repro.scoring import (
    FeatureStore,
    ScoringContext,
    build_candidate_features,
)
from tests.scoring.conftest import make_candidate

CTX = ScoringContext(current_year=2019, half_life_years=3.0)


def pub(pid, year, keywords=(), title="", venue=""):
    return {
        "id": pid,
        "year": year,
        "keywords": list(keywords),
        "title": title,
        "venue": venue,
    }


class TestBuildCandidateFeatures:
    def test_yearless_publications_dropped(self):
        candidate = make_candidate(
            "c",
            scholar_pubs=(
                pub("p1", 2019, keywords=("semantic web",)),
                {"id": "p2", "year": None, "keywords": ["semantic web"]},
            ),
        )
        features = build_candidate_features(candidate, CTX)
        assert len(features.recency_pubs) == 1
        assert features.decay_mass == pytest.approx(1.0)

    def test_titleless_keywordless_publications_dropped(self):
        candidate = make_candidate(
            "c", scholar_pubs=({"id": "p1", "year": 2019, "title": ""},)
        )
        features = build_candidate_features(candidate, CTX)
        assert features.recency_pubs == ()

    def test_decay_mass_sums_per_publication_decay(self):
        candidate = make_candidate(
            "c",
            scholar_pubs=(
                pub("p1", 2019, keywords=("a",)),
                pub("p2", 2016, keywords=("a",)),
            ),
        )
        features = build_candidate_features(candidate, CTX)
        assert features.decay_mass == pytest.approx(1.0 + 0.5)

    def test_venue_counts_accumulate(self):
        candidate = make_candidate(
            "c",
            dblp_pubs=(pub("p1", 2019, venue="VLDB"), pub("p2", 2018, venue="vldb")),
            venues_reviewed=({"venue": "VLDB", "count": 3}, {"venue": "VLDB", "count": 2}),
        )
        features = build_candidate_features(candidate, CTX)
        assert features.venue_pub_counts == {"vldb": 2}
        assert features.venue_review_counts == {"vldb": 5}

    def test_dblp_years_last_wins_and_skips_partial_records(self):
        candidate = make_candidate(
            "c",
            dblp_pubs=(
                {"id": "p1", "year": 2001},
                {"id": "p1", "year": 2003},
                {"id": None, "year": 1990},
                {"id": "p2", "year": None},
            ),
        )
        features = build_candidate_features(candidate, CTX)
        assert features.dblp_years == {"p1": 2003}
        assert features.dblp_first == 2003

    def test_undated_affiliation_concretized(self):
        from repro.scholarly.records import Affiliation

        candidate = make_candidate(
            "c",
            affiliations=(
                Affiliation("MIT", "US", 0, None),
                Affiliation("ETH", "CH", 2010, 2014),
            ),
        )
        features = build_candidate_features(candidate, CTX)
        assert features.affiliations == (
            ("MIT", "US", 2016, 10_000),
            ("ETH", "CH", 2010, 2014),
        )


class TestFeatureStore:
    def test_second_lookup_reuses(self):
        store = FeatureStore()
        candidate = make_candidate("c", citations=10)
        first = store.features_for(candidate, CTX)
        second = store.features_for(candidate, CTX)
        assert second is first
        assert store.stats()["features_built"] == 1
        assert store.stats()["features_reused"] == 1

    def test_equal_copy_hits(self):
        # The cold path re-extracts per request: equal content, new
        # objects.  Equality is the backstop behind the identity check.
        store = FeatureStore()
        candidate = make_candidate(
            "c", citations=10, scholar_pubs=(pub("p1", 2019, keywords=("a",)),)
        )
        first = store.features_for(candidate, CTX)
        second = store.features_for(copy.deepcopy(candidate), CTX)
        assert second is first

    def test_changed_evidence_rebuilds(self):
        store = FeatureStore()
        candidate = make_candidate("c", review_count=1)
        store.features_for(candidate, CTX)
        candidate.review_count = 2
        features = store.features_for(candidate, CTX)
        assert features.review_experience == 2.0
        assert store.stats()["features_built"] == 2
        assert store.stats()["features_reused"] == 0

    def test_changed_publications_rebuild(self):
        # Validation is identity-or-equality against the evidence the
        # entry was built from: a *replaced* publication list rebuilds.
        # (Mutating the cached list object in place is indistinguishable
        # by identity — pipeline code always assigns fresh lists.)
        store = FeatureStore()
        candidate = make_candidate("c", scholar_pubs=(pub("p1", 2019, keywords=("a",)),))
        store.features_for(candidate, CTX)
        candidate.scholar_publications = candidate.scholar_publications + [
            pub("p2", 2018, keywords=("a",))
        ]
        features = store.features_for(candidate, CTX)
        assert len(features.recency_pubs) == 2
        assert store.stats()["features_built"] == 2

    def test_changed_context_rebuilds(self):
        store = FeatureStore()
        candidate = make_candidate("c", scholar_pubs=(pub("p1", 2016, keywords=("a",)),))
        old = store.features_for(candidate, CTX)
        new = store.features_for(
            candidate, ScoringContext(current_year=2019, half_life_years=1.0)
        )
        assert old.decay_mass == pytest.approx(0.5)
        assert new.decay_mass == pytest.approx(0.125)
        assert store.stats()["features_built"] == 2

    def test_epoch_bump_rebuilds(self):
        epoch = [0]
        store = FeatureStore(epoch_provider=lambda: epoch[0])
        candidate = make_candidate("c")
        store.features_for(candidate, CTX)
        epoch[0] += 1
        store.features_for(candidate, CTX)
        assert store.stats()["features_built"] == 2
        assert store.stats()["features_reused"] == 0

    def test_lru_eviction(self):
        store = FeatureStore(capacity=2)
        a, b, c = (make_candidate(cid) for cid in "abc")
        store.features_for(a, CTX)
        store.features_for(b, CTX)
        store.features_for(a, CTX)  # refresh a; b is now oldest
        store.features_for(c, CTX)  # evicts b
        assert len(store) == 2
        store.features_for(b, CTX)
        assert store.stats()["features_built"] == 4

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FeatureStore(capacity=0)

    def test_clear_drops_entries_keeps_counters(self):
        store = FeatureStore()
        store.features_for(make_candidate("c"), CTX)
        store.clear()
        assert len(store) == 0
        assert store.stats()["features_built"] == 1

    def test_stats_shape(self):
        store = FeatureStore()
        store.features_for(make_candidate("c"), CTX)
        store.features_for(make_candidate("c"), CTX)
        stats = store.stats()
        assert stats == {
            "features_built": 1,
            "features_reused": 1,
            "reuse_rate": 0.5,
            "entries": 1,
        }


class TestPlaneAttachment:
    def test_plane_store_is_shared_and_epoch_tied(self, hub):
        from repro.retrieval import RetrievalPlane

        plane = RetrievalPlane.for_sources(hub)
        store = plane.feature_store()
        assert plane.feature_store() is store
        candidate = make_candidate("c")
        store.features_for(candidate, CTX)
        assert len(store) == 1
        plane.bump_epoch()
        # Entries are dropped eagerly *and* the epoch no longer matches.
        assert len(store) == 0
        store.features_for(candidate, CTX)
        assert store.stats()["features_built"] == 2

    def test_plane_stats_include_scoring(self, hub):
        from repro.retrieval import RetrievalPlane

        plane = RetrievalPlane.for_sources(hub)
        assert plane.stats()["scoring"] is None
        plane.feature_store().features_for(make_candidate("c"), CTX)
        assert plane.stats()["scoring"]["features_built"] == 1
