"""Property tests: the compute plane is bit-identical to the naive path.

Hypothesis drives randomized candidate pools, manuscripts, weight
configurations and COI evidence through both implementations and
requires *exact* equality — ``==`` on floats, not ``approx`` — because
the plane's contract is bit-identity, not numerical closeness.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coi import CoiDetector
from repro.core.config import (
    AffiliationCoiLevel,
    AggregationMethod,
    CoiConfig,
    ImpactMetric,
    PipelineConfig,
    RankingWeights,
)
from repro.core.ranking import NaiveRanker, Ranker
from repro.scholarly.records import Affiliation
from repro.scoring import CoiScreen, ScoringContext, build_candidate_features
from tests.scoring.conftest import expansion, make_author, make_candidate, make_manuscript

KEYWORDS = ("semantic web", "big data", "rdf", "data mining", "graph processing")
VENUES = ("Journal X", "VLDB", "")
TITLES = ("", "a semantic web survey", "big data systems", "notes on rdf graphs")

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --- ranking ----------------------------------------------------------

publications = st.lists(
    st.fixed_dictionaries(
        {
            "id": st.sampled_from([f"p{i}" for i in range(8)]),
            "year": st.one_of(st.none(), st.integers(2000, 2019)),
            "keywords": st.lists(st.sampled_from(KEYWORDS), max_size=2),
            "title": st.sampled_from(TITLES),
            "venue": st.sampled_from(VENUES),
        }
    ),
    max_size=4,
)


@st.composite
def candidate_pools(draw):
    size = draw(st.integers(min_value=1, max_value=7))
    pool = []
    for i in range(size):
        matched = draw(
            st.dictionaries(
                st.sampled_from(KEYWORDS), st.floats(0.1, 1.0), max_size=3
            )
        )
        pool.append(
            make_candidate(
                f"cand-{i}",
                interests=draw(st.lists(st.sampled_from(KEYWORDS), max_size=3)),
                matched=matched,
                citations=draw(st.integers(0, 3000)),
                h_index=draw(st.integers(0, 60)),
                review_count=draw(st.integers(0, 40)),
                on_time_rate=draw(st.one_of(st.none(), st.floats(0.0, 1.0))),
                scholar_pubs=draw(publications),
                dblp_pubs=draw(publications),
                venues_reviewed=[
                    {"venue": venue, "count": count}
                    for venue, count in draw(
                        st.dictionaries(
                            st.sampled_from(("Journal X", "VLDB")),
                            st.integers(1, 9),
                            max_size=2,
                        )
                    ).items()
                ],
            )
        )
    return pool


@st.composite
def ranking_configs(draw):
    weights = draw(
        st.lists(
            st.floats(0.0, 5.0, allow_nan=False), min_size=6, max_size=6
        ).filter(lambda values: sum(values) > 0)
    )
    aggregation = draw(st.sampled_from(list(AggregationMethod)))
    owa_weights = None
    if aggregation is AggregationMethod.OWA:
        owa_weights = draw(
            st.one_of(
                st.none(),
                st.lists(st.floats(0.01, 1.0), min_size=1, max_size=6).map(tuple),
            )
        )
    return PipelineConfig(
        weights=RankingWeights(*weights),
        aggregation=aggregation,
        owa_weights=owa_weights,
        impact_metric=draw(st.sampled_from(list(ImpactMetric))),
        top_k=draw(st.one_of(st.none(), st.integers(1, 8))),
    )


expansions = st.lists(
    st.builds(
        expansion,
        keyword=st.sampled_from(KEYWORDS + ("linked data", "ontologies")),
        score=st.floats(0.05, 1.0),
        seed=st.sampled_from(("semantic web", "big data")),
    ),
    max_size=6,
)


def fingerprint(ranked):
    return [
        (s.candidate.candidate_id, s.total_score, s.breakdown.as_dict())
        for s in ranked
    ]


@SETTINGS
@given(
    pool=candidate_pools(),
    config=ranking_configs(),
    expanded=expansions,
    keywords=st.lists(
        st.sampled_from(("semantic web", "big data")),
        min_size=1,
        max_size=2,
        unique=True,
    ),
    venue=st.sampled_from(VENUES),
)
def test_plane_ranking_bit_identical_to_naive(pool, config, expanded, keywords, venue):
    manuscript = make_manuscript(keywords=keywords, venue=venue)
    naive = NaiveRanker(config).rank(manuscript, pool, expanded)
    if config.top_k is not None:
        naive = naive[: config.top_k]
    plane = Ranker(config).rank(manuscript, pool, expanded)
    assert fingerprint(plane) == fingerprint(naive)


# --- COI screening ----------------------------------------------------

affiliations = st.lists(
    st.builds(
        Affiliation,
        institution=st.sampled_from(("MIT", "ETH", "KAUST", "")),
        country=st.sampled_from(("US", "CH", "Saudi Arabia", "")),
        start_year=st.sampled_from((0, 2005, 2012, 2016)),
        end_year=st.one_of(st.none(), st.integers(2006, 2019)),
    ),
    max_size=3,
)

pub_ids = st.sets(st.sampled_from([f"p{i}" for i in range(6)]), max_size=4)

source_ids = st.dictionaries(
    st.sampled_from(("scholar", "dblp", "orcid")),
    st.sampled_from(("id-1", "id-2", "id-3")),
    max_size=2,
).map(lambda ids: tuple(ids.items()))

# Mentorship evidence must be complete records: the naive rule indexes
# ``pub["id"]``/``pub["year"]`` directly.
dblp_records = st.lists(
    st.fixed_dictionaries(
        {
            "id": st.sampled_from([f"p{i}" for i in range(6)]),
            "year": st.integers(1995, 2019),
        }
    ),
    max_size=5,
)

coi_configs = st.builds(
    CoiConfig,
    check_coauthorship=st.booleans(),
    coauthorship_lookback_years=st.one_of(st.none(), st.integers(1, 10)),
    affiliation_level=st.sampled_from(list(AffiliationCoiLevel)),
    check_mentorship=st.booleans(),
    mentorship_window_years=st.integers(1, 5),
    mentorship_seniority_gap=st.integers(1, 12),
)


@st.composite
def author_lists(draw):
    count = draw(st.integers(0, 3))
    return [
        make_author(
            name=f"Author {i}",
            pub_ids=tuple(sorted(draw(pub_ids))),
            affiliations=tuple(draw(affiliations)),
            source_ids=draw(source_ids),
            submitted_affiliation=draw(st.sampled_from(("", "MIT", "KAUST"))),
            submitted_country=draw(st.sampled_from(("", "US", "Saudi Arabia"))),
            dblp_publications=tuple(draw(dblp_records)),
        )
        for i in range(count)
    ]


@SETTINGS
@given(
    config=coi_configs,
    authors=author_lists(),
    candidate_pub_ids=pub_ids,
    candidate_affiliations=affiliations,
    candidate_source_ids=source_ids,
    candidate_dblp=dblp_records,
    years=st.dictionaries(
        st.sampled_from([f"p{i}" for i in range(6)]),
        st.integers(2000, 2019),
        max_size=6,
    ),
)
def test_screen_verdicts_bit_identical_to_naive(
    config,
    authors,
    candidate_pub_ids,
    candidate_affiliations,
    candidate_source_ids,
    candidate_dblp,
    years,
):
    candidate = make_candidate(
        "cand",
        pub_ids=tuple(sorted(candidate_pub_ids)),
        affiliations=tuple(candidate_affiliations),
        source_ids=candidate_source_ids,
        dblp_pubs=candidate_dblp,
    )
    naive = CoiDetector(config, current_year=2019).check(candidate, authors, years)
    fast = CoiScreen(authors, config, current_year=2019).screen(
        build_candidate_features(
            candidate, ScoringContext(current_year=2019, half_life_years=3.0)
        ),
        years,
    )
    assert fast.has_conflict == naive.has_conflict
    assert fast.reasons == naive.reasons
