"""Shared builders for the scoring compute-plane tests.

The builders mirror the ones ``tests/core`` uses, extended with the
COI-relevant evidence (publication ids, affiliations, source ids) so one
candidate object can exercise ranking *and* screening.
"""

from __future__ import annotations

from repro.core.models import Candidate, Manuscript, ManuscriptAuthor, VerifiedAuthor
from repro.ontology.expansion import ExpandedKeyword
from repro.scholarly.records import MergedProfile, Metrics


def expansion(keyword, score, seed, depth=1):
    return ExpandedKeyword(
        keyword=keyword, topic_id=keyword.lower(), score=score, seed=seed, depth=depth
    )


def make_manuscript(keywords=("Semantic Web", "Big Data"), venue="Journal X"):
    return Manuscript(
        title="T",
        keywords=tuple(keywords),
        authors=(ManuscriptAuthor("A"),),
        target_venue=venue,
    )


def make_candidate(
    candidate_id,
    interests=(),
    matched=None,
    citations=0,
    h_index=0,
    review_count=0,
    on_time_rate=None,
    scholar_pubs=(),
    dblp_pubs=(),
    venues_reviewed=(),
    pub_ids=(),
    affiliations=(),
    source_ids=(),
):
    return Candidate(
        candidate_id=candidate_id,
        name=candidate_id,
        profile=MergedProfile(
            canonical_name=candidate_id,
            source_ids=tuple(source_ids),
            interests=tuple(interests),
            metrics=Metrics(citations=citations, h_index=h_index),
            publication_ids=tuple(pub_ids),
            affiliations=tuple(affiliations),
        ),
        matched_keywords=dict(matched or {}),
        keyword_match_score=max((matched or {"": 0}).values() or [0]),
        review_count=review_count,
        on_time_rate=on_time_rate,
        scholar_publications=list(scholar_pubs),
        dblp_publications=list(dblp_pubs),
        venues_reviewed=list(venues_reviewed),
    )


def make_author(
    name="Author A",
    pub_ids=(),
    affiliations=(),
    source_ids=(),
    submitted_affiliation="",
    submitted_country="",
    dblp_publications=(),
):
    return VerifiedAuthor(
        submitted=ManuscriptAuthor(
            name, affiliation=submitted_affiliation, country=submitted_country
        ),
        profile=MergedProfile(
            canonical_name=name,
            source_ids=tuple(source_ids),
            publication_ids=tuple(pub_ids),
            affiliations=tuple(affiliations),
        ),
        dblp_publications=tuple(dblp_publications),
    )
