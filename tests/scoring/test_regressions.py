"""Regression tests for the bugs fixed alongside the compute plane.

Two long-standing naive-path crashes:

- ``_owa_aggregate`` divided by the weight sum without guarding zero —
  valid configs like ``(0, 0, 0, 0, 0, 0, 1)`` truncate to an all-zero
  prefix when there are only six components;
- ``_recency`` indexed ``pub["year"]`` directly, crashing on partial
  publication records (real scholarly sources return them routinely).
"""

import pytest

from repro.core.config import AggregationMethod, PipelineConfig
from repro.core.ranking import NaiveRanker, Ranker, _owa_aggregate
from repro.scoring import owa_aggregate
from tests.scoring.conftest import expansion, make_candidate, make_manuscript

SEEDS = [expansion("Semantic Web", 1.0, "Semantic Web", depth=0)]


class TestOwaZeroSumWeights:
    def test_all_zero_weights_fall_back_to_uniform_mean(self):
        assert _owa_aggregate([0.9, 0.3], (0.0, 0.0)) == pytest.approx(0.6)

    def test_truncated_weights_summing_to_zero(self):
        # Valid at config time (the seventh entry is positive), all-zero
        # once truncated to the component count.
        assert _owa_aggregate(
            [0.6, 0.0, 0.3], (0.0, 0.0, 0.0, 1.0)
        ) == pytest.approx(0.3)

    def test_exported_helper_is_the_same_function(self):
        assert owa_aggregate is _owa_aggregate

    @pytest.mark.parametrize("scoring_plane", [True, False])
    def test_ranker_survives_truncated_zero_prefix(self, scoring_plane):
        config = PipelineConfig(
            aggregation=AggregationMethod.OWA,
            owa_weights=(0.0,) * 6 + (1.0,),
            scoring_plane=scoring_plane,
        )
        candidates = [
            make_candidate("a", interests=("Semantic Web",), citations=100),
            make_candidate("b", review_count=5),
        ]
        ranked = Ranker(config).rank(make_manuscript(), candidates, SEEDS)
        # Six components, all-zero truncated weights: every total is the
        # plain component mean.
        assert len(ranked) == 2
        for scored in ranked:
            mean = sum(scored.breakdown.as_dict().values()) / 6
            assert scored.total_score == round(mean, 6)


class TestRecencyPartialRecords:
    YEARLESS = {"id": "p0", "year": None, "keywords": ["semantic web"]}
    DATED = {"id": "p1", "year": 2019, "keywords": ["semantic web"], "title": ""}

    @pytest.mark.parametrize("scoring_plane", [True, False])
    def test_yearless_publication_is_skipped_not_fatal(self, scoring_plane):
        config = PipelineConfig(scoring_plane=scoring_plane)
        with_partial = make_candidate(
            "a", scholar_pubs=(dict(self.YEARLESS), dict(self.DATED))
        )
        ranked = Ranker(config).rank(make_manuscript(), [with_partial], SEEDS)
        assert len(ranked) == 1
        assert ranked[0].breakdown.recency > 0

    def test_yearless_contributes_nothing(self):
        config = PipelineConfig()
        clean = make_candidate("a", scholar_pubs=(dict(self.DATED),))
        noisy = make_candidate("a", scholar_pubs=(dict(self.YEARLESS), dict(self.DATED)))
        ranker = NaiveRanker(config)
        assert ranker._recency(noisy, SEEDS) == ranker._recency(clean, SEEDS)

    def test_missing_year_key_is_skipped_too(self):
        ranker = NaiveRanker(PipelineConfig())
        candidate = make_candidate(
            "a", scholar_pubs=({"id": "p0", "keywords": ["semantic web"]},)
        )
        assert ranker._recency(candidate, SEEDS) == 0.0
