"""Tests for the command-line demo."""

import pytest

from repro.cli import main


class TestExpandCommand:
    def test_expand_rdf(self, capsys):
        assert main(["expand", "--keyword", "RDF"]) == 0
        output = capsys.readouterr().out
        assert "Semantic Web" in output
        assert "SPARQL" in output

    def test_expand_depth_zero(self, capsys):
        assert main(["expand", "--keyword", "RDF", "--max-depth", "0"]) == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 1

    def test_multiple_keywords(self, capsys):
        assert main(["expand", "--keyword", "RDF", "--keyword", "Big Data"]) == 0
        output = capsys.readouterr().out
        assert "Big Data" in output


class TestStatsCommand:
    def test_stats_table(self, capsys):
        assert main(["stats", "--authors", "60", "--seed", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert "journal" in lines[0]
        assert len(lines) > 10


class TestDemoCommand:
    def test_full_demo_runs(self, capsys):
        assert main(["demo", "--authors", "80", "--seed", "4", "--top", "5"]) == 0
        output = capsys.readouterr().out
        assert "identity verification" in output
        assert "keyword expansion" in output
        assert "Recommended reviewers" in output
        assert "extract_candidates" in output


class TestGenerateAndRecommend:
    @pytest.fixture()
    def dataset(self, tmp_path, capsys):
        path = tmp_path / "world.json"
        assert main(["generate", "--authors", "60", "--seed", "9", "--out", str(path)]) == 0
        capsys.readouterr()
        return path

    def manuscript_file(self, tmp_path, dataset):
        from repro.world.io import load_world

        world = load_world(dataset)
        author = next(
            a
            for a in world.authors.values()
            if len(world.authors_by_name(a.name)) == 1
        )
        topics = sorted(author.topic_expertise)[:2]
        path = tmp_path / "manuscript.json"
        import json

        path.write_text(
            json.dumps(
                {
                    "title": "CLI Test Paper",
                    "keywords": [world.ontology.topic(t).label for t in topics],
                    "authors": [
                        {
                            "name": author.name,
                            "affiliation": author.affiliations[-1].institution,
                        }
                    ],
                }
            )
        )
        return path

    def test_generate_writes_dataset(self, dataset):
        assert dataset.exists()
        assert dataset.stat().st_size > 1000

    def test_recommend_table_output(self, tmp_path, dataset, capsys):
        manuscript = self.manuscript_file(tmp_path, dataset)
        code = main(
            ["recommend", "--world", str(dataset), "--manuscript", str(manuscript)]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Recommended reviewers" in output
        assert "total=" in output

    def test_recommend_json_output(self, tmp_path, dataset, capsys):
        import json

        manuscript = self.manuscript_file(tmp_path, dataset)
        code = main(
            [
                "recommend",
                "--world", str(dataset),
                "--manuscript", str(manuscript),
                "--json",
                "--top", "3",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["recommendations"]) <= 3
        assert payload["phases"]

    def test_recommend_missing_world_errors(self, tmp_path, capsys):
        manuscript = tmp_path / "m.json"
        manuscript.write_text("{}")
        code = main(
            ["recommend", "--world", "/nonexistent.json", "--manuscript", str(manuscript)]
        )
        assert code == 1
        assert "cannot load world" in capsys.readouterr().err

    def test_recommend_bad_manuscript_errors(self, tmp_path, dataset, capsys):
        manuscript = tmp_path / "bad.json"
        manuscript.write_text('{"title": "no keywords"}')
        code = main(
            ["recommend", "--world", str(dataset), "--manuscript", str(manuscript)]
        )
        assert code == 1
        assert "cannot load manuscript" in capsys.readouterr().err


class TestAssignCommand:
    def batch_file(self, tmp_path, dataset):
        import json

        from repro.world.io import load_world

        world = load_world(dataset)
        entries = []
        for author in world.authors.values():
            if len(entries) >= 2:
                break
            if len(world.authors_by_name(author.name)) > 1:
                continue
            topics = sorted(author.topic_expertise)[:2]
            entries.append(
                {
                    "paper_id": f"paper-{len(entries)}",
                    "manuscript": {
                        "title": "Batch Paper",
                        "keywords": [
                            world.ontology.topic(t).label for t in topics
                        ],
                        "authors": [
                            {
                                "name": author.name,
                                "affiliation": author.affiliations[-1].institution,
                            }
                        ],
                    },
                }
            )
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(entries))
        return path

    @pytest.fixture()
    def dataset(self, tmp_path, capsys):
        path = tmp_path / "world.json"
        assert main(["generate", "--authors", "60", "--seed", "9", "--out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_assign_runs(self, tmp_path, dataset, capsys):
        batch = self.batch_file(tmp_path, dataset)
        code = main(
            [
                "assign",
                "--world", str(dataset),
                "--batch", str(batch),
                "--reviewers-per-paper", "2",
                "--solver", "optimal",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Assignment (optimal)" in output
        assert "paper-0:" in output
        assert "paper-1:" in output

    def test_assign_bad_batch_errors(self, tmp_path, dataset, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('[{"paper_id": "p"}]')
        code = main(["assign", "--world", str(dataset), "--batch", str(bad)])
        assert code == 1
        assert "cannot load inputs" in capsys.readouterr().err

    def test_conference_mode_reports_planted_quality(self, dataset, capsys):
        code = main(
            [
                "assign",
                "--world", str(dataset),
                "--conference", "4",
                "--capacity", "2",
                "--reviewers-per-paper", "2",
                "--solver", "greedy-swap",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Conference assignment (greedy-swap)" in output
        assert "planted-recall=" in output
        assert "precision@set=" in output
        assert "load-spread=" in output
        assert "paper-000:" in output

    def test_conference_and_batch_are_exclusive(
        self, tmp_path, dataset, capsys
    ):
        batch = self.batch_file(tmp_path, dataset)
        code = main(
            [
                "assign",
                "--world", str(dataset),
                "--batch", str(batch),
                "--conference", "4",
            ]
        )
        assert code == 1
        assert "exactly one of" in capsys.readouterr().err
        code = main(["assign", "--world", str(dataset)])
        assert code == 1
        assert "exactly one of" in capsys.readouterr().err

    def test_capacity_is_max_load_alias(self, tmp_path, dataset, capsys):
        batch = self.batch_file(tmp_path, dataset)
        base = [
            "assign",
            "--world", str(dataset),
            "--batch", str(batch),
            "--reviewers-per-paper", "2",
            "--solver", "flow",
        ]
        assert main(base + ["--max-load", "1"]) == 0
        via_max_load = capsys.readouterr().out
        assert main(base + ["--capacity", "1"]) == 0
        via_capacity = capsys.readouterr().out
        assert via_capacity == via_max_load


class TestNoCommand:
    def test_prints_help(self, capsys):
        assert main([]) == 2
        assert "minaret" in capsys.readouterr().out


class TestObservabilityFlags:
    @pytest.fixture()
    def dataset(self, tmp_path, capsys):
        path = tmp_path / "world.json"
        assert main(["generate", "--authors", "60", "--seed", "9", "--out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_log_json_writes_valid_event_lines(self, tmp_path, capsys):
        import json

        log = tmp_path / "events.jsonl"
        # authors=120/seed=5 deterministically trips the Scholar fault
        # policy, so the log must contain fault-injection events too.
        assert (
            main(["demo", "--authors", "120", "--seed", "5", "--log-json", str(log)])
            == 0
        )
        capsys.readouterr()
        events = [json.loads(line) for line in log.read_text().splitlines()]
        assert events
        for event in events:
            assert "event" in event
            assert "wall_time" in event
        names = {event["event"] for event in events}
        assert "span_end" in names
        assert "fault_injected" in names
        span_names = {e["span"] for e in events if e["event"] == "span_end"}
        assert "pipeline.recommend" in span_names
        assert "executor.task" in span_names

    def test_metrics_summary_on_stderr(self, capsys):
        import json

        assert main(["demo", "--authors", "60", "--seed", "9", "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "Recommended reviewers" in captured.out
        summary = json.loads(captured.err)
        assert summary["spans"] > 0
        assert "http_requests_total" in summary["counters"]
        assert "http_request_latency_seconds" in summary["histograms"]

    def test_recommend_log_json_keeps_stdout_clean(self, tmp_path, dataset, capsys):
        import json

        from repro.world.io import load_world

        world = load_world(dataset)
        author = next(
            a
            for a in world.authors.values()
            if len(world.authors_by_name(a.name)) == 1
        )
        topics = sorted(author.topic_expertise)[:2]
        manuscript = tmp_path / "manuscript.json"
        manuscript.write_text(
            json.dumps(
                {
                    "title": "Telemetry Test Paper",
                    "keywords": [world.ontology.topic(t).label for t in topics],
                    "authors": [
                        {
                            "name": author.name,
                            "affiliation": author.affiliations[-1].institution,
                        }
                    ],
                }
            )
        )
        log = tmp_path / "events.jsonl"
        code = main(
            [
                "recommend",
                "--world", str(dataset),
                "--manuscript", str(manuscript),
                "--json",
                "--log-json", str(log),
                "--metrics",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is still pure JSON
        assert payload["recommendations"]
        summary = json.loads(captured.err)
        assert summary["events"] > 0
        assert all(json.loads(line) for line in log.read_text().splitlines())


class TestSloCommand:
    @pytest.fixture()
    def dataset(self, tmp_path, capsys):
        path = tmp_path / "world.json"
        assert main(["generate", "--authors", "60", "--seed", "9", "--out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_healthy_report_table(self, dataset, capsys):
        assert main(["slo", "report", "--world", str(dataset), "--papers", "2"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "http-dblp.org" in out
        assert "http-scholar.google.com" in out

    def test_degrade_drives_burning_json(self, dataset, capsys):
        import json

        assert (
            main(
                [
                    "slo",
                    "report",
                    "--world",
                    str(dataset),
                    "--papers",
                    "4",
                    "--degrade",
                    "scholar.google.com",
                    "--failure-rate",
                    "0.6",
                    "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        by_name = {slo["name"]: slo for slo in report["slos"]}
        scholar = by_name["http-scholar.google.com"]
        assert scholar["verdict"] == "burning"
        assert any(alert["firing"] for alert in scholar["alerts"])
        assert report["verdict"] == "burning"
        assert by_name["http-dblp.org"]["verdict"] == "ok"

    def test_unknown_degrade_host_errors(self, dataset, capsys):
        assert (
            main(
                [
                    "slo",
                    "report",
                    "--world",
                    str(dataset),
                    "--degrade",
                    "no-such.example",
                ]
            )
            == 1
        )
        assert "no-such.example" in capsys.readouterr().err


class TestProfileCommand:
    def test_flame_table_from_demo_log(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert (
            main(["demo", "--authors", "60", "--seed", "9", "--log-json", str(log)])
            == 0
        )
        capsys.readouterr()
        assert main(["profile", "--log", str(log)]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("span")
        assert any("pipeline.recommend" in line for line in lines)
        assert any("executor.task" in line for line in lines)

    def test_top_and_json(self, tmp_path, capsys):
        import json

        log = tmp_path / "events.jsonl"
        assert (
            main(["demo", "--authors", "60", "--seed", "9", "--log-json", str(log)])
            == 0
        )
        capsys.readouterr()
        assert main(["profile", "--log", str(log), "--top", "3", "--json"]) == 0
        profiles = json.loads(capsys.readouterr().out)
        assert len(profiles) == 3
        assert {"name", "calls", "virtual_self", "wall_self"} <= set(profiles[0])

    def test_log_without_spans_errors(self, tmp_path, capsys):
        log = tmp_path / "empty.jsonl"
        log.write_text('{"event": "metric", "wall_time": 0.0}\n')
        assert main(["profile", "--log", str(log)]) == 1
        assert "span" in capsys.readouterr().err


class TestMetricsParity:
    def test_cli_metrics_matches_api_payload_keys(self, capsys):
        """--metrics must expose every section the API metrics payload has."""
        import json

        assert (
            main(
                [
                    "demo",
                    "--authors",
                    "60",
                    "--seed",
                    "9",
                    "--metrics",
                    "--warm-cache",
                ]
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().err)
        # Same sections as GET /api/v1/metrics: registry snapshot parts
        # plus the deployment's http/cache/retrieval/features stats.
        assert {"counters", "gauges", "histograms", "http",
                "cache", "retrieval", "features"} <= set(summary)
        assert summary["http"]["dblp.org"]["requests"] > 0
        assert summary["cache"]["name"] == "crawler"
        assert summary["retrieval"]["store_entries"] >= 0
        assert summary["features"]["features_built"] > 0


class TestServeBenchCommand:
    ARGS = [
        "serve-bench",
        "--authors", "60",
        "--seed", "9",
        "--requests", "40",
        "--rate", "4",
        "--burst", "5:5:4",
        "--load-seed", "13",
    ]

    def test_table_report(self, capsys):
        assert main(self.ARGS) == 0
        output = capsys.readouterr().out
        assert "serve-bench: 40 offered" in output
        assert "served latency" in output
        assert "serving SLO" in output
        assert "tenant chairs" in output

    def test_json_report_is_deterministic(self, capsys):
        import json

        reports = []
        for _ in range(2):
            assert main([*self.ARGS, "--json"]) == 0
            reports.append(json.loads(capsys.readouterr().out))
        for report in reports:
            report.pop("slo", None)
        assert reports[0] == reports[1]
        assert reports[0]["offered"] == 40
        assert reports[0]["served"] + sum(reports[0]["shed"].values()) + reports[0][
            "degraded"
        ] == 40

    def test_out_writes_json_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "traffic.json"
        assert main([*self.ARGS, "--out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["offered"] == 40
        assert {"p50", "p95", "p99"} <= set(payload["latency"])

    def test_bad_burst_spec_errors(self, capsys):
        assert main(["serve-bench", "--burst", "nope"]) == 1
        assert "bad --burst" in capsys.readouterr().err


class TestScaleBenchCommand:
    ARGS = [
        "scale-bench",
        "--pool-size",
        "300",
        "--pool-size",
        "900",
        "--queries",
        "2",
        "--shards",
        "4",
        "--workers",
        "2",
    ]

    def test_table_output(self, capsys):
        assert main(self.ARGS) == 0
        output = capsys.readouterr().out
        assert "scale-bench: shards=4 workers=2" in output
        assert "300" in output and "900" in output
        assert "interning" in output
        assert "scaling:" in output

    def test_json_report_verifies_brute_force(self, capsys):
        import json

        assert main([*self.ARGS, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [entry["authors"] for entry in report["sizes"]] == [300, 900]
        # Both sizes are under the verification cap: the sharded top-k
        # must have matched the brute-force reference at each.
        assert all(
            entry["topk_matches_brute_force"] is True for entry in report["sizes"]
        )
        assert report["interning"]["saved_bytes"] > 0

    def test_out_writes_json_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "scale.json"
        assert main([*self.ARGS, "--out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["name"] == "EXP-SCALE"
        assert payload["shards"] == 4
