"""Unit tests for the retrying, caching crawler."""

import pytest

from repro.web.cache import TTLCache
from repro.web.clock import SimulatedClock
from repro.web.crawler import Crawler, CrawlError, RetryPolicy
from repro.web.faults import FaultPolicy
from repro.web.http import (
    LatencyModel,
    NotFoundError,
    SimulatedHttpClient,
)
from repro.web.ratelimit import TokenBucket


@pytest.fixture()
def clock():
    return SimulatedClock()


def make_client(clock, faults=None, bucket=None, handler=None):
    http = SimulatedHttpClient(clock)
    http.register_host(
        "svc",
        handler or (lambda req: {"ok": True}),
        latency=LatencyModel(base=0.01, jitter=0.0),
        faults=faults,
        rate_limit=bucket,
    )
    return http


class TestRetryPolicy:
    def test_backoff_doubles(self):
        policy = RetryPolicy(base_backoff=0.1, max_backoff=10.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    def test_backoff_capped(self):
        policy = RetryPolicy(base_backoff=1.0, max_backoff=2.0)
        assert policy.backoff_for(10) == 2.0

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_invalid_backoff_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=5.0, max_backoff=1.0)


class TestFetch:
    def test_success(self, clock):
        crawler = Crawler(make_client(clock))
        assert crawler.fetch("svc", "/p").payload == {"ok": True}

    def test_retries_transient_faults(self, clock):
        # Fail the 1st request, succeed on retry.
        faults = FaultPolicy(burst_every=1, burst_length=1)
        # burst_every=1 makes every request fail; instead fail only first:
        client = make_client(clock, faults=FaultPolicy(burst_every=3))
        crawler = Crawler(client, retry=RetryPolicy(max_attempts=3, base_backoff=0.01))
        for __ in range(4):
            assert crawler.fetch("svc", "/p").ok
        assert crawler.retries >= 1

    def test_gives_up_after_max_attempts(self, clock):
        client = make_client(clock, faults=FaultPolicy(failure_probability=1.0))
        crawler = Crawler(client, retry=RetryPolicy(max_attempts=2, base_backoff=0.01))
        with pytest.raises(CrawlError) as exc_info:
            crawler.fetch("svc", "/p")
        assert exc_info.value.attempts == 2

    def test_backoff_advances_clock(self, clock):
        client = make_client(clock, faults=FaultPolicy(failure_probability=1.0))
        crawler = Crawler(client, retry=RetryPolicy(max_attempts=3, base_backoff=1.0))
        with pytest.raises(CrawlError):
            crawler.fetch("svc", "/p")
        # 3 latencies (0.01 each) + backoffs 1.0 + 2.0.
        assert clock.now() == pytest.approx(3.03)

    def test_rate_limit_waits_and_recovers(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        client = make_client(clock, bucket=bucket)
        crawler = Crawler(client, retry=RetryPolicy(max_attempts=3, base_backoff=0.01))
        assert crawler.fetch("svc", "/a").ok
        assert crawler.fetch("svc", "/b").ok  # waits for refill internally
        assert client.stats["svc"].rate_limited == 1

    def test_404_not_retried(self, clock):
        def handler(req):
            raise KeyError("gone")

        client = make_client(clock, handler=handler)
        crawler = Crawler(client)
        with pytest.raises(NotFoundError):
            crawler.fetch("svc", "/p")
        assert client.stats["svc"].requests == 1

    def test_fetch_or_none_maps_404(self, clock):
        def handler(req):
            raise KeyError("gone")

        crawler = Crawler(make_client(clock, handler=handler))
        assert crawler.fetch_or_none("svc", "/p") is None


class TestCaching:
    def test_cache_hit_skips_network(self, clock):
        client = make_client(clock)
        cache = TTLCache(ttl=60.0, capacity=10, clock=clock)
        crawler = Crawler(client, cache=cache)
        crawler.fetch("svc", "/p", {"q": 1})
        response = crawler.fetch("svc", "/p", {"q": 1})
        assert response.from_cache
        assert client.stats["svc"].requests == 1
        assert crawler.cache_hit_rate() == 0.5

    def test_different_params_miss(self, clock):
        client = make_client(clock)
        cache = TTLCache(ttl=60.0, capacity=10, clock=clock)
        crawler = Crawler(client, cache=cache)
        crawler.fetch("svc", "/p", {"q": 1})
        crawler.fetch("svc", "/p", {"q": 2})
        assert client.stats["svc"].requests == 2

    def test_expired_entry_refetched(self, clock):
        client = make_client(clock)
        cache = TTLCache(ttl=1.0, capacity=10, clock=clock)
        crawler = Crawler(client, cache=cache)
        crawler.fetch("svc", "/p")
        clock.advance(2.0)
        crawler.fetch("svc", "/p")
        assert client.stats["svc"].requests == 2

    def test_ttl_zero_is_pure_on_the_fly(self, clock):
        client = make_client(clock)
        cache = TTLCache(ttl=0, capacity=10, clock=clock)
        crawler = Crawler(client, cache=cache)
        crawler.fetch("svc", "/p")
        crawler.fetch("svc", "/p")
        assert client.stats["svc"].requests == 2
        assert crawler.cache_hits == 0

    def test_no_cache_configured(self, clock):
        crawler = Crawler(make_client(clock))
        crawler.fetch("svc", "/p")
        assert crawler.cache_hit_rate() == 0.0
