"""Edge cases for scoped request accounting.

The basics (one scope, simple nesting) are covered alongside the HTTP
client tests; these exercise the awkward shapes — deep nesting, scopes
crossing pool threads, and re-entering a scope after it has exited.
"""

import pytest

from repro.web.accounting import (
    RequestScope,
    active_scopes,
    charge_request,
    charge_wait,
)


class TestDeepNesting:
    def test_every_level_sees_inner_charges(self):
        scopes = [RequestScope(label=f"level-{i}") for i in range(10)]
        import contextlib

        with contextlib.ExitStack() as stack:
            for scope in scopes:
                stack.enter_context(scope)
            assert active_scopes() == tuple(scopes)
            charge_request(0.5)
        assert all(s.requests == 1 for s in scopes)
        assert all(s.virtual_seconds == pytest.approx(0.5) for s in scopes)
        assert active_scopes() == ()

    def test_inner_exit_stops_inner_charges_only(self):
        with RequestScope() as outer:
            with RequestScope() as inner:
                charge_request(1.0)
            charge_request(1.0)
        assert inner.requests == 1
        assert outer.requests == 2

    def test_sibling_scopes_do_not_leak(self):
        with RequestScope() as first:
            charge_wait(1.0)
        with RequestScope() as second:
            charge_wait(2.0)
        assert first.virtual_seconds == pytest.approx(1.0)
        assert second.virtual_seconds == pytest.approx(2.0)


class TestCrossThreadCharging:
    def test_pool_threads_charge_the_submitting_scope(self):
        from repro.concurrency import create_executor

        executor = create_executor(4, backend="thread")

        def work(latency):
            charge_request(latency)
            return latency

        with RequestScope() as scope:
            executor.map(work, [0.25] * 8)
        assert scope.requests == 8
        assert scope.virtual_seconds == pytest.approx(2.0)

    def test_sibling_contexts_stay_separate(self):
        from repro.concurrency import create_executor

        executor = create_executor(2, backend="thread")

        def run_in_own_scope(latency):
            with RequestScope() as scope:
                charge_request(latency)
            return scope

        scopes = executor.map(run_in_own_scope, [1.0, 2.0])
        assert [s.virtual_seconds for s in scopes] == [1.0, 2.0]
        assert all(s.requests == 1 for s in scopes)

    def test_plain_thread_does_not_inherit_scope(self):
        # Raw threading (unlike the executors) starts a fresh context:
        # charges made there must not land in the spawning scope.
        import threading

        with RequestScope() as scope:
            thread = threading.Thread(target=charge_request, args=(1.0,))
            thread.start()
            thread.join()
        assert scope.requests == 0


class TestReentry:
    def test_scope_can_be_reused_after_exit(self):
        scope = RequestScope()
        with scope:
            charge_request(1.0)
        with scope:
            charge_request(1.0)
        # Totals accumulate across activations; nothing resets or leaks.
        assert scope.requests == 2
        assert scope.virtual_seconds == pytest.approx(2.0)
        assert active_scopes() == ()

    def test_charges_between_activations_are_not_counted(self):
        scope = RequestScope()
        with scope:
            charge_request(1.0)
        charge_request(10.0)  # no scope active
        assert scope.requests == 1
        assert scope.virtual_seconds == pytest.approx(1.0)

    def test_exit_without_enter_is_harmless(self):
        scope = RequestScope()
        scope.__exit__(None, None, None)
        assert active_scopes() == ()

    def test_nested_self_reentry(self):
        scope = RequestScope()
        with scope:
            with scope:
                # Active twice -> charged once per activation.
                charge_request(1.0)
                assert active_scopes() == (scope, scope)
            charge_request(1.0)
            assert active_scopes() == (scope,)
        assert scope.requests == 3
        assert scope.virtual_seconds == pytest.approx(3.0)
        assert active_scopes() == ()
