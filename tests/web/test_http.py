"""Unit tests for the simulated HTTP client and fault injection."""

import pytest

from repro.web.clock import SimulatedClock
from repro.web.faults import FaultPolicy
from repro.web.http import (
    HttpRequest,
    LatencyModel,
    NotFoundError,
    RateLimitedError,
    ServiceUnavailableError,
    SimulatedHttpClient,
)
from repro.web.ratelimit import TokenBucket


@pytest.fixture()
def clock():
    return SimulatedClock()


@pytest.fixture()
def client(clock):
    http = SimulatedHttpClient(clock)
    http.register_host(
        "fast.example",
        lambda req: {"echo": req.param("q")},
        latency=LatencyModel(base=0.01, jitter=0.0),
    )
    return http


class TestFaultPolicy:
    def test_never_fails(self):
        policy = FaultPolicy.never()
        assert not any(policy.should_fail() for __ in range(100))

    def test_burst_schedule(self):
        policy = FaultPolicy(burst_every=3, burst_length=2)
        outcomes = [policy.should_fail() for __ in range(8)]
        assert outcomes == [False, False, True, True, False, True, True, False]

    def test_probabilistic_deterministic_per_seed(self):
        a = [FaultPolicy(failure_probability=0.5, seed=1).should_fail() for __ in range(20)]
        b = [FaultPolicy(failure_probability=0.5, seed=1).should_fail() for __ in range(20)]
        assert a == b

    def test_probability_one_always_fails(self):
        policy = FaultPolicy(failure_probability=1.0)
        assert all(policy.should_fail() for __ in range(10))

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(failure_probability=1.5)

    def test_invalid_burst_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(burst_every=0)


class TestRequest:
    def test_params_normalized(self):
        a = HttpRequest.create("h", "/p", {"b": 2, "a": 1})
        b = HttpRequest.create("h", "/p", {"a": 1, "b": 2})
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_param_lookup(self):
        request = HttpRequest.create("h", "/p", {"q": "x"})
        assert request.param("q") == "x"
        assert request.param("missing", "d") == "d"


class TestDispatch:
    def test_successful_get(self, client):
        response = client.get("fast.example", "/any", {"q": "hello"})
        assert response.ok
        assert response.payload == {"echo": "hello"}
        assert response.latency == pytest.approx(0.01)

    def test_latency_advances_clock(self, client, clock):
        client.get("fast.example", "/any")
        assert clock.now() == pytest.approx(0.01)

    def test_unknown_host_404(self, client):
        with pytest.raises(NotFoundError):
            client.get("nowhere.example", "/any")

    def test_handler_keyerror_becomes_404(self, clock):
        http = SimulatedHttpClient(clock)
        http.register_host("h", lambda req: {"x": {}["missing"]})
        with pytest.raises(NotFoundError):
            http.get("h", "/p")

    def test_duplicate_host_rejected(self, client):
        with pytest.raises(ValueError):
            client.register_host("fast.example", lambda req: {})

    def test_hosts_listing(self, client):
        assert client.hosts() == ["fast.example"]


class TestRateLimiting:
    def test_429_when_bucket_empty(self, clock):
        http = SimulatedHttpClient(clock)
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        http.register_host(
            "limited", lambda req: {}, rate_limit=bucket,
            latency=LatencyModel(base=0.0, jitter=0.0),
        )
        http.get("limited", "/p")
        with pytest.raises(RateLimitedError) as exc_info:
            http.get("limited", "/p")
        assert exc_info.value.retry_after > 0
        assert http.stats["limited"].rate_limited == 1

    def test_recovers_after_refill(self, clock):
        http = SimulatedHttpClient(clock)
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        http.register_host(
            "limited", lambda req: {"ok": True}, rate_limit=bucket,
            latency=LatencyModel(base=0.0, jitter=0.0),
        )
        http.get("limited", "/p")
        clock.advance(1.0)
        assert http.get("limited", "/p").ok


class TestFaults:
    def test_injected_503(self, clock):
        http = SimulatedHttpClient(clock)
        http.register_host(
            "flaky", lambda req: {}, faults=FaultPolicy(burst_every=1)
        )
        with pytest.raises(ServiceUnavailableError):
            http.get("flaky", "/p")
        assert http.stats["flaky"].faults == 1


class TestStats:
    def test_counters(self, client):
        client.get("fast.example", "/a")
        client.get("fast.example", "/b")
        stats = client.stats["fast.example"]
        assert stats.requests == 2
        assert stats.total_latency == pytest.approx(0.02)
        assert client.total_requests() == 2
        assert client.total_latency() == pytest.approx(0.02)

    def test_reset(self, client):
        client.get("fast.example", "/a")
        client.reset_stats()
        assert client.total_requests() == 0


class TestLatencyModel:
    def test_no_jitter_is_constant(self):
        model = LatencyModel(base=0.5, jitter=0.0)
        assert {model.sample() for __ in range(5)} == {0.5}

    def test_jitter_within_bounds(self):
        model = LatencyModel(base=0.1, jitter=0.2, seed=3)
        for __ in range(100):
            sample = model.sample()
            assert 0.1 <= sample <= 0.3

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base=-0.1)
