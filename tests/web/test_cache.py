"""Unit tests for the TTL response cache."""

import pytest

from repro.web.cache import TTLCache
from repro.web.clock import SimulatedClock


@pytest.fixture()
def clock():
    return SimulatedClock()


class TestBasics:
    def test_put_get(self, clock):
        cache = TTLCache(ttl=10.0, capacity=10, clock=clock)
        cache.put("k", "v")
        assert cache.get("k") == "v"

    def test_miss_returns_none(self, clock):
        cache = TTLCache(ttl=10.0, capacity=10, clock=clock)
        assert cache.get("missing") is None

    def test_invalidate(self, clock):
        cache = TTLCache(ttl=10.0, capacity=10, clock=clock)
        cache.put("k", "v")
        cache.invalidate("k")
        assert cache.get("k") is None

    def test_clear(self, clock):
        cache = TTLCache(ttl=10.0, capacity=10, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_overwrite(self, clock):
        cache = TTLCache(ttl=10.0, capacity=10, clock=clock)
        cache.put("k", "old")
        cache.put("k", "new")
        assert cache.get("k") == "new"


class TestExpiry:
    def test_entry_expires_after_ttl(self, clock):
        cache = TTLCache(ttl=10.0, capacity=10, clock=clock)
        cache.put("k", "v")
        clock.advance(10.1)
        assert cache.get("k") is None

    def test_entry_survives_within_ttl(self, clock):
        cache = TTLCache(ttl=10.0, capacity=10, clock=clock)
        cache.put("k", "v")
        clock.advance(9.9)
        assert cache.get("k") == "v"

    def test_ttl_zero_disables_caching(self, clock):
        cache = TTLCache(ttl=0, capacity=10, clock=clock)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_ttl_none_is_immortal(self, clock):
        cache = TTLCache(ttl=None, capacity=10, clock=clock)
        cache.put("k", "v")
        clock.advance(1e9)
        assert cache.get("k") == "v"

    def test_len_evicts_expired(self, clock):
        cache = TTLCache(ttl=5.0, capacity=10, clock=clock)
        cache.put("a", 1)
        clock.advance(6.0)
        cache.put("b", 2)
        assert len(cache) == 1

    def test_negative_ttl_rejected(self, clock):
        with pytest.raises(ValueError):
            TTLCache(ttl=-1.0, capacity=10, clock=clock)


class TestCapacity:
    def test_lru_eviction(self, clock):
        cache = TTLCache(ttl=None, capacity=2, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_capacity_one(self, clock):
        cache = TTLCache(ttl=None, capacity=1, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_invalid_capacity_rejected(self, clock):
        with pytest.raises(ValueError):
            TTLCache(ttl=None, capacity=0, clock=clock)


class TestCounters:
    def test_hit_rate(self, clock):
        cache = TTLCache(ttl=None, capacity=10, clock=clock)
        cache.put("k", "v")
        cache.get("k")
        cache.get("missing")
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate() == 0.5

    def test_hit_rate_no_queries(self, clock):
        cache = TTLCache(ttl=None, capacity=10, clock=clock)
        assert cache.hit_rate() == 0.0


class TestEvictionCounters:
    def test_expired_on_read_counts(self, clock):
        cache = TTLCache(ttl=5.0, capacity=10, clock=clock)
        cache.put("k", "v")
        clock.advance(6.0)
        assert cache.get("k") is None
        assert cache.evictions_expired == 1
        assert cache.evictions_capacity == 0

    def test_expired_overwrite_on_put_counts(self, clock):
        """A put over a dead entry is the lazy form of an expiry drop."""
        cache = TTLCache(ttl=5.0, capacity=10, clock=clock)
        cache.put("k", "old")
        clock.advance(6.0)
        cache.put("k", "new")
        assert cache.evictions_expired == 1

    def test_live_overwrite_is_not_an_eviction(self, clock):
        cache = TTLCache(ttl=5.0, capacity=10, clock=clock)
        cache.put("k", "old")
        clock.advance(1.0)
        cache.put("k", "new")
        assert cache.evictions_expired == 0
        assert cache.evictions_capacity == 0

    def test_capacity_eviction_counts(self, clock):
        cache = TTLCache(ttl=None, capacity=2, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.evictions_capacity == 1
        assert cache.evictions_expired == 0

    def test_len_sweep_counts_expired(self, clock):
        cache = TTLCache(ttl=5.0, capacity=10, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        clock.advance(6.0)
        len(cache)
        assert cache.evictions_expired == 2

    def test_stats_snapshot(self, clock):
        cache = TTLCache(ttl=5.0, capacity=2, clock=clock, name="crawler")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # capacity eviction
        cache.get("b")  # hit
        clock.advance(6.0)
        cache.get("c")  # expired on read
        stats = cache.stats()
        assert stats == {
            "name": "crawler",
            "entries": 0,
            "capacity": 2,
            "ttl": 5.0,
            "hits": 1,
            "misses": 1,
            "evictions_expired": 2,
            "evictions_capacity": 1,
        }
