"""Tests for request tracing."""

import pytest

from repro.api.handlers import MinaretApi
from repro.scholarly.registry import ScholarlyHub
from repro.web.clock import SimulatedClock
from repro.web.faults import FaultPolicy
from repro.web.http import LatencyModel, NotFoundError, SimulatedHttpClient


@pytest.fixture()
def traced_client():
    clock = SimulatedClock()
    http = SimulatedHttpClient(clock, trace_capacity=5)
    http.register_host(
        "svc",
        lambda req: {"ok": True},
        latency=LatencyModel(base=0.01, jitter=0.0),
    )
    return http


class TestTracing:
    def test_disabled_by_default(self):
        http = SimulatedHttpClient(SimulatedClock())
        http.register_host("svc", lambda req: {})
        http.get("svc", "/p")
        assert http.traces() == []

    def test_successful_requests_traced(self, traced_client):
        traced_client.get("svc", "/a", {"q": 1})
        traced_client.get("svc", "/b")
        traces = traced_client.traces()
        assert [t.path for t in traces] == ["/a", "/b"]
        assert traces[0].status == 200
        assert traces[0].params == (("q", 1),)
        assert traces[0].latency == pytest.approx(0.01)

    def test_virtual_timestamps_monotone(self, traced_client):
        for __ in range(3):
            traced_client.get("svc", "/p")
        timestamps = [t.at for t in traced_client.traces()]
        assert timestamps == sorted(timestamps)

    def test_404_traced(self, traced_client):
        with pytest.raises(NotFoundError):
            traced_client.get("nowhere", "/p")
        # Unknown host raises before stats/tracing; known-host 404s trace.
        def missing(req):
            raise KeyError("x")

        traced_client.register_host("missing", missing)
        with pytest.raises(NotFoundError):
            traced_client.get("missing", "/p")
        assert traced_client.traces()[-1].status == 404

    def test_503_traced(self):
        clock = SimulatedClock()
        http = SimulatedHttpClient(clock, trace_capacity=5)
        http.register_host("flaky", lambda req: {}, faults=FaultPolicy(burst_every=1))
        from repro.web.http import ServiceUnavailableError

        with pytest.raises(ServiceUnavailableError):
            http.get("flaky", "/p")
        assert http.traces()[-1].status == 503

    def test_ring_buffer_caps(self, traced_client):
        for i in range(10):
            traced_client.get("svc", f"/p{i}")
        traces = traced_client.traces()
        assert len(traces) == 5
        assert traces[0].path == "/p5"

    def test_clear(self, traced_client):
        traced_client.get("svc", "/p")
        traced_client.clear_traces()
        assert traced_client.traces() == []


class TestHubAndApiIntegration:
    def test_hub_tracing_opt_in(self, world):
        hub = ScholarlyHub.deploy(world, trace_capacity=100)
        author = next(iter(world.authors.values()))
        hub.dblp.search_author(author.name)
        traces = hub.http.traces()
        assert traces
        assert traces[0].host == "dblp.org"

    def test_api_trace_endpoint(self, world):
        hub = ScholarlyHub.deploy(world, trace_capacity=100)
        api = MinaretApi(hub)
        author = next(iter(world.authors.values()))
        hub.dblp.search_author(author.name)
        response = api.handle("GET", "/api/v1/trace")
        assert response.ok
        assert response.body["traces"]
        first = response.body["traces"][0]
        assert first["host"] == "dblp.org"
        assert first["status"] == 200

    def test_api_trace_empty_when_disabled(self, hub):
        api = MinaretApi(hub)
        response = api.handle("GET", "/api/v1/trace")
        assert response.ok
        assert response.body["traces"] == []
