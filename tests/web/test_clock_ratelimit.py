"""Unit tests for the virtual clock and token bucket."""

import pytest

from repro.web.clock import SimulatedClock
from repro.web.ratelimit import TokenBucket


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_custom_start(self):
        assert SimulatedClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(start=-1.0)

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-0.1)

    def test_sleep_is_advance(self):
        clock = SimulatedClock()
        clock.sleep(3.0)
        assert clock.now() == 3.0


class TestTokenBucket:
    @pytest.fixture()
    def clock(self):
        return SimulatedClock()

    def test_burst_up_to_capacity(self, clock):
        bucket = TokenBucket(capacity=2, refill_rate=1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_over_time(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=2.0, clock=clock)
        bucket.try_acquire()
        clock.advance(0.5)  # 1 token refilled at 2/s
        assert bucket.try_acquire()

    def test_never_exceeds_capacity(self, clock):
        bucket = TokenBucket(capacity=2, refill_rate=10.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(2.0)

    def test_time_until_available(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=0.5, clock=clock)
        bucket.try_acquire()
        assert bucket.time_until_available() == pytest.approx(2.0)

    def test_time_until_available_zero_when_ready(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        assert bucket.time_until_available() == 0.0

    def test_requesting_over_capacity_rejected(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        with pytest.raises(ValueError):
            bucket.time_until_available(5.0)

    def test_invalid_parameters_rejected(self, clock):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_rate=1.0, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, refill_rate=0.0, clock=clock)

    def test_invalid_acquire_rejected(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        with pytest.raises(ValueError):
            bucket.try_acquire(0)

    def test_fractional_tokens(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        assert bucket.try_acquire(0.5)
        assert bucket.try_acquire(0.5)
        assert not bucket.try_acquire(0.5)
