"""Unit tests for the virtual clock and token bucket."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.web.clock import SimulatedClock
from repro.web.ratelimit import TokenBucket


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_custom_start(self):
        assert SimulatedClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(start=-1.0)

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-0.1)

    def test_sleep_is_advance(self):
        clock = SimulatedClock()
        clock.sleep(3.0)
        assert clock.now() == 3.0


class TestTokenBucket:
    @pytest.fixture()
    def clock(self):
        return SimulatedClock()

    def test_burst_up_to_capacity(self, clock):
        bucket = TokenBucket(capacity=2, refill_rate=1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_over_time(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=2.0, clock=clock)
        bucket.try_acquire()
        clock.advance(0.5)  # 1 token refilled at 2/s
        assert bucket.try_acquire()

    def test_never_exceeds_capacity(self, clock):
        bucket = TokenBucket(capacity=2, refill_rate=10.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(2.0)

    def test_time_until_available(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=0.5, clock=clock)
        bucket.try_acquire()
        assert bucket.time_until_available() == pytest.approx(2.0)

    def test_time_until_available_zero_when_ready(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        assert bucket.time_until_available() == 0.0

    def test_requesting_over_capacity_rejected(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        with pytest.raises(ValueError):
            bucket.time_until_available(5.0)

    def test_try_acquire_over_capacity_rejected(self, clock):
        # Regression: try_acquire(tokens > capacity) used to return
        # False forever while time_until_available raised — the two
        # entry points must validate identically.
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        with pytest.raises(ValueError):
            bucket.try_acquire(5.0)

    def test_validation_is_consistent_across_entry_points(self, clock):
        bucket = TokenBucket(capacity=3, refill_rate=1.0, clock=clock)
        for tokens in (-1.0, 0.0, 3.5, 100.0):
            acquire_raises = wait_raises = False
            try:
                bucket.try_acquire(tokens)
            except ValueError:
                acquire_raises = True
            try:
                bucket.time_until_available(tokens)
            except ValueError:
                wait_raises = True
            assert acquire_raises == wait_raises == (tokens <= 0 or tokens > 3)

    def test_invalid_parameters_rejected(self, clock):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_rate=1.0, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, refill_rate=0.0, clock=clock)

    def test_invalid_acquire_rejected(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        with pytest.raises(ValueError):
            bucket.try_acquire(0)

    def test_fractional_tokens(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        assert bucket.try_acquire(0.5)
        assert bucket.try_acquire(0.5)
        assert not bucket.try_acquire(0.5)

    def test_refund_restores_budget(self, clock):
        bucket = TokenBucket(capacity=2, refill_rate=0.001, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        bucket.refund()
        assert bucket.try_acquire()

    def test_refund_capped_at_capacity(self, clock):
        bucket = TokenBucket(capacity=2, refill_rate=1.0, clock=clock)
        bucket.refund(1.5)
        assert bucket.available() == pytest.approx(2.0)

    def test_refund_validates_like_acquire(self, clock):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        with pytest.raises(ValueError):
            bucket.refund(0)
        with pytest.raises(ValueError):
            bucket.refund(5.0)


class TestBucketProperties:
    """Property: whenever time_until_available returns a finite bound,
    advancing the clock by exactly that bound makes try_acquire succeed."""

    @given(
        capacity=st.floats(min_value=0.5, max_value=50.0),
        refill_rate=st.floats(min_value=0.1, max_value=20.0),
        drains=st.lists(st.floats(min_value=0.05, max_value=1.0), max_size=8),
        tokens_fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(deadline=None, max_examples=80)
    def test_wait_bound_is_sufficient(
        self, capacity, refill_rate, drains, tokens_fraction
    ):
        clock = SimulatedClock()
        bucket = TokenBucket(capacity=capacity, refill_rate=refill_rate, clock=clock)
        # Drain an arbitrary (valid) amount to put the bucket in a
        # partially-empty state.
        for fraction in drains:
            bucket.try_acquire(fraction * capacity)
        tokens = tokens_fraction * capacity
        wait = bucket.time_until_available(tokens)
        assert wait >= 0.0
        assert wait != float("inf")
        if wait > 0:
            clock.advance(wait)
        # Tolerate one float-rounding ulp in the refill arithmetic.
        assert bucket.try_acquire(tokens) or bucket.try_acquire(
            tokens - 1e-9 * capacity
        )
