"""The executor contract: ordering, errors, context propagation."""

import contextvars
import threading
import time

import pytest

from repro.concurrency import (
    Executor,
    SequentialExecutor,
    ThreadExecutor,
    create_executor,
)
from repro.web import accounting
from repro.web.accounting import RequestScope


@pytest.fixture(params=["sequential", "thread-2", "thread-8"])
def executor(request) -> Executor:
    if request.param == "sequential":
        return SequentialExecutor()
    return ThreadExecutor(int(request.param.split("-")[1]))


class TestMapContract:
    def test_results_in_input_order(self, executor):
        assert executor.map(lambda x: x * 2, range(20)) == [x * 2 for x in range(20)]

    def test_order_survives_out_of_order_completion(self):
        # Earlier tasks sleep longer, so completion order is reversed.
        def slow_identity(i):
            time.sleep((5 - i) * 0.01)
            return i

        assert ThreadExecutor(8).map(slow_identity, range(5)) == list(range(5))

    def test_empty_input(self, executor):
        assert executor.map(lambda x: x, []) == []

    def test_single_item(self, executor):
        assert executor.map(lambda x: x + 1, [41]) == [42]

    def test_lowest_index_exception_propagates(self):
        def boom_on_odd(i):
            if i % 2 == 1:
                raise ValueError(str(i))
            return i

        with pytest.raises(ValueError, match="^1$"):
            ThreadExecutor(4).map(boom_on_odd, range(10))

    def test_all_tasks_complete_despite_failure(self):
        executed = set()
        lock = threading.Lock()

        def record(i):
            with lock:
                executed.add(i)
            if i == 0:
                raise RuntimeError("first task fails")
            return i

        with pytest.raises(RuntimeError):
            ThreadExecutor(4).map(record, range(12))
        assert executed == set(range(12))

    def test_sequential_exception_matches(self):
        def boom_on_odd(i):
            if i % 2 == 1:
                raise ValueError(str(i))
            return i

        with pytest.raises(ValueError, match="^1$"):
            SequentialExecutor().map(boom_on_odd, range(10))


class TestChunking:
    """``chunk_size`` batches tasks per dispatch without changing results."""

    def test_chunked_results_match_unchunked(self, executor):
        plain = executor.map(lambda x: x * 3, range(23))
        for chunk_size in (1, 4, 23, 100):
            assert executor.map(lambda x: x * 3, range(23), chunk_size=chunk_size) == plain

    def test_chunked_lowest_index_error(self, executor):
        def boom_on_odd(i):
            if i % 2 == 1:
                raise ValueError(str(i))
            return i

        with pytest.raises(ValueError, match="^1$"):
            executor.map(boom_on_odd, range(10), chunk_size=4)

    def test_chunked_all_tasks_run_despite_failure(self):
        executed = set()
        lock = threading.Lock()

        def record(i):
            with lock:
                executed.add(i)
            if i == 3:
                raise RuntimeError("boom")
            return i

        with pytest.raises(RuntimeError):
            ThreadExecutor(4).map(record, range(12), chunk_size=5)
        assert executed == set(range(12))

    def test_invalid_chunk_size_rejected(self, executor):
        with pytest.raises(ValueError):
            executor.map(lambda x: x, range(3), chunk_size=0)

    def test_chunked_context_propagation(self):
        var: contextvars.ContextVar[str] = contextvars.ContextVar("who")
        var.set("caller")
        seen = ThreadExecutor(4).map(lambda _: var.get(), range(8), chunk_size=3)
        assert seen == ["caller"] * 8


class TestContextPropagation:
    def test_contextvar_visible_in_tasks(self):
        var: contextvars.ContextVar[str] = contextvars.ContextVar("who")
        var.set("caller")
        seen = ThreadExecutor(4).map(lambda _: var.get(), range(8))
        assert seen == ["caller"] * 8

    def test_request_scope_charged_from_pool_threads(self, executor):
        def charge(_):
            accounting.charge_request(0.5)

        with RequestScope(label="phase") as scope:
            executor.map(charge, range(3))
        assert scope.requests == 3
        assert scope.virtual_seconds == pytest.approx(1.5)

    def test_scope_ignores_unrelated_work(self):
        with RequestScope(label="outer") as scope:
            pass
        accounting.charge_request(1.0)  # outside the scope: not counted
        assert scope.requests == 0


class TestCreateExecutor:
    def test_auto_picks_sequential_for_one_worker(self):
        assert isinstance(create_executor(1), SequentialExecutor)
        assert isinstance(create_executor(None), SequentialExecutor)

    def test_auto_picks_threads_for_many(self):
        built = create_executor(4)
        assert isinstance(built, ThreadExecutor)
        assert built.workers == 4

    def test_explicit_backends(self):
        assert isinstance(create_executor(8, backend="sequential"), SequentialExecutor)
        assert isinstance(create_executor(1, backend="thread"), ThreadExecutor)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            create_executor(0)
        with pytest.raises(ValueError):
            ThreadExecutor(0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_executor(2, backend="fork")
