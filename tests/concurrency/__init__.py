"""Concurrency suite: executor contract, determinism, thread safety."""
