"""Parallel runs reproduce sequential output bit-for-bit.

The tentpole guarantee: because every simulated-web decision (latency,
fault fate) is keyed by request content rather than arrival order, the
worker count can only change wall-clock time — never the recommended
reviewers, their scores, or the request volume.
"""

import pytest

from repro.assignment import recommend_batch
from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.scholarly.records import SourceName
from repro.scholarly.registry import ScholarlyHub, SourceBehaviour
from tests.conftest import make_manuscript

WORKER_COUNTS = (1, 2, 8)

#: Flaky-but-unthrottled behaviour: per-request fault injection on every
#: source (exercising the retry path) with no rate limiter, so request
#: counts are fully deterministic too.
FLAKY_BEHAVIOUR = {
    SourceName.DBLP: SourceBehaviour(0.03, 0.01, failure_probability=0.05),
    SourceName.GOOGLE_SCHOLAR: SourceBehaviour(0.20, 0.10, failure_probability=0.15),
    SourceName.PUBLONS: SourceBehaviour(0.10, 0.05, failure_probability=0.10),
    SourceName.ACM_DL: SourceBehaviour(0.08, 0.04, failure_probability=0.05),
    SourceName.ORCID: SourceBehaviour(0.05, 0.02, failure_probability=0.10),
    SourceName.RESEARCHER_ID: SourceBehaviour(0.12, 0.05, failure_probability=0.05),
}


def _signature(result):
    """Everything the editor sees: ranked ids, exact scores, breakdowns."""
    return [
        (s.candidate.candidate_id, s.total_score, s.breakdown.as_dict())
        for s in result.ranked
    ]


def _request_accounting(result):
    """Per-phase request counts (exact) from the phase reports."""
    return [(r.phase, r.requests, r.items_in, r.items_out) for r in result.phase_reports]


def _batch_entries(world, count=3):
    """Manuscripts by distinct unambiguous authors of the world."""
    entries = []
    for author in world.authors.values():
        if len(world.authors_by_name(author.name)) == 1:
            entries.append((f"paper-{len(entries)}", make_manuscript(world, author)))
            if len(entries) == count:
                return entries
    raise RuntimeError("world has too few unambiguous authors")


class TestExtractionDeterminism:
    def test_identical_output_across_worker_counts(self, world, manuscript):
        runs = {}
        for workers in WORKER_COUNTS:
            hub = ScholarlyHub.deploy(world)
            result = Minaret(hub, config=PipelineConfig(workers=workers)).recommend(
                manuscript
            )
            runs[workers] = (_signature(result), hub.total_requests())
        baseline = runs[WORKER_COUNTS[0]]
        assert baseline[0], "sanity: the pipeline recommended someone"
        for workers in WORKER_COUNTS[1:]:
            assert runs[workers] == baseline

    def test_phase_reports_account_requests_identically(self, world, manuscript):
        reports = {}
        for workers in (1, 8):
            hub = ScholarlyHub.deploy(world)
            result = Minaret(hub, config=PipelineConfig(workers=workers)).recommend(
                manuscript
            )
            reports[workers] = (_request_accounting(result), hub.total_requests())
            # Scoped phase accounting must cover every request issued.
            assert sum(r.requests for r in result.phase_reports) == hub.total_requests()
        assert reports[1] == reports[8]

    def test_identical_under_fault_injection(self, world, manuscript):
        runs = {}
        for workers in WORKER_COUNTS:
            hub = ScholarlyHub.deploy(world, behaviour=FLAKY_BEHAVIOUR, fault_seed=7)
            result = Minaret(hub, config=PipelineConfig(workers=workers)).recommend(
                manuscript
            )
            faults = sum(stats.faults for stats in hub.http.stats.values())
            runs[workers] = (
                _signature(result),
                hub.total_requests(),
                faults,
                hub.crawler.retries,
            )
        baseline = runs[WORKER_COUNTS[0]]
        assert baseline[2] > 0, "sanity: faults were actually injected"
        assert baseline[3] > 0, "sanity: the crawler actually retried"
        for workers in WORKER_COUNTS[1:]:
            assert runs[workers] == baseline


class TestBatchDeterminism:
    def test_batch_recommend_identical_across_worker_counts(self, world):
        entries = _batch_entries(world)
        runs = {}
        for workers in WORKER_COUNTS:
            hub = ScholarlyHub.deploy(world)
            minaret = Minaret(hub)
            results = recommend_batch(minaret, entries, workers=workers)
            runs[workers] = [
                (paper_id, _signature(result)) for paper_id, result in results
            ]
        baseline = runs[WORKER_COUNTS[0]]
        assert all(signature for _, signature in baseline)
        for workers in WORKER_COUNTS[1:]:
            assert runs[workers] == baseline

    def test_batch_under_faults_with_nested_extraction_workers(self, world):
        # Batch fan-out above, extraction fan-out below, faults injected:
        # the worst case for interleaving still reproduces sequential.
        entries = _batch_entries(world)
        runs = {}
        for workers in (1, 4):
            hub = ScholarlyHub.deploy(world, behaviour=FLAKY_BEHAVIOUR, fault_seed=3)
            minaret = Minaret(hub, config=PipelineConfig(workers=2))
            results = recommend_batch(minaret, entries, workers=workers)
            runs[workers] = (
                [(paper_id, _signature(result)) for paper_id, result in results],
                hub.total_requests(),
            )
        assert runs[4] == runs[1]

    def test_api_assign_identical_across_worker_counts(self, world):
        from repro.api.handlers import MinaretApi

        entries = _batch_entries(world)
        body = {
            "manuscripts": [
                {
                    "paper_id": paper_id,
                    "manuscript": {
                        "title": manuscript.title,
                        "keywords": list(manuscript.keywords),
                        "authors": [
                            {
                                "name": a.name,
                                "affiliation": a.affiliation,
                                "country": a.country,
                            }
                            for a in manuscript.authors
                        ],
                        "target_venue": manuscript.target_venue,
                    },
                }
                for paper_id, manuscript in entries
            ],
        }
        responses = {}
        for workers in (1, 8):
            api = MinaretApi(ScholarlyHub.deploy(world))
            response = api.handle(
                "POST", "/api/v1/assign", {**body, "workers": workers}
            )
            assert response.ok
            responses[workers] = response.body
        assert responses[8] == responses[1]
        assert responses[1]["assignments"]

    def test_api_assign_rejects_bad_workers(self, world):
        from repro.api.handlers import MinaretApi

        api = MinaretApi(ScholarlyHub.deploy(world))
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {"manuscripts": [{"paper_id": "p", "manuscript": {}}], "workers": 0},
        )
        assert response.status == 400

    def test_batch_phase_reports_not_cross_polluted(self, world):
        # Concurrent pipelines share one hub; scoped accounting must
        # attribute each run's requests to its own phase reports.
        entries = _batch_entries(world)
        hub_seq = ScholarlyHub.deploy(world)
        sequential = recommend_batch(Minaret(hub_seq), entries, workers=1)
        hub_par = ScholarlyHub.deploy(world)
        parallel = recommend_batch(Minaret(hub_par), entries, workers=8)
        for (_, seq_result), (_, par_result) in zip(sequential, parallel):
            assert _request_accounting(par_result) == _request_accounting(seq_result)
        assert hub_par.total_requests() == hub_seq.total_requests()
