"""The process backend: contract parity, fallbacks, telemetry shipping.

Every mapped function here is module-level — the pool pickles tasks by
qualified name, exactly as production callers must.  One pool is shared
across the module (spawning interpreters is the expensive part); the
contract tests are safe to interleave because a failed map leaves the
pool healthy.
"""

import pytest

from repro.concurrency import (
    EXECUTOR_BACKENDS,
    ProcessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    create_executor,
)
from repro.obs import Observability, use


def _double(x):
    return x * 2


def _boom_on_odd(i):
    if i % 2 == 1:
        raise ValueError(str(i))
    return i


def _nested_process_map(i):
    """Runs inside a pool worker: asks for another process fan-out."""
    inner = create_executor(2, backend="process")
    try:
        name = type(inner).__name__
        results = inner.map(_double, range(3))
    finally:
        inner.close()
    return (name, i, results)


def _nested_single_worker(i):
    inner = create_executor(1, backend="process")
    try:
        return (type(inner).__name__, inner.map(_double, [i]))
    finally:
        inner.close()


@pytest.fixture(scope="module")
def pool():
    executor = ProcessExecutor(2)
    yield executor
    executor.close()


class TestMapContract:
    def test_results_in_input_order(self, pool):
        assert pool.map(_double, range(8)) == [x * 2 for x in range(8)]

    def test_empty_input(self, pool):
        assert pool.map(_double, []) == []

    def test_lowest_index_exception_propagates(self, pool):
        with pytest.raises(ValueError, match="^1$"):
            pool.map(_boom_on_odd, range(6))

    def test_pool_survives_task_failure(self, pool):
        with pytest.raises(ValueError):
            pool.map(_boom_on_odd, [1])
        assert pool.map(_double, [21]) == [42]

    def test_chunked_map_keeps_order_and_errors(self, pool):
        assert pool.map(_double, range(10), chunk_size=4) == [
            x * 2 for x in range(10)
        ]
        with pytest.raises(ValueError, match="^1$"):
            pool.map(_boom_on_odd, range(10), chunk_size=3)

    def test_requires_pickling_flag(self, pool):
        assert pool.requires_pickling is True
        assert SequentialExecutor().requires_pickling is False
        assert ThreadExecutor(2).requires_pickling is False


class TestFallbacks:
    def test_unpicklable_fn_falls_back_in_process(self):
        obs = Observability()
        executor = ProcessExecutor(2)
        try:
            with use(obs):
                captured = []  # closure: unpicklable on purpose
                results = executor.map(lambda x: captured.append(x) or x, range(4))
        finally:
            executor.close()
        assert results == list(range(4))
        assert captured == list(range(4))  # ran in this interpreter
        assert (
            obs.metrics.counter_matching(
                "executor_fallback_total", {"backend": "process"}
            )
            == 1.0
        )

    def test_nested_process_request_downgrades_to_threads(self, pool):
        # Satellite regression: a two-level process map must not fork
        # pools from pool workers — the inner level runs on threads.
        outer = pool.map(_nested_process_map, range(2))
        assert outer == [("ThreadExecutor", i, [0, 2, 4]) for i in range(2)]

    def test_nested_single_worker_downgrades_to_sequential(self, pool):
        assert pool.map(_nested_single_worker, [5]) == [
            ("SequentialExecutor", [10])
        ]

    def test_nested_downgrade_counted_in_parent(self, pool):
        obs = Observability()
        with use(obs):
            pool.map(_nested_process_map, range(2))
        assert (
            obs.metrics.counter_value(
                "executor_nested_downgrades_total", backend="process"
            )
            == 2.0
        )


class TestTelemetryShipping:
    def test_child_counters_merge_into_parent(self, pool):
        obs = Observability()
        with use(obs):
            pool.map(_double, range(5))
        assert (
            obs.metrics.counter_value(
                "executor_tasks_total", backend="process", outcome="ok"
            )
            == 5.0
        )
        histogram = obs.metrics.snapshot()["histograms"][
            "executor_task_seconds"
        ]
        process_series = [
            s for s in histogram if s["labels"]["backend"] == "process"
        ]
        assert sum(s["count"] for s in process_series) == 5

    def test_child_spans_adopted_by_parent_tracer(self, pool):
        obs = Observability()
        with use(obs):
            with obs.span("caller") as caller:
                pool.map(_double, range(3))
        chunks = [s for s in obs.tracer.finished() if s.name == "executor.chunk"]
        assert chunks and all(s.trace_id == caller.trace_id for s in chunks)


class TestCreateExecutorRegistry:
    def test_registry_is_the_single_source_of_backends(self):
        assert EXECUTOR_BACKENDS == ("auto", "sequential", "thread", "process")

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_every_registered_backend_constructs(self, backend):
        built = create_executor(2, backend=backend)
        try:
            assert isinstance(built, (SequentialExecutor, ThreadExecutor, ProcessExecutor))
        finally:
            built.close()

    def test_unknown_backend_error_names_the_registry(self):
        with pytest.raises(ValueError) as excinfo:
            create_executor(2, backend="fork")
        for backend in EXECUTOR_BACKENDS:
            assert repr(backend) in str(excinfo.value)
