"""Stress tests: shared simulated-web state under real thread contention.

Each test hammers one component from 16 threads through a barrier (so
all threads contend at once) and checks *exact* counts afterwards — a
lost update anywhere shows up as an off-by-N.
"""

import threading

import pytest

from repro.web.cache import TTLCache
from repro.web.clock import SimulatedClock
from repro.web.crawler import Crawler
from repro.web.http import LatencyModel, SimulatedHttpClient
from repro.web.ratelimit import TokenBucket

THREADS = 16


def _hammer(worker):
    """Run ``worker(thread_index)`` on THREADS threads, all released at once."""
    barrier = threading.Barrier(THREADS)
    errors = []

    def run(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


class TestClock:
    def test_concurrent_advances_all_land(self):
        clock = SimulatedClock()
        _hammer(lambda i: [clock.advance(0.001) for __ in range(100)])
        assert clock.now() == pytest.approx(THREADS * 100 * 0.001)


class TestTokenBucket:
    def test_no_overdraw(self):
        clock = SimulatedClock()
        # Vanishing refill rate + frozen clock: exactly `capacity` tokens
        # exist, ever.
        bucket = TokenBucket(capacity=50, refill_rate=1e-9, clock=clock)
        taken = [0] * THREADS

        def worker(i):
            for __ in range(20):
                if bucket.try_acquire():
                    taken[i] += 1

        _hammer(worker)
        assert sum(taken) == 50
        assert bucket.available() < 1.0


class TestTTLCache:
    def test_capacity_respected_and_values_correct(self):
        clock = SimulatedClock()
        cache = TTLCache(ttl=None, capacity=32, clock=clock)

        def worker(i):
            for k in range(100):
                key = f"{i}:{k}"
                cache.put(key, (i, k))
                hit = cache.get(key)
                # Eviction may have removed it, but never corrupted it.
                assert hit is None or hit == (i, k)

        _hammer(worker)
        assert len(cache) <= 32

    def test_concurrent_same_key_puts_keep_one_value(self):
        clock = SimulatedClock()
        cache = TTLCache(ttl=None, capacity=8, clock=clock)
        _hammer(lambda i: [cache.put("shared", i) for __ in range(200)])
        assert cache.get("shared") in range(THREADS)
        assert len(cache) == 1


class TestHttpClient:
    def _client(self, trace_capacity=0):
        clock = SimulatedClock()
        http = SimulatedHttpClient(clock, trace_capacity=trace_capacity)
        http.register_host(
            "h",
            lambda req: {"q": req.param("q")},
            latency=LatencyModel(base=0.001, jitter=0.0),
        )
        return http

    def test_request_count_exact_under_contention(self):
        http = self._client()
        _hammer(lambda i: [http.get("h", "/p", {"q": f"{i}:{k}"}) for k in range(50)])
        assert http.total_requests() == THREADS * 50
        assert http.stats["h"].requests == THREADS * 50
        assert http.total_latency() == pytest.approx(THREADS * 50 * 0.001)

    def test_trace_ring_exact_under_contention(self):
        http = self._client(trace_capacity=64)
        _hammer(lambda i: [http.get("h", "/p", {"q": f"{i}:{k}"}) for k in range(50)])
        traces = http.traces()
        assert len(traces) == 64
        # Every retained trace is an internally consistent record.
        for trace in traces:
            assert trace.host == "h"
            assert trace.status == 200
            assert trace.latency == pytest.approx(0.001)


class TestCrawler:
    def test_fetch_counters_exact(self):
        http = self._make_http()
        crawler = Crawler(http)
        _hammer(lambda i: [crawler.fetch("h", "/p", {"q": f"{i}:{k}"}) for k in range(25)])
        assert crawler.fetches == THREADS * 25
        assert http.total_requests() == THREADS * 25

    def test_cache_hits_counted_exactly(self):
        http = self._make_http()
        clock = http.clock
        cache = TTLCache(ttl=None, capacity=1024, clock=clock)
        crawler = Crawler(http, cache=cache)
        crawler.fetch("h", "/p", {"q": "warm"})  # populate once
        _hammer(lambda i: [crawler.fetch("h", "/p", {"q": "warm"}) for __ in range(25)])
        assert crawler.cache_hits == THREADS * 25
        assert http.total_requests() == 1

    @staticmethod
    def _make_http():
        clock = SimulatedClock()
        http = SimulatedHttpClient(clock)
        http.register_host(
            "h",
            lambda req: {"q": req.param("q")},
            latency=LatencyModel(base=0.0, jitter=0.0),
        )
        return http
