"""Property tests for the fault policy's pure, ordinal-keyed decisions."""

import threading

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.web.faults import FaultPolicy


def reference_burst_schedule(burst_every: int, burst_length: int, n: int) -> list[bool]:
    """The original sequential process the closed form must reproduce.

    Every ``burst_every``-th arrival starts a streak of ``burst_length``
    consecutive failures; arrivals already inside a streak don't start
    new ones.
    """
    outcomes = []
    streak = 0
    for ordinal in range(1, n + 1):
        if streak > 0:
            outcomes.append(True)
            streak -= 1
        elif ordinal % burst_every == 0:
            outcomes.append(True)
            streak = burst_length - 1
        else:
            outcomes.append(False)
    return outcomes


class TestBurstClosedForm:
    @given(
        burst_every=st.integers(min_value=1, max_value=9),
        burst_length=st.integers(min_value=1, max_value=9),
        n=st.integers(min_value=1, max_value=150),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_simulation(self, burst_every, burst_length, n):
        policy = FaultPolicy(burst_every=burst_every, burst_length=burst_length)
        decided = [policy.decide(o) for o in range(1, n + 1)]
        assert decided == reference_burst_schedule(burst_every, burst_length, n)

    @given(
        burst_every=st.integers(min_value=2, max_value=9),
        burst_length=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=50, deadline=None)
    def test_failure_rate_bounded_by_schedule(self, burst_every, burst_length):
        # Over a long window the burst schedule fails at most
        # length / max(length, burst_every) of requests (plus edge slack).
        policy = FaultPolicy(burst_every=burst_every, burst_length=burst_length)
        n = 500
        failures = sum(policy.decide(o) for o in range(1, n + 1))
        period = burst_every * -(-burst_length // burst_every)
        expected = burst_length / period
        assert failures / n <= expected + burst_length / n


class TestDecisionPurity:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        probability=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ordinals=st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=1,
            max_size=60,
            unique=True,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_order_of_evaluation_is_irrelevant(self, seed, probability, ordinals):
        policy = FaultPolicy(
            failure_probability=probability, burst_every=5, burst_length=2, seed=seed
        )
        forward = {o: policy.decide(o) for o in ordinals}
        backward = {o: policy.decide(o) for o in reversed(ordinals)}
        again = {o: policy.decide(o) for o in sorted(ordinals)}
        assert forward == backward == again

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        probability=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_thread_interleaving_is_irrelevant(self, seed, probability):
        policy = FaultPolicy(failure_probability=probability, seed=seed)
        ordinals = list(range(1, 201))
        expected = [policy.decide(o) for o in ordinals]
        results = {}
        lock = threading.Lock()

        def worker(chunk):
            local = [(o, policy.decide(o)) for o in chunk]
            with lock:
                results.update(local)

        threads = [
            threading.Thread(target=worker, args=(ordinals[i::8],)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [results[o] for o in ordinals] == expected

    def test_same_policy_twice_identical(self):
        draws_a = [FaultPolicy(failure_probability=0.5, seed=9).decide(o) for o in range(1, 101)]
        draws_b = [FaultPolicy(failure_probability=0.5, seed=9).decide(o) for o in range(1, 101)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_stateful_should_fail_matches_decide_arrival_order(self):
        stateful = FaultPolicy(failure_probability=0.3, burst_every=4, seed=2)
        pure = FaultPolicy(failure_probability=0.3, burst_every=4, seed=2)
        arrivals = [stateful.should_fail() for __ in range(50)]
        assert arrivals == [pure.decide(o) for o in range(1, 51)]

    def test_ordinal_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPolicy().decide(0)
