"""End-to-end integration: every subsystem in one scenario.

Covers the full life of a deployment: generate a world, freeze it to a
dataset, reload it, stand up the simulated scholarly web, recommend
through the REST API, batch-assign a special issue, simulate the review
process, evolve the world and observe freshness — the whole system
working together.
"""

import pytest

from repro.assignment import (
    assess_assignment,
    optimal_assignment,
    problem_from_results,
)
from repro.baselines.evaluation import CandidateResolver
from repro.api.handlers import MinaretApi
from repro.core.models import Manuscript, ManuscriptAuthor
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from repro.simulation import ReviewProcessSimulator
from repro.world.config import WorldConfig
from repro.world.dynamics import WorldDynamics
from repro.world.generator import generate_world
from repro.world.io import load_world, save_world


@pytest.fixture(scope="module")
def frozen_world(tmp_path_factory):
    original = generate_world(WorldConfig(author_count=150, seed=77))
    path = tmp_path_factory.mktemp("dataset") / "world.json"
    save_world(original, path)
    return load_world(path)


def pick_manuscripts(world, count):
    picks = []
    for author in world.authors.values():
        if len(picks) >= count:
            break
        if len(world.authors_by_name(author.name)) > 1:
            continue
        topics = sorted(author.topic_expertise)[:3]
        picks.append(
            (
                Manuscript(
                    title=f"Integration Paper {len(picks)}",
                    keywords=tuple(world.ontology.topic(t).label for t in topics),
                    authors=(
                        ManuscriptAuthor(
                            author.name, author.affiliations[-1].institution
                        ),
                    ),
                    target_venue=world.journal_venues()[0].name,
                ),
                author,
            )
        )
    return picks


class TestFullScenario:
    def test_frozen_dataset_end_to_end(self, frozen_world):
        hub = ScholarlyHub.deploy(frozen_world)
        api = MinaretApi(hub)
        pairs = pick_manuscripts(frozen_world, 3)

        # 1. Recommend through the REST API.
        manuscript, author = pairs[0]
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": {
                    "title": manuscript.title,
                    "keywords": list(manuscript.keywords),
                    "authors": [
                        {
                            "name": a.name,
                            "affiliation": a.affiliation,
                        }
                        for a in manuscript.authors
                    ],
                },
                "top_k": 5,
            },
        )
        assert response.ok
        assert response.body["recommendations"]

        # 2. Batch-assign across the three manuscripts.
        minaret = Minaret(hub)
        results = [
            (f"paper-{i}", minaret.recommend(m)) for i, (m, __) in enumerate(pairs)
        ]
        problem = problem_from_results(
            results, reviewers_per_paper=2, max_load=2, top_k=10
        )
        assignment = optimal_assignment(problem)
        quality = assess_assignment(problem, assignment)
        assert quality.max_load <= 2

        # 3. Simulate the review process for the first paper.
        resolver = CandidateResolver(hub)
        ranked = resolver.world_ids(
            [s.candidate.candidate_id for s in results[0][1].ranked]
        )
        process = ReviewProcessSimulator(frozen_world, seed=3).run(
            ranked, sorted(author.topic_expertise)[:3]
        )
        assert process.invitations_sent() > 0

        # 4. Evolve the world and confirm the services re-index.
        dynamics = WorldDynamics(frozen_world, seed=9)
        target = sorted(frozen_world.authors)[0]
        new_pubs = dynamics.publish(target, "databases", 2020, count=2)
        hub.refresh_services()
        pid = hub.dblp_service.pid_of(target)
        page = hub.dblp.author_profile(pid)
        assert set(new_pubs) <= set(page.publication_ids)

    def test_api_and_direct_pipeline_agree(self, frozen_world):
        """The REST facade must return exactly the pipeline's answer."""
        hub_api = ScholarlyHub.deploy(frozen_world)
        hub_direct = ScholarlyHub.deploy(frozen_world)
        manuscript, __ = pick_manuscripts(frozen_world, 1)[0]
        api = MinaretApi(hub_api)
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": {
                    "title": manuscript.title,
                    "keywords": list(manuscript.keywords),
                    "authors": [
                        {"name": a.name, "affiliation": a.affiliation}
                        for a in manuscript.authors
                    ],
                    "target_venue": manuscript.target_venue,
                }
            },
        )
        direct = Minaret(hub_direct).recommend(manuscript)
        api_ids = [r["candidate_id"] for r in response.body["recommendations"]]
        direct_ids = [s.candidate.candidate_id for s in direct.ranked]
        assert api_ids == direct_ids
