"""Tests for the review-process simulator."""

import pytest

from repro.simulation.process import (
    ProcessConfig,
    Response,
    ReviewProcessSimulator,
)


def ranked_authors(world, count=20):
    """A deterministic slice of author ids."""
    return sorted(world.authors)[:count]


def topics_of(world, author_id):
    return sorted(world.authors[author_id].topic_expertise)[:2]


@pytest.fixture(scope="module")
def simulator(world):
    return ReviewProcessSimulator(world, seed=7)


class TestConfigValidation:
    def test_zero_reviews_rejected(self):
        with pytest.raises(ValueError):
            ProcessConfig(reviews_needed=0)

    def test_bad_accept_base_rejected(self):
        with pytest.raises(ValueError):
            ProcessConfig(accept_base=0.0)
        with pytest.raises(ValueError):
            ProcessConfig(accept_base=1.5)


class TestProcess:
    def test_deterministic(self, world):
        ids = ranked_authors(world)
        topics = topics_of(world, ids[0])
        a = ReviewProcessSimulator(world, seed=3).run(ids, topics)
        b = ReviewProcessSimulator(world, seed=3).run(ids, topics)
        assert [o.author_id for o in a.outcomes] == [o.author_id for o in b.outcomes]
        assert a.turnaround_days == b.turnaround_days

    def test_different_seeds_differ(self, world):
        ids = ranked_authors(world)
        topics = topics_of(world, ids[0])
        a = ReviewProcessSimulator(world, seed=1).run(ids, topics)
        b = ReviewProcessSimulator(world, seed=2).run(ids, topics)
        # Either outcomes or timing must differ somewhere.
        assert (
            a.turnaround_days != b.turnaround_days
            or [o.response for o in a.outcomes] != [o.response for o in b.outcomes]
        )

    def test_completes_with_long_list(self, simulator, world):
        ids = ranked_authors(world, count=40)
        result = simulator.run(ids, topics_of(world, ids[0]))
        assert result.completed
        assert len(result.accepted()) == 3
        assert result.turnaround_days > 0

    def test_incomplete_with_short_list(self, world):
        # A single uninterested candidate cannot fill three slots.
        config = ProcessConfig(reviews_needed=3)
        simulator = ReviewProcessSimulator(world, config=config, seed=1)
        ids = ranked_authors(world, count=1)
        result = simulator.run(ids, topics_of(world, ids[0]))
        assert not result.completed
        assert len(result.accepted()) < 3

    def test_empty_list(self, simulator, world):
        result = simulator.run([], ["databases"])
        assert not result.completed
        assert result.invitations_sent() == 0

    def test_outcomes_are_chronological(self, simulator, world):
        ids = ranked_authors(world, count=40)
        result = simulator.run(ids, topics_of(world, ids[0]))
        invited_days = [o.invited_on_day for o in result.outcomes]
        assert invited_days == sorted(invited_days)
        for outcome in result.outcomes:
            assert outcome.responded_on_day >= outcome.invited_on_day
            if outcome.response is Response.ACCEPTED:
                assert outcome.review_completed_on_day > outcome.responded_on_day

    def test_turnaround_is_last_review_day(self, simulator, world):
        ids = ranked_authors(world, count=40)
        result = simulator.run(ids, topics_of(world, ids[0]))
        assert result.turnaround_days == max(
            o.review_completed_on_day for o in result.accepted()
        )

    def test_quality_in_range(self, simulator, world):
        ids = ranked_authors(world, count=40)
        result = simulator.run(ids, topics_of(world, ids[0]))
        assert 0.0 <= result.mean_review_quality() <= 1.0

    def test_mean_quality_empty(self, simulator):
        from repro.simulation.process import ProcessResult

        assert ProcessResult().mean_review_quality() == 0.0


class TestBehaviouralShape:
    def test_responsive_population_faster(self, world):
        """Ranking by true responsiveness must reduce expected turnaround."""
        by_responsiveness = sorted(
            world.authors, key=lambda a: -world.authors[a].responsiveness
        )
        reversed_order = list(reversed(by_responsiveness))
        topics = topics_of(world, by_responsiveness[0])
        fast_days, slow_days = [], []
        for seed in range(8):
            simulator = ReviewProcessSimulator(world, seed=seed)
            fast_days.append(simulator.run(by_responsiveness[:30], topics).turnaround_days)
            slow_days.append(simulator.run(reversed_order[:30], topics).turnaround_days)
        assert sum(fast_days) / len(fast_days) < sum(slow_days) / len(slow_days)

    def test_relevant_reviewers_accept_more(self, world):
        """On-topic lists need fewer invitations than off-topic ones."""
        author = next(iter(world.authors.values()))
        topics = sorted(author.topic_expertise)[:2]
        on_topic = [
            a.author_id
            for a in world.authors.values()
            if set(topics) & a.topics()
        ][:30]
        off_topic = [
            a.author_id
            for a in world.authors.values()
            if not (set(topics) & a.topics())
        ][:30]
        if len(on_topic) < 10 or len(off_topic) < 10:
            pytest.skip("world too small for this comparison")
        on_invites, off_invites = [], []
        for seed in range(8):
            simulator = ReviewProcessSimulator(world, seed=seed)
            on_invites.append(simulator.run(on_topic, topics).invitations_sent())
            off_invites.append(simulator.run(off_topic, topics).invitations_sent())
        assert sum(on_invites) <= sum(off_invites)
