"""Tests for author track-record extraction."""

import pytest

from repro.core.identity import IdentityVerifier
from repro.core.models import ManuscriptAuthor
from repro.core.track_record import build_track_record
from repro.scholarly.records import SourceName


@pytest.fixture()
def verified(hub, world):
    author = next(
        a
        for a in world.authors.values()
        if len(world.authors_by_name(a.name)) == 1
        and world.publications_by_author.get(a.author_id)
    )
    verifier = IdentityVerifier(hub)
    result = verifier.verify(
        ManuscriptAuthor(author.name, author.affiliations[-1].institution)
    )
    return author, result


class TestTrackRecord:
    def test_publication_counts_match_world(self, hub, world, verified):
        author, verified_author = verified
        record = build_track_record(verified_author, hub)
        assert record.total_publications == len(
            world.publications_by_author[author.author_id]
        )

    def test_per_year_sums_to_total(self, hub, verified):
        __, verified_author = verified
        record = build_track_record(verified_author, hub)
        assert sum(record.publications_per_year.values()) == record.total_publications

    def test_active_span(self, hub, world, verified):
        author, verified_author = verified
        record = build_track_record(verified_author, hub)
        pubs = world.author_publications(author.author_id)
        assert record.first_active_year == min(p.year for p in pubs)
        assert record.last_active_year == max(p.year for p in pubs)
        assert record.active_span_years() >= 1

    def test_coauthor_network_matches_world(self, hub, world, verified):
        author, verified_author = verified
        record = build_track_record(verified_author, hub)
        expected = {
            hub.dblp_service.pid_of(c)
            for c in world.coauthors.get(author.author_id, set())
        }
        assert set(record.coauthor_pids) == expected

    def test_affiliations_from_profile(self, hub, verified):
        __, verified_author = verified
        record = build_track_record(verified_author, hub)
        assert record.affiliations == verified_author.profile.affiliations

    def test_review_count_when_publons_covered(self, hub, world, verified):
        author, verified_author = verified
        record = build_track_record(verified_author, hub)
        if SourceName.PUBLONS in author.covered_by:
            assert record.review_count == len(world.author_reviews(author.author_id))
        else:
            assert record.review_count == 0

    def test_publications_since(self, hub, verified):
        __, verified_author = verified
        record = build_track_record(verified_author, hub)
        assert record.publications_since(0) == record.total_publications
        assert record.publications_since(3000) == 0

    def test_top_venues(self, hub, verified):
        __, verified_author = verified
        record = build_track_record(verified_author, hub)
        top = record.top_venues(2)
        assert len(top) <= 2
        if len(top) == 2:
            assert top[0][1] >= top[1][1]

    def test_empty_career(self, hub):
        from repro.core.models import VerifiedAuthor
        from repro.scholarly.records import MergedProfile

        hollow = VerifiedAuthor(
            submitted=ManuscriptAuthor("Nobody"),
            profile=MergedProfile(canonical_name="Nobody", source_ids=()),
        )
        record = build_track_record(hollow, hub)
        assert record.total_publications == 0
        assert record.active_span_years() == 0
        assert record.first_active_year is None
