"""Tests for author identity verification (the Fig. 4 machinery)."""

import pytest

from repro.core.errors import AmbiguousIdentityError, IdentityVerificationError
from repro.core.identity import (
    AffiliationEvidenceResolver,
    CallbackResolver,
    ChainResolver,
    FirstMatchResolver,
    IdentityResolver,
    IdentityVerifier,
)
from repro.core.models import IdentityMatch, ManuscriptAuthor
from repro.scholarly.records import SourceName


def unique_author(world):
    for author in world.authors.values():
        if len(world.authors_by_name(author.name)) == 1:
            return author
    raise RuntimeError("no unambiguous author")


def colliding_authors(world):
    for author in world.authors.values():
        group = world.authors_by_name(author.name)
        if len(group) > 1:
            return group
    raise RuntimeError("no collision group")


def matches_for(names_and_notes):
    return [
        IdentityMatch(
            source=SourceName.DBLP,
            source_author_id=f"pid-{i}",
            name=name,
            evidence=note,
        )
        for i, (name, note) in enumerate(names_and_notes)
    ]


class TestResolvers:
    def test_strict_base_resolver_declines(self):
        resolver = IdentityResolver()
        author = ManuscriptAuthor("Lei Zhou")
        assert resolver.resolve(author, matches_for([("Lei Zhou", "")])) is None

    def test_first_match_resolver(self):
        resolver = FirstMatchResolver()
        matches = matches_for([("Lei Zhou", ""), ("Lei Zhou", "")])
        assert resolver.resolve(ManuscriptAuthor("Lei Zhou"), matches) is matches[0]

    def test_first_match_empty(self):
        assert FirstMatchResolver().resolve(ManuscriptAuthor("X"), []) is None

    def test_affiliation_resolver_picks_matching_note(self):
        resolver = AffiliationEvidenceResolver()
        matches = matches_for(
            [("Lei Zhou", "Tsinghua University"), ("Lei Zhou", "MIT")]
        )
        author = ManuscriptAuthor("Lei Zhou", affiliation="Tsinghua University")
        assert resolver.resolve(author, matches) is matches[0]

    def test_affiliation_resolver_declines_without_evidence(self):
        resolver = AffiliationEvidenceResolver()
        matches = matches_for([("Lei Zhou", "A"), ("Lei Zhou", "B")])
        author = ManuscriptAuthor("Lei Zhou", affiliation="Somewhere Else Entirely")
        assert resolver.resolve(author, matches) is None

    def test_affiliation_resolver_declines_without_affiliation(self):
        resolver = AffiliationEvidenceResolver()
        matches = matches_for([("Lei Zhou", "A")])
        assert resolver.resolve(ManuscriptAuthor("Lei Zhou"), matches) is None

    def test_affiliation_resolver_invalid_threshold(self):
        with pytest.raises(ValueError):
            AffiliationEvidenceResolver(min_overlap=2.0)

    def test_callback_resolver_delegates(self):
        picked = []

        def choose(author, matches):
            picked.append(author.name)
            return matches[-1]

        resolver = CallbackResolver(choose)
        matches = matches_for([("A B", ""), ("A B", "")])
        assert resolver.resolve(ManuscriptAuthor("A B"), matches) is matches[-1]
        assert picked == ["A B"]

    def test_chain_resolver_falls_through(self):
        chain = ChainResolver([IdentityResolver(), FirstMatchResolver()])
        matches = matches_for([("X Y", "")])
        assert chain.resolve(ManuscriptAuthor("X Y"), matches) is matches[0]


class TestVerifier:
    def test_unique_author_verifies(self, hub, world):
        author = unique_author(world)
        affiliation = author.affiliations[-1]
        verifier = IdentityVerifier(hub)
        verified = verifier.verify(
            ManuscriptAuthor(author.name, affiliation.institution)
        )
        assert not verified.ambiguous
        assert verified.profile.source_id(SourceName.DBLP) is not None
        expected_pubs = set(world.publications_by_author.get(author.author_id, []))
        assert expected_pubs <= set(verified.profile.publication_ids)

    def test_unknown_author_raises(self, hub):
        verifier = IdentityVerifier(hub)
        with pytest.raises(IdentityVerificationError):
            verifier.verify(ManuscriptAuthor("Nobody Anywhere"))

    def test_collision_without_evidence_raises(self, hub, world):
        group = colliding_authors(world)
        verifier = IdentityVerifier(hub)
        # No affiliation provided -> the default resolver cannot decide.
        with pytest.raises(AmbiguousIdentityError) as exc_info:
            verifier.verify(ManuscriptAuthor(group[0].name))
        assert exc_info.value.match_count == len(group)

    def test_collision_resolved_by_affiliation(self, hub, world):
        group = colliding_authors(world)
        target = group[0]
        affiliation = target.affiliations[-1]
        # Ensure the two collision members differ in current institution;
        # otherwise evidence genuinely cannot decide.
        others = [a.affiliations[-1].institution for a in group[1:]]
        if affiliation.institution in others:
            pytest.skip("collision group shares an institution")
        verifier = IdentityVerifier(hub)
        verified = verifier.verify(
            ManuscriptAuthor(target.name, affiliation.institution)
        )
        assert verified.ambiguous
        expected_pubs = set(world.publications_by_author.get(target.author_id, []))
        assert expected_pubs == set(
            pid
            for pid in verified.profile.publication_ids
            if pid in expected_pubs
        ) or expected_pubs <= set(verified.profile.publication_ids)

    def test_collision_with_callback_resolver(self, hub, world):
        group = colliding_authors(world)
        verifier = IdentityVerifier(
            hub, resolver=CallbackResolver(lambda a, m: m[1])
        )
        verified = verifier.verify(ManuscriptAuthor(group[0].name))
        assert verified.ambiguous
        assert len(verified.candidates_considered) == len(group)

    def test_verify_all_preserves_order(self, hub, world):
        authors = [a for a in world.authors.values() if len(world.authors_by_name(a.name)) == 1][:3]
        verifier = IdentityVerifier(hub)
        submitted = tuple(
            ManuscriptAuthor(a.name, a.affiliations[-1].institution) for a in authors
        )
        verified = verifier.verify_all(submitted)
        assert [v.submitted.name for v in verified] == [a.name for a in authors]

    def test_merged_profile_has_scholar_metrics_when_covered(self, hub, world):
        author = next(
            a
            for a in world.authors.values()
            if len(world.authors_by_name(a.name)) == 1
            and SourceName.GOOGLE_SCHOLAR in a.covered_by
            and world.publications_by_author.get(a.author_id)
        )
        verifier = IdentityVerifier(hub)
        verified = verifier.verify(
            ManuscriptAuthor(author.name, author.affiliations[-1].institution)
        )
        assert verified.profile.source_id(SourceName.GOOGLE_SCHOLAR) is not None
        assert verified.profile.metrics.citations > 0

    def test_orcid_affiliations_linked(self, hub, world):
        author = next(
            (
                a
                for a in world.authors.values()
                if len(world.authors_by_name(a.name)) == 1
                and SourceName.ORCID in a.covered_by
                and world.publications_by_author.get(a.author_id)
            ),
            None,
        )
        if author is None:
            pytest.skip("no suitable author")
        verifier = IdentityVerifier(hub)
        verified = verifier.verify(
            ManuscriptAuthor(author.name, author.affiliations[-1].institution)
        )
        assert verified.profile.affiliations == author.affiliations
