"""Property-based invariants of the whole pipeline.

These hold for *any* editor configuration — they are the contracts the
demo UI relies on regardless of how the knobs are set.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import (
    AffiliationCoiLevel,
    CoiConfig,
    FilterConfig,
    PipelineConfig,
    RankingWeights,
)
from repro.core.pipeline import Minaret
from repro.ontology.expansion import ExpansionConfig
from repro.scholarly.registry import ScholarlyHub

weight_values = st.floats(0.0, 1.0)


@st.composite
def pipeline_configs(draw):
    raw_weights = [draw(weight_values) for __ in range(6)]
    if sum(raw_weights) == 0:
        weights = RankingWeights()
    else:
        weights = RankingWeights(*raw_weights)
    return PipelineConfig(
        expansion=ExpansionConfig(
            max_depth=draw(st.integers(0, 3)),
            min_score=draw(st.sampled_from([0.3, 0.5, 0.7, 0.9])),
        ),
        filters=FilterConfig(
            coi=CoiConfig(
                check_coauthorship=draw(st.booleans()),
                affiliation_level=draw(st.sampled_from(list(AffiliationCoiLevel))),
                check_mentorship=draw(st.booleans()),
            ),
            min_keyword_score=draw(st.sampled_from([0.3, 0.5, 0.8])),
        ),
        weights=weights,
        max_candidates=draw(st.integers(3, 25)),
    )


@pytest.fixture(scope="module")
def module_hub(world):
    return ScholarlyHub.deploy(world)


class TestPipelineInvariants:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(config=pipeline_configs())
    def test_structural_invariants(self, module_hub, world, manuscript, config):
        result = Minaret(module_hub, config=config).recommend(manuscript)

        # Candidate budget respected.
        assert len(result.candidates) <= config.max_candidates

        # Every candidate got exactly one filter decision.
        assert len(result.filter_decisions) == len(result.candidates)

        # Ranked = kept, no duplicates, sorted by score.
        kept_ids = {
            d.candidate_id for d in result.filter_decisions if d.kept
        }
        ranked_ids = [s.candidate.candidate_id for s in result.ranked]
        assert set(ranked_ids) == kept_ids
        assert len(ranked_ids) == len(set(ranked_ids))
        scores = [s.total_score for s in result.ranked]
        assert scores == sorted(scores, reverse=True)

        # All scores and components bounded.
        for scored in result.ranked:
            assert 0.0 <= scored.total_score <= 1.0
            for value in scored.breakdown.as_dict().values():
                assert 0.0 <= value <= 1.0

        # Rejections always carry reasons.
        assert all(d.reasons for d in result.rejected())

        # Expansion threshold respected (unknown keywords pass at 1.0).
        for expansion in result.expanded_keywords:
            assert expansion.score >= config.expansion.min_score or (
                expansion.topic_id == ""
            )

        # The submitting author never reviews their own paper.
        author_names = {a.profile.canonical_name for a in result.verified_authors}
        assert not (author_names & {s.name for s in result.ranked})

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(config=pipeline_configs())
    def test_coauthorship_screening_invariant(
        self, module_hub, world, manuscript, config
    ):
        """With co-authorship checking on (no window), no recommended
        reviewer shares a publication with the submitting author."""
        if not config.filters.coi.check_coauthorship:
            config = PipelineConfig(
                expansion=config.expansion,
                filters=FilterConfig(
                    coi=CoiConfig(check_coauthorship=True),
                    min_keyword_score=config.filters.min_keyword_score,
                ),
                weights=config.weights,
                max_candidates=config.max_candidates,
            )
        result = Minaret(module_hub, config=config).recommend(manuscript)
        author_pubs = set()
        for verified in result.verified_authors:
            author_pubs.update(verified.profile.publication_ids)
        for scored in result.ranked:
            shared = author_pubs & set(scored.candidate.profile.publication_ids)
            assert not shared
