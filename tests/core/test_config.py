"""Tests for pipeline configuration objects."""

import pytest

from repro.core.config import (
    AffiliationCoiLevel,
    CoiConfig,
    ExpertiseConstraints,
    FilterConfig,
    ImpactMetric,
    PipelineConfig,
    RankingWeights,
)


class TestRankingWeights:
    def test_defaults_valid(self):
        weights = RankingWeights()
        assert sum(weights.as_dict().values()) == pytest.approx(1.0)

    def test_normalized_sums_to_one(self):
        weights = RankingWeights(
            topic_coverage=2.0,
            scientific_impact=1.0,
            recency=1.0,
            review_experience=0.0,
            outlet_familiarity=0.0,
        )
        normalized = weights.normalized()
        assert sum(normalized.values()) == pytest.approx(1.0)
        assert normalized["topic_coverage"] == pytest.approx(0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            RankingWeights(topic_coverage=-0.1)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            RankingWeights(0.0, 0.0, 0.0, 0.0, 0.0)

    def test_without_zeroes_one_component(self):
        ablated = RankingWeights().without("recency")
        assert ablated.recency == 0.0
        assert ablated.topic_coverage == RankingWeights().topic_coverage

    def test_without_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            RankingWeights().without("charisma")


class TestExpertiseConstraints:
    def test_trivial_detection(self):
        assert ExpertiseConstraints().is_trivial()
        assert not ExpertiseConstraints(min_citations=10).is_trivial()


class TestFilterConfig:
    def test_defaults(self):
        config = FilterConfig()
        assert config.min_keyword_score == 0.5
        assert config.coi.check_coauthorship

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            FilterConfig(min_keyword_score=1.5)

    def test_pc_members_tuple(self):
        config = FilterConfig(pc_members=("Ada Lovelace",))
        assert config.pc_members == ("Ada Lovelace",)


class TestPipelineConfig:
    def test_defaults(self):
        config = PipelineConfig()
        assert config.impact_metric is ImpactMetric.H_INDEX
        assert config.max_candidates == 50

    def test_bad_candidates_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(max_candidates=0)

    def test_bad_retrieval_limit_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(per_keyword_retrieval_limit=0)

    def test_bad_half_life_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(recency_half_life_years=0)


class TestEnums:
    def test_affiliation_levels(self):
        assert AffiliationCoiLevel("country") is AffiliationCoiLevel.COUNTRY

    def test_impact_metric_values(self):
        assert ImpactMetric("citations") is ImpactMetric.CITATIONS

    def test_coi_config_defaults(self):
        config = CoiConfig()
        assert config.affiliation_level is AffiliationCoiLevel.UNIVERSITY
        assert config.coauthorship_lookback_years is None
