"""Integration tests for the full three-phase pipeline."""

import pytest

from repro.core.config import (
    AffiliationCoiLevel,
    CoiConfig,
    FilterConfig,
    PipelineConfig,
    RankingWeights,
)
from repro.core.models import Manuscript, ManuscriptAuthor
from repro.core.pipeline import Minaret
from repro.ontology.expansion import ExpansionConfig

PHASES = [
    "verify_authors",
    "crawl_outlet",
    "expand_keywords",
    "extract_candidates",
    "filter",
    "rank",
]


@pytest.fixture()
def result(hub, manuscript):
    return Minaret(hub).recommend(manuscript)


class TestWorkflow:
    def test_all_phases_reported_in_order(self, result):
        assert [r.phase for r in result.phase_reports] == PHASES

    def test_phase_accounting(self, result):
        extract = result.phase("extract_candidates")
        assert extract.requests > 0
        assert extract.virtual_seconds > 0
        # Filtering and ranking are local computations.
        assert result.phase("filter").requests == 0
        assert result.phase("rank").requests == 0

    def test_expansion_widens_keywords(self, result, manuscript):
        assert len(result.expanded_keywords) > len(manuscript.keywords)

    def test_candidates_extracted(self, result):
        assert result.candidates

    def test_ranked_is_subset_of_candidates(self, result):
        candidate_ids = {c.candidate_id for c in result.candidates}
        assert all(s.candidate.candidate_id in candidate_ids for s in result.ranked)

    def test_rejections_have_reasons(self, result):
        for decision in result.rejected():
            assert decision.reasons

    def test_kept_plus_rejected_equals_candidates(self, result):
        assert len(result.filter_decisions) == len(result.candidates)
        kept = sum(1 for d in result.filter_decisions if d.kept)
        assert kept == len(result.ranked)

    def test_scores_sorted(self, result):
        scores = [s.total_score for s in result.ranked]
        assert scores == sorted(scores, reverse=True)

    def test_manuscript_author_not_recommended(self, result, manuscript, world):
        # The submitting author's name must never appear in the output.
        author_names = {a.name for a in manuscript.authors}
        recommended = {s.name for s in result.ranked}
        assert not (author_names & recommended)


class TestDeterminism:
    def test_same_world_same_result(self, world, manuscript):
        from repro.scholarly.registry import ScholarlyHub

        first = Minaret(ScholarlyHub.deploy(world)).recommend(manuscript)
        second = Minaret(ScholarlyHub.deploy(world)).recommend(manuscript)
        assert [s.candidate.candidate_id for s in first.ranked] == [
            s.candidate.candidate_id for s in second.ranked
        ]
        assert [s.total_score for s in first.ranked] == [
            s.total_score for s in second.ranked
        ]


class TestConfiguration:
    def test_max_candidates_respected(self, hub, manuscript):
        config = PipelineConfig(max_candidates=7)
        result = Minaret(hub, config=config).recommend(manuscript)
        assert len(result.candidates) <= 7

    def test_no_expansion_mode(self, hub, manuscript):
        config = PipelineConfig(expansion=ExpansionConfig(max_depth=0))
        result = Minaret(hub, config=config).recommend(manuscript)
        assert len(result.expanded_keywords) == len(manuscript.keywords)

    def test_coi_disabled_keeps_more(self, world, manuscript):
        from repro.scholarly.registry import ScholarlyHub

        strict = Minaret(ScholarlyHub.deploy(world)).recommend(manuscript)
        lax_config = PipelineConfig(
            filters=FilterConfig(
                coi=CoiConfig(
                    check_coauthorship=False,
                    affiliation_level=AffiliationCoiLevel.NONE,
                )
            )
        )
        lax = Minaret(ScholarlyHub.deploy(world), config=lax_config).recommend(
            manuscript
        )
        assert len(lax.ranked) >= len(strict.ranked)

    def test_weights_affect_order(self, world, manuscript):
        from repro.scholarly.registry import ScholarlyHub

        coverage = PipelineConfig(weights=RankingWeights(1.0, 0.0, 0.0, 0.0, 0.0))
        experience = PipelineConfig(weights=RankingWeights(0.0, 0.0, 0.0, 1.0, 0.0))
        by_coverage = Minaret(
            ScholarlyHub.deploy(world), config=coverage
        ).recommend(manuscript)
        by_experience = Minaret(
            ScholarlyHub.deploy(world), config=experience
        ).recommend(manuscript)
        ids_coverage = [s.candidate.candidate_id for s in by_coverage.ranked]
        ids_experience = [s.candidate.candidate_id for s in by_experience.ranked]
        assert set(ids_coverage) == set(ids_experience)
        if len(ids_coverage) > 3:
            assert ids_coverage != ids_experience

    def test_expander_exposed(self, hub):
        minaret = Minaret(hub)
        assert minaret.expander.expand(["RDF"])
        assert minaret.config.max_candidates == 50
