"""Tests for the filtering phase."""

import pytest

from repro.core.config import (
    AffiliationCoiLevel,
    CoiConfig,
    ExpertiseConstraints,
    FilterConfig,
)
from repro.core.filtering import FilterPhase
from repro.core.models import Candidate, ManuscriptAuthor, VerifiedAuthor
from repro.scholarly.records import MergedProfile, Metrics

NO_COI = CoiConfig(
    check_coauthorship=False, affiliation_level=AffiliationCoiLevel.NONE
)


def make_candidate(
    candidate_id="c1",
    name="Reviewer R",
    keyword_score=0.9,
    citations=100,
    h_index=10,
    review_count=5,
    pub_ids=(),
):
    return Candidate(
        candidate_id=candidate_id,
        name=name,
        profile=MergedProfile(
            canonical_name=name,
            source_ids=(),
            publication_ids=tuple(pub_ids),
            metrics=Metrics(citations=citations, h_index=h_index),
        ),
        keyword_match_score=keyword_score,
        review_count=review_count,
    )


def make_author(pub_ids=()):
    return VerifiedAuthor(
        submitted=ManuscriptAuthor("Author A"),
        profile=MergedProfile(
            canonical_name="Author A",
            source_ids=(),
            publication_ids=tuple(pub_ids),
        ),
    )


class TestKeywordThreshold:
    def test_below_threshold_rejected(self):
        phase = FilterPhase(FilterConfig(coi=NO_COI, min_keyword_score=0.8))
        kept, decisions = phase.apply(
            [make_candidate(keyword_score=0.6)], [make_author()]
        )
        assert kept == []
        assert "below threshold" in decisions[0].reasons[0]

    def test_at_threshold_kept(self):
        phase = FilterPhase(FilterConfig(coi=NO_COI, min_keyword_score=0.8))
        kept, __ = phase.apply([make_candidate(keyword_score=0.8)], [make_author()])
        assert len(kept) == 1


class TestExpertiseConstraints:
    def test_citation_floor(self):
        config = FilterConfig(
            coi=NO_COI, constraints=ExpertiseConstraints(min_citations=500)
        )
        kept, decisions = phase_apply(config, make_candidate(citations=100))
        assert kept == []
        assert any("citations" in r for r in decisions[0].reasons)

    def test_citation_ceiling(self):
        config = FilterConfig(
            coi=NO_COI, constraints=ExpertiseConstraints(max_citations=50)
        )
        kept, decisions = phase_apply(config, make_candidate(citations=100))
        assert kept == []
        assert any("above maximum" in r for r in decisions[0].reasons)

    def test_h_index_range(self):
        config = FilterConfig(
            coi=NO_COI,
            constraints=ExpertiseConstraints(min_h_index=5, max_h_index=20),
        )
        kept, __ = phase_apply(config, make_candidate(h_index=10))
        assert len(kept) == 1

    def test_review_minimum(self):
        config = FilterConfig(
            coi=NO_COI, constraints=ExpertiseConstraints(min_reviews=10)
        )
        kept, decisions = phase_apply(config, make_candidate(review_count=3))
        assert kept == []
        assert any("review_count" in r for r in decisions[0].reasons)

    def test_all_constraints_satisfied(self):
        config = FilterConfig(
            coi=NO_COI,
            constraints=ExpertiseConstraints(
                min_citations=50, min_h_index=5, min_reviews=1
            ),
        )
        kept, __ = phase_apply(config, make_candidate())
        assert len(kept) == 1


class TestCoiIntegration:
    def test_coauthor_rejected_with_reason_prefix(self):
        phase = FilterPhase(FilterConfig())
        kept, decisions = phase.apply(
            [make_candidate(pub_ids=("p1",))], [make_author(pub_ids=("p1",))]
        )
        assert kept == []
        assert decisions[0].reasons[0].startswith("COI:")


class TestPcMode:
    def test_non_member_rejected(self):
        config = FilterConfig(coi=NO_COI, pc_members=("Someone Else",))
        kept, decisions = phase_apply(config, make_candidate(name="Reviewer R"))
        assert kept == []
        assert "programme committee" in decisions[0].reasons[0]

    def test_member_kept(self):
        config = FilterConfig(coi=NO_COI, pc_members=("Reviewer R",))
        kept, __ = phase_apply(config, make_candidate(name="Reviewer R"))
        assert len(kept) == 1

    def test_membership_is_name_normalized(self):
        config = FilterConfig(coi=NO_COI, pc_members=("reviewer   r.",))
        kept, __ = phase_apply(config, make_candidate(name="Reviewer R"))
        assert len(kept) == 1


class TestDecisions:
    def test_every_candidate_gets_a_decision(self):
        phase = FilterPhase(FilterConfig(coi=NO_COI))
        candidates = [make_candidate(f"c{i}") for i in range(5)]
        kept, decisions = phase.apply(candidates, [make_author()])
        assert len(decisions) == 5
        assert all(d.kept for d in decisions)

    def test_multiple_reasons_accumulate(self):
        config = FilterConfig(
            min_keyword_score=0.95,
            constraints=ExpertiseConstraints(min_citations=10_000),
        )
        phase = FilterPhase(config)
        kept, decisions = phase.apply(
            [make_candidate(keyword_score=0.5, pub_ids=("p1",))],
            [make_author(pub_ids=("p1",))],
        )
        assert kept == []
        assert len(decisions[0].reasons) >= 3

    def test_order_preserved(self):
        phase = FilterPhase(FilterConfig(coi=NO_COI))
        candidates = [make_candidate(f"c{i}") for i in range(4)]
        kept, __ = phase.apply(candidates, [make_author()])
        assert [c.candidate_id for c in kept] == ["c0", "c1", "c2", "c3"]


def phase_apply(config, candidate):
    phase = FilterPhase(config)
    return phase.apply([candidate], [make_author()])
