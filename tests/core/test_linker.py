"""Unit tests for cross-source profile linking with a stub source bundle.

The hub-based tests exercise linking against realistic services; these
construct adversarial situations directly — homonyms with disjoint
publication sets, sources with no overlap evidence — to pin down the
linker's decision rules.
"""

import pytest

from repro.core.identity import ProfileLinker
from repro.scholarly.records import SourceName, SourceProfile


class StubScholar:
    def __init__(self, hits, profiles):
        self._hits = hits
        self._profiles = profiles

    def search_author(self, name):
        return self._hits

    def profile(self, user):
        return self._profiles.get(user)


class StubEmpty:
    def search_author(self, name):
        return []

    def search(self, name):
        return []

    def search_reviewer(self, name):
        return []


class StubSources:
    """Only Scholar is interesting; the rest return nothing."""

    def __init__(self, scholar):
        self.scholar = scholar
        self.orcid = StubEmpty()
        self.publons = StubEmpty()
        self.acm = StubEmpty()
        self.rid = StubEmpty()
        self.dblp = StubEmpty()


def scholar_profile(user, pubs):
    return SourceProfile(
        source=SourceName.GOOGLE_SCHOLAR,
        source_author_id=user,
        name="Lei Zhou",
        publication_ids=tuple(pubs),
    )


def dblp_anchor(pubs):
    return SourceProfile(
        source=SourceName.DBLP,
        source_author_id="Lei Zhou 0001",
        name="Lei Zhou",
        publication_ids=tuple(pubs),
    )


class TestPublicationOverlapLinking:
    def test_homonym_resolved_by_overlap(self):
        scholar = StubScholar(
            hits=[{"user": "sch_right"}, {"user": "sch_wrong"}],
            profiles={
                "sch_right": scholar_profile("sch_right", ["p1", "p2"]),
                "sch_wrong": scholar_profile("sch_wrong", ["p8", "p9"]),
            },
        )
        linker = ProfileLinker(StubSources(scholar))
        profiles = linker.link_from_dblp(dblp_anchor(["p1", "p2", "p3"]))
        linked_users = [
            p.source_author_id
            for p in profiles
            if p.source is SourceName.GOOGLE_SCHOLAR
        ]
        assert linked_users == ["sch_right"]

    def test_best_overlap_wins(self):
        scholar = StubScholar(
            hits=[{"user": "sch_partial"}, {"user": "sch_full"}],
            profiles={
                "sch_partial": scholar_profile("sch_partial", ["p1"]),
                "sch_full": scholar_profile("sch_full", ["p1", "p2", "p3"]),
            },
        )
        linker = ProfileLinker(StubSources(scholar))
        profiles = linker.link_from_dblp(dblp_anchor(["p1", "p2", "p3"]))
        linked = [
            p.source_author_id
            for p in profiles
            if p.source is SourceName.GOOGLE_SCHOLAR
        ]
        assert linked == ["sch_full"]

    def test_multiple_hits_without_overlap_rejected(self):
        scholar = StubScholar(
            hits=[{"user": "a"}, {"user": "b"}],
            profiles={
                "a": scholar_profile("a", ["x1"]),
                "b": scholar_profile("b", ["x2"]),
            },
        )
        linker = ProfileLinker(StubSources(scholar))
        profiles = linker.link_from_dblp(dblp_anchor(["p1"]))
        assert all(p.source is not SourceName.GOOGLE_SCHOLAR for p in profiles)

    def test_single_hit_accepted_when_anchor_has_no_pubs(self):
        scholar = StubScholar(
            hits=[{"user": "only"}],
            profiles={"only": scholar_profile("only", ["x1"])},
        )
        linker = ProfileLinker(StubSources(scholar))
        profiles = linker.link_from_dblp(dblp_anchor([]))
        linked = [
            p.source_author_id
            for p in profiles
            if p.source is SourceName.GOOGLE_SCHOLAR
        ]
        assert linked == ["only"]

    def test_single_hit_without_overlap_rejected_when_anchor_has_pubs(self):
        # The anchor HAS publications; a same-name profile sharing none
        # of them is evidence of a different person, not weak evidence
        # of the same one.
        scholar = StubScholar(
            hits=[{"user": "only"}],
            profiles={"only": scholar_profile("only", ["x1"])},
        )
        linker = ProfileLinker(StubSources(scholar))
        profiles = linker.link_from_dblp(dblp_anchor(["p1", "p2"]))
        assert all(p.source is not SourceName.GOOGLE_SCHOLAR for p in profiles)

    def test_no_hits_anywhere_returns_anchor_only(self):
        linker = ProfileLinker(StubSources(StubScholar([], {})))
        profiles = linker.link_from_dblp(dblp_anchor(["p1"]))
        assert len(profiles) == 1
        assert profiles[0].source is SourceName.DBLP

    def test_hit_cap_respected(self):
        # Only the first five hits may be fetched and compared.
        fetched = []

        class CountingScholar(StubScholar):
            def profile(self, user):
                fetched.append(user)
                return scholar_profile(user, ["zz"])

        scholar = CountingScholar(
            hits=[{"user": f"u{i}"} for i in range(20)], profiles={}
        )
        linker = ProfileLinker(StubSources(scholar))
        linker.link_from_dblp(dblp_anchor(["p1"]))
        assert len(fetched) <= 5
