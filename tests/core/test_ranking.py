"""Tests for the ranking phase and its five components."""

import pytest

from repro.core.config import ImpactMetric, PipelineConfig, RankingWeights
from repro.core.models import Candidate, Manuscript, ManuscriptAuthor
from repro.core.ranking import Ranker, _publication_topic_score
from repro.ontology.expansion import ExpandedKeyword
from repro.scholarly.records import MergedProfile, Metrics


def make_manuscript(keywords=("Semantic Web", "Big Data"), venue="Journal X"):
    return Manuscript(
        title="T",
        keywords=tuple(keywords),
        authors=(ManuscriptAuthor("A"),),
        target_venue=venue,
    )


def expansion(keyword, score, seed, depth=1):
    return ExpandedKeyword(
        keyword=keyword, topic_id=keyword.lower(), score=score, seed=seed, depth=depth
    )


def make_candidate(
    candidate_id,
    interests=(),
    matched=None,
    citations=0,
    h_index=0,
    review_count=0,
    scholar_pubs=(),
    dblp_pubs=(),
    venues_reviewed=(),
):
    return Candidate(
        candidate_id=candidate_id,
        name=candidate_id,
        profile=MergedProfile(
            canonical_name=candidate_id,
            source_ids=(),
            interests=tuple(interests),
            metrics=Metrics(citations=citations, h_index=h_index),
        ),
        matched_keywords=dict(matched or {}),
        keyword_match_score=max((matched or {"": 0}).values() or [0]),
        review_count=review_count,
        scholar_publications=list(scholar_pubs),
        dblp_publications=list(dblp_pubs),
        venues_reviewed=list(venues_reviewed),
    )


SEEDS = [
    expansion("Semantic Web", 1.0, "Semantic Web", depth=0),
    expansion("Big Data", 1.0, "Big Data", depth=0),
    expansion("RDF", 0.9, "Semantic Web"),
]


class TestPaperExample:
    """§2.3's worked example: covering both keywords beats covering one."""

    def test_broader_coverage_ranks_higher(self):
        # Reviewer 1: Semantic Web, Ontologies, RDF. Reviewer 2: both keywords.
        one = make_candidate(
            "covers-one", interests=("Semantic Web", "Ontologies", "RDF")
        )
        both = make_candidate("covers-both", interests=("Semantic Web", "Big Data"))
        config = PipelineConfig(
            weights=RankingWeights(1.0, 0.0, 0.0, 0.0, 0.0)
        )
        ranked = Ranker(config).rank(make_manuscript(), [one, both], SEEDS)
        assert ranked[0].candidate.candidate_id == "covers-both"


class TestComponents:
    def test_impact_citations_metric(self):
        config = PipelineConfig(
            weights=RankingWeights(0.0, 1.0, 0.0, 0.0, 0.0),
            impact_metric=ImpactMetric.CITATIONS,
        )
        low = make_candidate("low", citations=10)
        high = make_candidate("high", citations=1000)
        ranked = Ranker(config).rank(make_manuscript(), [low, high], SEEDS)
        assert ranked[0].candidate.candidate_id == "high"
        assert ranked[0].breakdown.scientific_impact == 1.0

    def test_impact_h_index_metric(self):
        config = PipelineConfig(
            weights=RankingWeights(0.0, 1.0, 0.0, 0.0, 0.0),
            impact_metric=ImpactMetric.H_INDEX,
        )
        a = make_candidate("a", citations=10_000, h_index=2)
        b = make_candidate("b", citations=10, h_index=30)
        ranked = Ranker(config).rank(make_manuscript(), [a, b], SEEDS)
        assert ranked[0].candidate.candidate_id == "b"

    def test_recency_prefers_recent_topical_work(self):
        config = PipelineConfig(
            weights=RankingWeights(0.0, 0.0, 1.0, 0.0, 0.0), current_year=2019
        )
        recent = make_candidate(
            "recent",
            scholar_pubs=[
                {"id": "p1", "title": "x", "year": 2018, "keywords": ["Semantic Web"]}
            ],
        )
        stale = make_candidate(
            "stale",
            scholar_pubs=[
                {"id": "p2", "title": "x", "year": 2005, "keywords": ["Semantic Web"]}
            ],
        )
        ranked = Ranker(config).rank(make_manuscript(), [recent, stale], SEEDS)
        assert ranked[0].candidate.candidate_id == "recent"

    def test_recency_ignores_off_topic_work(self):
        config = PipelineConfig(weights=RankingWeights(0.0, 0.0, 1.0, 0.0, 0.0))
        on_topic = make_candidate(
            "on",
            scholar_pubs=[
                {"id": "p1", "title": "x", "year": 2018, "keywords": ["Semantic Web"]}
            ],
        )
        off_topic = make_candidate(
            "off",
            scholar_pubs=[
                {"id": "p2", "title": "x", "year": 2018, "keywords": ["Knitting"]}
            ],
        )
        ranked = Ranker(config).rank(make_manuscript(), [on_topic, off_topic], SEEDS)
        assert ranked[0].candidate.candidate_id == "on"
        assert ranked[1].breakdown.recency == 0.0

    def test_timeliness_uses_on_time_rate(self):
        config = PipelineConfig(
            weights=RankingWeights(0.0, 0.0, 0.0, 0.0, 0.0, timeliness=1.0)
        )
        prompt = make_candidate("prompt", review_count=10)
        prompt.on_time_rate = 0.95
        tardy = make_candidate("tardy", review_count=10)
        tardy.on_time_rate = 0.20
        unknown = make_candidate("unknown")  # no Publons profile
        ranked = Ranker(config).rank(
            make_manuscript(), [tardy, prompt, unknown], SEEDS
        )
        assert ranked[0].candidate.candidate_id == "prompt"
        assert ranked[-1].candidate.candidate_id == "unknown"
        assert ranked[-1].breakdown.timeliness == 0.0

    def test_review_experience(self):
        config = PipelineConfig(weights=RankingWeights(0.0, 0.0, 0.0, 1.0, 0.0))
        veteran = make_candidate("veteran", review_count=100)
        novice = make_candidate("novice", review_count=1)
        ranked = Ranker(config).rank(make_manuscript(), [veteran, novice], SEEDS)
        assert ranked[0].candidate.candidate_id == "veteran"

    def test_outlet_familiarity_counts_reviews_and_papers(self):
        config = PipelineConfig(weights=RankingWeights(0.0, 0.0, 0.0, 0.0, 1.0))
        familiar = make_candidate(
            "familiar",
            venues_reviewed=[{"venue_id": "j1", "venue": "Journal X", "count": 5}],
            dblp_pubs=[{"id": "p1", "title": "t", "year": 2018, "venue": "Journal X"}],
        )
        stranger = make_candidate(
            "stranger",
            venues_reviewed=[{"venue_id": "j2", "venue": "Journal Y", "count": 5}],
        )
        ranked = Ranker(config).rank(
            make_manuscript(venue="Journal X"), [familiar, stranger], SEEDS
        )
        assert ranked[0].candidate.candidate_id == "familiar"
        assert ranked[1].breakdown.outlet_familiarity == 0.0

    def test_no_target_venue_zeroes_familiarity(self):
        config = PipelineConfig(weights=RankingWeights(0.2, 0.2, 0.2, 0.2, 0.2))
        candidate = make_candidate(
            "c",
            venues_reviewed=[{"venue_id": "j1", "venue": "Journal X", "count": 5}],
        )
        ranked = Ranker(config).rank(
            make_manuscript(venue=""), [candidate], SEEDS
        )
        assert ranked[0].breakdown.outlet_familiarity == 0.0


class TestFusion:
    def test_weights_change_order(self):
        coverage_heavy = PipelineConfig(weights=RankingWeights(1.0, 0.0, 0.0, 0.0, 0.0))
        impact_heavy = PipelineConfig(
            weights=RankingWeights(0.0, 1.0, 0.0, 0.0, 0.0),
            impact_metric=ImpactMetric.CITATIONS,
        )
        topical = make_candidate(
            "topical", interests=("Semantic Web", "Big Data"), citations=5
        )
        famous = make_candidate("famous", citations=5000)
        manuscript = make_manuscript()
        by_coverage = Ranker(coverage_heavy).rank(manuscript, [topical, famous], SEEDS)
        by_impact = Ranker(impact_heavy).rank(manuscript, [topical, famous], SEEDS)
        assert by_coverage[0].candidate.candidate_id == "topical"
        assert by_impact[0].candidate.candidate_id == "famous"

    def test_scores_bounded(self):
        candidates = [
            make_candidate(f"c{i}", citations=i * 100, review_count=i)
            for i in range(5)
        ]
        ranked = Ranker(PipelineConfig()).rank(make_manuscript(), candidates, SEEDS)
        for scored in ranked:
            assert 0.0 <= scored.total_score <= 1.0
            for value in scored.breakdown.as_dict().values():
                assert 0.0 <= value <= 1.0

    def test_empty_pool(self):
        assert Ranker(PipelineConfig()).rank(make_manuscript(), [], SEEDS) == []

    def test_deterministic_tiebreak(self):
        twins = [make_candidate("b"), make_candidate("a")]
        ranked = Ranker(PipelineConfig()).rank(make_manuscript(), twins, SEEDS)
        assert [s.candidate.candidate_id for s in ranked] == ["a", "b"]

    def test_sorted_descending(self):
        candidates = [
            make_candidate(f"c{i}", citations=i * 50, review_count=i) for i in range(6)
        ]
        ranked = Ranker(PipelineConfig()).rank(make_manuscript(), candidates, SEEDS)
        scores = [s.total_score for s in ranked]
        assert scores == sorted(scores, reverse=True)


class TestPublicationTopicScore:
    def test_keyword_list_exact_match(self):
        weights = {"semantic web": 0.8}
        pub = {"title": "ignored", "keywords": ["Semantic Web"], "year": 2018}
        assert _publication_topic_score(pub, weights) == 0.8

    def test_title_fallback_scaled(self):
        weights = {"semantic web": 1.0}
        pub = {"title": "Advances in Semantic Web Reasoning", "year": 2018}
        assert _publication_topic_score(pub, weights) == pytest.approx(0.7)

    def test_title_partial_phrase_no_match(self):
        weights = {"semantic web": 1.0}
        pub = {"title": "Web Page Design", "year": 2018}
        assert _publication_topic_score(pub, weights) == 0.0

    def test_empty_pub(self):
        assert _publication_topic_score({"title": "", "year": 2018}, {"x": 1.0}) == 0.0
