"""Tests for the pipeline domain models."""

import pytest

from repro.core.models import (
    Candidate,
    FilterDecision,
    Manuscript,
    ManuscriptAuthor,
    PhaseReport,
    RecommendationResult,
    ScoreBreakdown,
    ScoredCandidate,
)
from repro.scholarly.records import MergedProfile, Metrics


def make_candidate(candidate_id="c1", name="Ada"):
    return Candidate(
        candidate_id=candidate_id,
        name=name,
        profile=MergedProfile(canonical_name=name, source_ids=()),
    )


class TestManuscript:
    def test_requires_keywords(self):
        with pytest.raises(ValueError):
            Manuscript(
                title="t",
                keywords=(),
                authors=(ManuscriptAuthor("A"),),
            )

    def test_requires_authors(self):
        with pytest.raises(ValueError):
            Manuscript(title="t", keywords=("rdf",), authors=())

    def test_valid_construction(self):
        manuscript = Manuscript(
            title="t", keywords=("rdf",), authors=(ManuscriptAuthor("A"),)
        )
        assert manuscript.keywords == ("rdf",)


class TestScoreBreakdown:
    def test_as_dict_keys(self):
        breakdown = ScoreBreakdown()
        assert set(breakdown.as_dict()) == {
            "topic_coverage",
            "scientific_impact",
            "recency",
            "review_experience",
            "outlet_familiarity",
            "timeliness",
        }


class TestRecommendationResult:
    def make_result(self):
        manuscript = Manuscript(
            title="t", keywords=("rdf",), authors=(ManuscriptAuthor("A"),)
        )
        ranked = [
            ScoredCandidate(make_candidate(f"c{i}"), 1.0 - i * 0.1, ScoreBreakdown())
            for i in range(5)
        ]
        decisions = [
            FilterDecision("c9", kept=False, reasons=("COI",)),
            FilterDecision("c0", kept=True),
        ]
        return RecommendationResult(
            manuscript=manuscript,
            verified_authors=[],
            expanded_keywords=[],
            candidates=[],
            filter_decisions=decisions,
            ranked=ranked,
            phase_reports=[PhaseReport(phase="rank")],
        )

    def test_top(self):
        result = self.make_result()
        assert len(result.top(3)) == 3
        assert result.top(3)[0].total_score == 1.0

    def test_rejected(self):
        result = self.make_result()
        assert [d.candidate_id for d in result.rejected()] == ["c9"]

    def test_phase_lookup(self):
        result = self.make_result()
        assert result.phase("rank").phase == "rank"
        with pytest.raises(KeyError):
            result.phase("nonexistent")

    def test_scored_candidate_name(self):
        scored = ScoredCandidate(make_candidate(name="Ada"), 0.5, ScoreBreakdown())
        assert scored.name == "Ada"
