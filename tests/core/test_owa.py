"""Tests for OWA score aggregation (the reference-[4] alternative)."""

import pytest

from repro.core.config import AggregationMethod, PipelineConfig, RankingWeights
from repro.core.models import Candidate, Manuscript, ManuscriptAuthor
from repro.core.ranking import Ranker, _owa_aggregate
from repro.ontology.expansion import ExpandedKeyword
from repro.scholarly.records import MergedProfile, Metrics


class TestOwaAggregate:
    def test_uniform_is_mean(self):
        assert _owa_aggregate([1.0, 0.0, 0.5], None) == pytest.approx(0.5)

    def test_optimistic_weights_take_best(self):
        assert _owa_aggregate([0.2, 0.9, 0.1], (1.0,)) == pytest.approx(0.9)

    def test_pessimistic_weights_take_worst(self):
        assert _owa_aggregate([0.2, 0.9, 0.1], (0.0, 0.0, 1.0)) == pytest.approx(0.1)

    def test_weights_normalized(self):
        balanced = _owa_aggregate([1.0, 0.0], (2.0, 2.0))
        assert balanced == pytest.approx(0.5)

    def test_extra_weights_ignored(self):
        assert _owa_aggregate([0.4], (1.0, 1.0, 1.0)) == pytest.approx(0.4)

    def test_order_invariance(self):
        weights = (0.5, 0.3, 0.2)
        assert _owa_aggregate([0.1, 0.9, 0.5], weights) == pytest.approx(
            _owa_aggregate([0.9, 0.5, 0.1], weights)
        )


class TestConfigValidation:
    def test_negative_owa_weight_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(owa_weights=(-1.0, 2.0))

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(owa_weights=(0.0, 0.0))

    def test_valid_config(self):
        config = PipelineConfig(
            aggregation=AggregationMethod.OWA, owa_weights=(0.5, 0.5)
        )
        assert config.aggregation is AggregationMethod.OWA


class TestRankerIntegration:
    def make_candidate(self, candidate_id, interests=(), citations=0, reviews=0):
        candidate = Candidate(
            candidate_id=candidate_id,
            name=candidate_id,
            profile=MergedProfile(
                canonical_name=candidate_id,
                source_ids=(),
                interests=tuple(interests),
                metrics=Metrics(citations=citations, h_index=citations // 50),
            ),
        )
        candidate.review_count = reviews
        return candidate

    MANUSCRIPT = Manuscript(
        title="T", keywords=("Semantic Web",), authors=(ManuscriptAuthor("A"),)
    )
    EXPANDED = [
        ExpandedKeyword("Semantic Web", "semantic-web", 1.0, "Semantic Web", 0)
    ]

    def test_pessimistic_owa_prefers_all_rounder(self):
        # Spiky: perfect coverage, nothing else.  Rounded: decent at all.
        spiky = self.make_candidate("spiky", interests=("Semantic Web",))
        rounded = self.make_candidate(
            "rounded", interests=("Semantic Web",), citations=500, reviews=20
        )
        config = PipelineConfig(
            aggregation=AggregationMethod.OWA,
            # Weight the weakest components: demand balance.
            owa_weights=(0.0, 0.0, 0.1, 0.2, 0.3, 0.4),
        )
        ranked = Ranker(config).rank(
            self.MANUSCRIPT, [spiky, rounded], self.EXPANDED
        )
        assert ranked[0].candidate.candidate_id == "rounded"

    def test_optimistic_owa_rewards_spikes(self):
        spiky = self.make_candidate("spiky", interests=("Semantic Web",))
        mediocre = self.make_candidate("mediocre", citations=10, reviews=1)
        config = PipelineConfig(
            aggregation=AggregationMethod.OWA, owa_weights=(1.0,)
        )
        ranked = Ranker(config).rank(
            self.MANUSCRIPT, [spiky, mediocre], self.EXPANDED
        )
        # Both have some maximal component after pool normalization; the
        # coverage spike candidate must at least tie at 1.0.
        assert ranked[0].total_score == pytest.approx(1.0)

    def test_weighted_sum_unchanged_by_owa_weights(self):
        spiky = self.make_candidate("spiky", interests=("Semantic Web",))
        other = self.make_candidate("other", citations=100)
        plain = Ranker(PipelineConfig()).rank(
            self.MANUSCRIPT, [spiky, other], self.EXPANDED
        )
        with_unused_owa = Ranker(
            PipelineConfig(owa_weights=(1.0, 1.0))
        ).rank(self.MANUSCRIPT, [spiky, other], self.EXPANDED)
        assert [s.total_score for s in plain] == [
            s.total_score for s in with_unused_owa
        ]
