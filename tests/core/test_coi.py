"""Tests for conflict-of-interest detection."""

import pytest

from repro.core.coi import CoiDetector, UNDATED_SPAN_YEARS
from repro.core.config import AffiliationCoiLevel, CoiConfig
from repro.core.models import Candidate, ManuscriptAuthor, VerifiedAuthor
from repro.scholarly.records import Affiliation, MergedProfile, SourceName


def make_candidate(
    pub_ids=(), affiliations=(), source_ids=(), name="Reviewer R",
    dblp_publications=(),
):
    candidate = Candidate(
        candidate_id="cand",
        name=name,
        profile=MergedProfile(
            canonical_name=name,
            source_ids=tuple(source_ids),
            publication_ids=tuple(pub_ids),
            affiliations=tuple(affiliations),
        ),
    )
    candidate.dblp_publications = list(dblp_publications)
    return candidate


def make_author(pub_ids=(), affiliations=(), source_ids=(), name="Author A",
                submitted_affiliation="", submitted_country="",
                dblp_publications=()):
    return VerifiedAuthor(
        submitted=ManuscriptAuthor(
            name, affiliation=submitted_affiliation, country=submitted_country
        ),
        profile=MergedProfile(
            canonical_name=name,
            source_ids=tuple(source_ids),
            publication_ids=tuple(pub_ids),
            affiliations=tuple(affiliations),
        ),
        dblp_publications=tuple(dblp_publications),
    )


class TestCoauthorship:
    def test_shared_publication_flags(self):
        detector = CoiDetector()
        verdict = detector.check(
            make_candidate(pub_ids=("p1", "p2")),
            [make_author(pub_ids=("p2", "p3"))],
        )
        assert verdict.has_conflict
        assert any("co-authored" in r for r in verdict.reasons)

    def test_no_shared_publication_passes(self):
        detector = CoiDetector()
        verdict = detector.check(
            make_candidate(pub_ids=("p1",)), [make_author(pub_ids=("p2",))]
        )
        assert not verdict.has_conflict

    def test_rule_can_be_disabled(self):
        detector = CoiDetector(CoiConfig(check_coauthorship=False))
        verdict = detector.check(
            make_candidate(pub_ids=("p1",)), [make_author(pub_ids=("p1",))]
        )
        assert not verdict.has_conflict

    def test_lookback_window_forgives_old_papers(self):
        detector = CoiDetector(
            CoiConfig(coauthorship_lookback_years=5), current_year=2019
        )
        years = {"p1": 2005}
        verdict = detector.check(
            make_candidate(pub_ids=("p1",)),
            [make_author(pub_ids=("p1",))],
            publication_years=years,
        )
        assert not verdict.has_conflict

    def test_lookback_window_keeps_recent_papers(self):
        detector = CoiDetector(
            CoiConfig(coauthorship_lookback_years=5), current_year=2019
        )
        years = {"p1": 2017}
        verdict = detector.check(
            make_candidate(pub_ids=("p1",)),
            [make_author(pub_ids=("p1",))],
            publication_years=years,
        )
        assert verdict.has_conflict

    def test_unknown_year_treated_as_recent(self):
        detector = CoiDetector(
            CoiConfig(coauthorship_lookback_years=5), current_year=2019
        )
        verdict = detector.check(
            make_candidate(pub_ids=("p1",)),
            [make_author(pub_ids=("p1",))],
            publication_years={},
        )
        assert verdict.has_conflict


class TestAffiliations:
    def test_same_institution_overlapping_periods(self):
        detector = CoiDetector()
        shared = Affiliation("MIT", "United States", 2015, None)
        verdict = detector.check(
            make_candidate(affiliations=(shared,)),
            [make_author(affiliations=(Affiliation("MIT", "United States", 2010, 2016),))],
        )
        assert verdict.has_conflict
        assert any("MIT" in r for r in verdict.reasons)

    def test_same_institution_disjoint_periods_passes(self):
        detector = CoiDetector()
        verdict = detector.check(
            make_candidate(affiliations=(Affiliation("MIT", "US", 2000, 2004),)),
            [make_author(affiliations=(Affiliation("MIT", "US", 2010, None),))],
        )
        assert not verdict.has_conflict

    def test_country_level_when_configured(self):
        detector = CoiDetector(
            CoiConfig(affiliation_level=AffiliationCoiLevel.COUNTRY)
        )
        verdict = detector.check(
            make_candidate(affiliations=(Affiliation("MIT", "United States", 2015, None),)),
            [make_author(affiliations=(Affiliation("Stanford", "United States", 2015, None),))],
        )
        assert verdict.has_conflict
        assert any("country" in r for r in verdict.reasons)

    def test_country_not_checked_at_university_level(self):
        detector = CoiDetector()
        verdict = detector.check(
            make_candidate(affiliations=(Affiliation("MIT", "US", 2015, None),)),
            [make_author(affiliations=(Affiliation("Stanford", "US", 2015, None),))],
        )
        assert not verdict.has_conflict

    def test_affiliation_rule_disabled(self):
        detector = CoiDetector(CoiConfig(affiliation_level=AffiliationCoiLevel.NONE))
        shared = Affiliation("MIT", "US", 2015, None)
        verdict = detector.check(
            make_candidate(affiliations=(shared,)),
            [make_author(affiliations=(shared,))],
        )
        assert not verdict.has_conflict

    def test_undated_affiliation_treated_as_recent(self):
        detector = CoiDetector(current_year=2019)
        undated = Affiliation("MIT", "US", 0, None)
        old = Affiliation("MIT", "US", 1990, 1995)
        verdict = detector.check(
            make_candidate(affiliations=(undated,)),
            [make_author(affiliations=(old,))],
        )
        # The undated line covers ~2016-2019; no overlap with 1990-1995.
        assert not verdict.has_conflict

    def test_undated_vs_current_conflicts(self):
        detector = CoiDetector(current_year=2019)
        undated = Affiliation("MIT", "US", 0, None)
        current = Affiliation("MIT", "US", 2018, None)
        verdict = detector.check(
            make_candidate(affiliations=(undated,)),
            [make_author(affiliations=(current,))],
        )
        assert verdict.has_conflict

    def test_submitted_affiliation_counts_as_evidence(self):
        detector = CoiDetector(current_year=2019)
        verdict = detector.check(
            make_candidate(affiliations=(Affiliation("MIT", "US", 2017, None),)),
            [make_author(submitted_affiliation="MIT", submitted_country="US")],
        )
        assert verdict.has_conflict


class TestSamePerson:
    def test_shared_source_id_flags(self):
        detector = CoiDetector()
        shared_id = (SourceName.GOOGLE_SCHOLAR, "sch_same")
        verdict = detector.check(
            make_candidate(source_ids=(shared_id,)),
            [make_author(source_ids=(shared_id,))],
        )
        assert verdict.has_conflict
        assert any("manuscript author" in r for r in verdict.reasons)

    def test_different_ids_pass(self):
        detector = CoiDetector()
        verdict = detector.check(
            make_candidate(source_ids=((SourceName.GOOGLE_SCHOLAR, "sch_a"),)),
            [make_author(source_ids=((SourceName.GOOGLE_SCHOLAR, "sch_b"),))],
        )
        assert not verdict.has_conflict


class TestMentorship:
    """The advisor/advisee heuristic (permanent COI)."""

    def pub(self, pub_id, year):
        return {"id": pub_id, "year": year, "title": "t", "venue": "v"}

    def make_pair(self, shared_year, candidate_first, author_first):
        candidate = make_candidate(
            dblp_publications=[
                self.pub("first-c", candidate_first),
                self.pub("shared", shared_year),
            ]
        )
        author = make_author(
            dblp_publications=[
                self.pub("first-a", author_first),
                self.pub("shared", shared_year),
            ]
        )
        return candidate, author

    def detector(self, **overrides):
        return CoiDetector(
            CoiConfig(
                check_coauthorship=False,
                affiliation_level=AffiliationCoiLevel.NONE,
                check_mentorship=True,
                **overrides,
            )
        )

    def test_advisee_pattern_flagged(self):
        # Candidate started 2012, senior author started 2000; they share
        # a paper from 2013 — inside the candidate's first 3 years.
        candidate, author = self.make_pair(
            shared_year=2013, candidate_first=2012, author_first=2000
        )
        verdict = self.detector().check(candidate, [author])
        assert verdict.has_conflict
        assert any("advisee" in r for r in verdict.reasons)

    def test_advisor_pattern_flagged(self):
        candidate, author = self.make_pair(
            shared_year=2013, candidate_first=2000, author_first=2012
        )
        verdict = self.detector().check(candidate, [author])
        assert any("advisor" in r for r in verdict.reasons)

    def test_late_collaboration_not_flagged(self):
        # Same seniority gap, but the shared paper is 10 years into the
        # junior's career: peers collaborating, not mentorship.
        candidate, author = self.make_pair(
            shared_year=2022, candidate_first=2012, author_first=2000
        )
        verdict = self.detector().check(candidate, [author])
        assert not verdict.has_conflict

    def test_peers_not_flagged(self):
        # Early shared paper but both started around the same time.
        candidate, author = self.make_pair(
            shared_year=2013, candidate_first=2012, author_first=2011
        )
        verdict = self.detector().check(candidate, [author])
        assert not verdict.has_conflict

    def test_disabled_by_default(self):
        candidate, author = self.make_pair(
            shared_year=2013, candidate_first=2012, author_first=2000
        )
        detector = CoiDetector(
            CoiConfig(
                check_coauthorship=False,
                affiliation_level=AffiliationCoiLevel.NONE,
            )
        )
        assert not detector.check(candidate, [author]).has_conflict

    def test_silent_without_publication_data(self):
        candidate = make_candidate(dblp_publications=[])
        author = make_author(dblp_publications=[self.pub("p", 2000)])
        assert not self.detector().check(candidate, [author]).has_conflict

    def test_window_configurable(self):
        # Shared paper 5 years into the junior's career: outside the
        # default 3-year window, inside a 6-year one.
        candidate, author = self.make_pair(
            shared_year=2017, candidate_first=2012, author_first=2000
        )
        assert not self.detector().check(candidate, [author]).has_conflict
        wide = self.detector(mentorship_window_years=6)
        assert wide.check(candidate, [author]).has_conflict


class TestMultipleAuthors:
    def test_conflict_with_any_author_flags(self):
        detector = CoiDetector()
        clean = make_author(pub_ids=("p9",), name="Clean")
        conflicted = make_author(pub_ids=("p1",), name="Conflicted")
        verdict = detector.check(
            make_candidate(pub_ids=("p1",)), [clean, conflicted]
        )
        assert verdict.has_conflict
        assert any("Conflicted" in r for r in verdict.reasons)

    def test_reasons_accumulate(self):
        detector = CoiDetector()
        shared_pub = ("p1",)
        shared_aff = (Affiliation("MIT", "US", 2015, None),)
        verdict = detector.check(
            make_candidate(pub_ids=shared_pub, affiliations=shared_aff),
            [make_author(pub_ids=shared_pub, affiliations=shared_aff)],
        )
        assert len(verdict.reasons) >= 2
