"""Fault-injection tests: the pipeline under a degraded scholarly web.

The paper's on-the-fly design means every recommendation depends on six
remote services staying up.  These tests deploy hubs with brutal fault
policies and assert the pipeline degrades gracefully: transient faults
are retried away, sustained per-candidate outages drop candidates (not
the run), and rate limits slow things down without breaking anything.
"""

import pytest

from repro.core.pipeline import Minaret
from repro.scholarly.records import SourceName
from repro.scholarly.registry import DEFAULT_BEHAVIOUR, ScholarlyHub, SourceBehaviour
from repro.web.crawler import RetryPolicy


def flaky_behaviour(failure_probability, sources=None):
    behaviour = {}
    for source in SourceName:
        base = DEFAULT_BEHAVIOUR[source]
        if sources is None or source in sources:
            behaviour[source] = SourceBehaviour(
                latency_base=0.001,
                latency_jitter=0.0,
                failure_probability=failure_probability,
            )
        else:
            behaviour[source] = SourceBehaviour(
                latency_base=0.001, latency_jitter=0.0
            )
    return behaviour


class TestTransientFaults:
    def test_moderate_faults_fully_retried(self, world, manuscript):
        """25% fault rate with 6 retry attempts: same output as healthy."""
        healthy_hub = ScholarlyHub.deploy(
            world, behaviour=flaky_behaviour(0.0)
        )
        healthy = Minaret(healthy_hub).recommend(manuscript)
        flaky_hub = ScholarlyHub.deploy(
            world,
            behaviour=flaky_behaviour(0.25),
            retry=RetryPolicy(max_attempts=6, base_backoff=0.001),
        )
        degraded = Minaret(flaky_hub).recommend(manuscript)
        assert [s.candidate.candidate_id for s in degraded.ranked] == [
            s.candidate.candidate_id for s in healthy.ranked
        ]
        faults = sum(s.faults for s in flaky_hub.http.stats.values())
        assert faults > 0, "the fault policy must actually have fired"

    def test_retries_cost_virtual_time(self, world, manuscript):
        healthy_hub = ScholarlyHub.deploy(world, behaviour=flaky_behaviour(0.0))
        Minaret(healthy_hub).recommend(manuscript)
        flaky_hub = ScholarlyHub.deploy(
            world,
            behaviour=flaky_behaviour(0.3),
            retry=RetryPolicy(max_attempts=8, base_backoff=0.05),
        )
        Minaret(flaky_hub).recommend(manuscript)
        assert flaky_hub.clock.now() > healthy_hub.clock.now()


class TestSustainedOutage:
    def test_candidates_dropped_not_run_aborted(self, world, manuscript):
        """ORCID 60% down with few retries: the run completes anyway.

        ORCID is consulted once per candidate during assembly; with only
        2 attempts some of those fetches exhaust their retries.  DBLP
        and Scholar are kept healthy so that verification and retrieval
        (which have no per-candidate skip semantics) stay up.
        """
        hub = ScholarlyHub.deploy(
            world,
            behaviour=flaky_behaviour(
                0.6, sources={SourceName.ORCID, SourceName.ACM_DL}
            ),
            retry=RetryPolicy(max_attempts=2, base_backoff=0.001),
        )
        pipeline = Minaret(hub)
        result = pipeline.recommend(manuscript)
        assert result.ranked, "pipeline must still produce recommendations"

    def test_assembly_failures_counted(self, world, manuscript):
        from repro.core.extraction import CandidateExtractor

        hub = ScholarlyHub.deploy(
            world,
            behaviour=flaky_behaviour(0.6, sources={SourceName.ORCID}),
            retry=RetryPolicy(max_attempts=1, base_backoff=0.001),
        )
        extractor = CandidateExtractor(hub)
        minaret = Minaret(hub)
        expanded = minaret.expander.expand(list(manuscript.keywords))
        candidates = extractor.extract_candidates(expanded)
        # With a 60% failure rate and single attempts, some assemblies
        # must have died on the ORCID leg...
        assert extractor.assembly_failures > 0
        # ...but not all: others got lucky draws or never had an ORCID
        # hit to fetch.
        assert candidates


class TestRateLimitPressure:
    def test_tight_rate_limit_slows_but_succeeds(self, world, manuscript):
        behaviour = dict(DEFAULT_BEHAVIOUR)
        behaviour[SourceName.GOOGLE_SCHOLAR] = SourceBehaviour(
            latency_base=0.01,
            latency_jitter=0.0,
            rate_capacity=5,
            rate_refill=2.0,
        )
        hub = ScholarlyHub.deploy(world, behaviour=behaviour)
        result = Minaret(hub).recommend(manuscript)
        assert result.ranked
        scholar_stats = hub.http.stats["scholar.google.com"]
        assert scholar_stats.rate_limited > 0, "the limit must have bitten"
