"""Tests for ranking explanations."""

import pytest

from repro.core.config import ImpactMetric, PipelineConfig
from repro.core.explain import explain_candidate, explain_ranking
from repro.core.models import (
    Candidate,
    Manuscript,
    ManuscriptAuthor,
    ScoreBreakdown,
    ScoredCandidate,
)
from repro.core.pipeline import Minaret
from repro.ontology.expansion import ExpandedKeyword
from repro.scholarly.records import MergedProfile, Metrics


def make_scored(
    interests=("Semantic Web",),
    matched=None,
    review_count=3,
    on_time_rate=0.8,
    venues_reviewed=(),
    dblp_pubs=(),
    scholar_pubs=(),
    breakdown=None,
):
    candidate = Candidate(
        candidate_id="c",
        name="Ada",
        profile=MergedProfile(
            canonical_name="Ada",
            source_ids=(),
            interests=tuple(interests),
            metrics=Metrics(citations=120, h_index=7, i10_index=4),
        ),
        matched_keywords=dict(matched or {}),
    )
    candidate.review_count = review_count
    candidate.on_time_rate = on_time_rate
    candidate.venues_reviewed = list(venues_reviewed)
    candidate.dblp_publications = list(dblp_pubs)
    candidate.scholar_publications = list(scholar_pubs)
    return ScoredCandidate(
        candidate, 0.7, breakdown or ScoreBreakdown(topic_coverage=0.9)
    )


MANUSCRIPT = Manuscript(
    title="T",
    keywords=("Semantic Web", "Big Data"),
    authors=(ManuscriptAuthor("A"),),
    target_venue="Journal X",
)

EXPANDED = [
    ExpandedKeyword("Semantic Web", "semantic-web", 1.0, "Semantic Web", 0),
    ExpandedKeyword("Big Data", "big-data", 1.0, "Big Data", 0),
    ExpandedKeyword("MapReduce", "mapreduce", 0.9, "Big Data", 1),
]


class TestExplainCandidate:
    def test_six_component_lines(self):
        lines = explain_candidate(make_scored(), MANUSCRIPT, EXPANDED)
        assert len(lines) == 6

    def test_direct_coverage_named(self):
        lines = explain_candidate(make_scored(), MANUSCRIPT, EXPANDED)
        coverage = next(l for l in lines if l.startswith("topic coverage"))
        assert "'Semantic Web' directly" in coverage

    def test_expansion_coverage_named(self):
        scored = make_scored(interests=("MapReduce",))
        coverage = next(
            l
            for l in explain_candidate(scored, MANUSCRIPT, EXPANDED)
            if l.startswith("topic coverage")
        )
        assert "via 'MapReduce'" in coverage
        assert "sc=0.90" in coverage

    def test_no_coverage_explained(self):
        scored = make_scored(interests=("Knitting",))
        coverage = next(
            l
            for l in explain_candidate(scored, MANUSCRIPT, EXPANDED)
            if l.startswith("topic coverage")
        )
        assert "no manuscript keyword" in coverage

    def test_impact_metric_configurable(self):
        scored = make_scored()
        h_lines = explain_candidate(scored, MANUSCRIPT, EXPANDED)
        assert any("H-index 7" in l for l in h_lines)
        citation_config = PipelineConfig(impact_metric=ImpactMetric.CITATIONS)
        c_lines = explain_candidate(scored, MANUSCRIPT, EXPANDED, citation_config)
        assert any("120 citations" in l for l in c_lines)

    def test_missing_publons_explained(self):
        scored = make_scored(review_count=0, on_time_rate=None)
        lines = explain_candidate(scored, MANUSCRIPT, EXPANDED)
        assert any("no Publons review history" in l for l in lines)
        assert any("on-time rate unknown" in l for l in lines)

    def test_outlet_history_counted(self):
        scored = make_scored(
            venues_reviewed=[{"venue": "Journal X", "venue_id": "j", "count": 4}],
            dblp_pubs=[{"id": "p", "title": "t", "year": 2018, "venue": "Journal X"}],
        )
        lines = explain_candidate(scored, MANUSCRIPT, EXPANDED)
        assert any("4 review(s) for and 1 paper(s) in 'Journal X'" in l for l in lines)

    def test_recency_from_publications(self):
        scored = make_scored(
            scholar_pubs=[
                {"id": "p1", "title": "t", "year": 2018, "keywords": []},
                {"id": "p2", "title": "t", "year": 2010, "keywords": []},
            ]
        )
        lines = explain_candidate(scored, MANUSCRIPT, EXPANDED)
        assert any("most recent 2018" in l for l in lines)

    def test_strongest_component_first(self):
        scored = make_scored(
            breakdown=ScoreBreakdown(review_experience=1.0, topic_coverage=0.1)
        )
        lines = explain_candidate(scored, MANUSCRIPT, EXPANDED)
        assert lines[0].startswith("review experience")

    def test_timeliness_rate_rendered(self):
        lines = explain_candidate(make_scored(on_time_rate=0.75), MANUSCRIPT, EXPANDED)
        assert any("75% of past reviews on time" in l for l in lines)


class TestExplainRanking:
    def test_block_format(self):
        block = explain_ranking(
            [make_scored(), make_scored()], MANUSCRIPT, EXPANDED, top_k=2
        )
        assert block.count("1. Ada") == 1
        assert block.count("2. Ada") == 1
        assert "    - " in block

    def test_real_pipeline_output_explains(self, hub, manuscript):
        minaret = Minaret(hub)
        result = minaret.recommend(manuscript)
        block = explain_ranking(
            result.ranked, result.manuscript, result.expanded_keywords, top_k=3
        )
        assert "topic coverage" in block
        assert "total" in block
