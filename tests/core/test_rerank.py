"""Tests for interactive re-ranking (weight changes without re-crawling)."""

import pytest

from repro.core.config import (
    AggregationMethod,
    ImpactMetric,
    RankingWeights,
)
from repro.core.pipeline import Minaret


@pytest.fixture()
def run(hub, manuscript):
    minaret = Minaret(hub)
    return minaret, minaret.recommend(manuscript)


class TestRerank:
    def test_no_network_traffic(self, hub, run):
        minaret, result = run
        requests_before = hub.total_requests()
        minaret.rerank(result, weights=RankingWeights(0.0, 1.0, 0.0, 0.0, 0.0))
        assert hub.total_requests() == requests_before

    def test_same_candidate_set(self, run):
        minaret, result = run
        reranked = minaret.rerank(
            result, weights=RankingWeights(0.0, 0.0, 0.0, 1.0, 0.0)
        )
        assert {s.candidate.candidate_id for s in reranked.ranked} == {
            s.candidate.candidate_id for s in result.ranked
        }

    def test_weights_change_order(self, run):
        minaret, result = run
        reranked = minaret.rerank(
            result, weights=RankingWeights(0.0, 1.0, 0.0, 0.0, 0.0)
        )
        if len(result.ranked) > 3:
            assert [s.candidate.candidate_id for s in reranked.ranked] != [
                s.candidate.candidate_id for s in result.ranked
            ]

    def test_identity_rerank_preserves_order(self, run):
        minaret, result = run
        reranked = minaret.rerank(result)
        assert [s.candidate.candidate_id for s in reranked.ranked] == [
            s.candidate.candidate_id for s in result.ranked
        ]
        assert [s.total_score for s in reranked.ranked] == [
            s.total_score for s in result.ranked
        ]

    def test_rerank_phase_appended(self, run):
        minaret, result = run
        reranked = minaret.rerank(result)
        assert reranked.phase_reports[-1].phase == "rerank"
        assert reranked.phase_reports[-1].requests == 0
        # The original result is untouched.
        assert all(r.phase != "rerank" for r in result.phase_reports)

    def test_aggregation_switch(self, run):
        minaret, result = run
        reranked = minaret.rerank(
            result,
            aggregation=AggregationMethod.OWA,
            owa_weights=(1.0,),
        )
        assert reranked.ranked
        assert all(0.0 <= s.total_score <= 1.0 for s in reranked.ranked)

    def test_impact_metric_switch(self, run):
        minaret, result = run
        reranked = minaret.rerank(
            result,
            weights=RankingWeights(0.0, 1.0, 0.0, 0.0, 0.0),
            impact_metric=ImpactMetric.CITATIONS,
        )
        impacts = [s.breakdown.scientific_impact for s in reranked.ranked]
        assert impacts == sorted(impacts, reverse=True)

    def test_request_counters_frozen_across_settings(self, hub, run):
        """No rerank knob may re-crawl: counters stay frozen throughout."""
        minaret, result = run
        requests_before = hub.total_requests()
        latency_before = hub.total_latency()
        reranked = minaret.rerank(
            result,
            weights=RankingWeights(0.2, 0.2, 0.2, 0.2, 0.2),
            aggregation=AggregationMethod.OWA,
            owa_weights=(0.5, 0.3, 0.2),
            impact_metric=ImpactMetric.CITATIONS,
        )
        minaret.rerank(reranked)
        assert hub.total_requests() == requests_before
        assert hub.total_latency() == latency_before
        assert reranked.phase_reports[-1].requests == 0

    def test_warm_pipeline_rerank_touches_neither_web_nor_plane(
        self, world, manuscript
    ):
        from repro.core.config import PipelineConfig
        from repro.scholarly.registry import ScholarlyHub

        hub = ScholarlyHub.deploy(world)
        minaret = Minaret(hub, config=PipelineConfig(warm_cache=True))
        result = minaret.recommend(manuscript)
        requests_before = hub.total_requests()
        lookups_before = (
            minaret.plane.hits + minaret.plane.misses + minaret.plane.coalesced
        )
        minaret.rerank(result, weights=RankingWeights(0.0, 1.0, 0.0, 0.0, 0.0))
        assert hub.total_requests() == requests_before
        lookups_after = (
            minaret.plane.hits + minaret.plane.misses + minaret.plane.coalesced
        )
        assert lookups_after == lookups_before

    def test_rerank_matches_fresh_run_with_same_config(self, world, manuscript):
        from repro.core.config import PipelineConfig
        from repro.scholarly.registry import ScholarlyHub

        weights = RankingWeights(0.1, 0.4, 0.1, 0.3, 0.1)
        hub_a = ScholarlyHub.deploy(world)
        minaret_a = Minaret(hub_a)
        reranked = minaret_a.rerank(minaret_a.recommend(manuscript), weights=weights)
        hub_b = ScholarlyHub.deploy(world)
        fresh = Minaret(
            hub_b, config=PipelineConfig(weights=weights)
        ).recommend(manuscript)
        assert [s.candidate.candidate_id for s in reranked.ranked] == [
            s.candidate.candidate_id for s in fresh.ranked
        ]
