"""Tests for candidate retrieval and profile assembly."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.extraction import CandidateExtractor
from repro.ontology.expansion import ExpandedKeyword
from repro.scholarly.records import SourceName


def expansions_for(world, hub, count=2):
    """Expansion list built from interests that really exist on Scholar."""
    keywords = []
    for author in world.authors.values():
        user = hub.scholar_service.user_of(author.author_id)
        if user is None:
            continue
        profile = hub.scholar.profile(user)
        keywords.extend(profile.interests)
        if len(keywords) >= count:
            break
    return [
        ExpandedKeyword(keyword=k, topic_id="", score=1.0, seed=k, depth=0)
        for k in dict.fromkeys(keywords[:count])
    ]


class TestRetrieval:
    def test_retrieval_finds_registered_scholars(self, hub, world):
        expansions = expansions_for(world, hub)
        extractor = CandidateExtractor(hub)
        scholar_matches, publons_matches = extractor.retrieve_candidate_ids(expansions)
        assert scholar_matches, "no scholars retrieved"
        for matched in scholar_matches.values():
            assert all(0 < s <= 1 for s in matched.values())

    def test_retrieval_keeps_best_score_per_keyword(self, hub, world):
        keyword = expansions_for(world, hub, count=1)[0].keyword
        duplicated = [
            ExpandedKeyword(keyword=keyword, topic_id="", score=0.6, seed=keyword, depth=1),
            ExpandedKeyword(keyword=keyword, topic_id="", score=0.9, seed=keyword, depth=1),
        ]
        extractor = CandidateExtractor(hub)
        scholar_matches, __ = extractor.retrieve_candidate_ids(duplicated)
        for matched in scholar_matches.values():
            assert max(matched.values()) == pytest.approx(0.9)

    def test_normalize_identical_keywords_query_once(self, world):
        """Surface variants of one keyword cost one query pair, not many.

        The services normalize the query term themselves, so "RDF" and
        "rdf" can only ever return the same ids — issuing both would
        just double the request bill.
        """
        from repro.scholarly.registry import ScholarlyHub

        hub_probe = ScholarlyHub.deploy(world)
        keyword = expansions_for(world, hub_probe, count=1)[0].keyword

        def variants(kw):
            return [
                ExpandedKeyword(keyword=kw, topic_id="", score=0.9, seed=kw, depth=0),
                ExpandedKeyword(
                    keyword=kw.upper(), topic_id="", score=0.6, seed=kw, depth=1
                ),
                ExpandedKeyword(
                    keyword=f"  {kw.title()} ", topic_id="", score=0.7, seed=kw, depth=1
                ),
            ]

        hub_single = ScholarlyHub.deploy(world)
        single = CandidateExtractor(hub_single).retrieve_candidate_ids(
            [variants(keyword)[0]]
        )
        hub_multi = ScholarlyHub.deploy(world)
        multi = CandidateExtractor(hub_multi).retrieve_candidate_ids(
            variants(keyword)
        )
        assert hub_multi.total_requests() == hub_single.total_requests()
        # The merge still keeps the best expansion score of the group.
        assert set(multi[0]) == set(single[0])
        for matched in multi[0].values():
            assert max(matched.values()) == pytest.approx(0.9)


class TestExtraction:
    def test_candidates_capped(self, hub, world):
        expansions = expansions_for(world, hub, count=3)
        config = PipelineConfig(max_candidates=5)
        extractor = CandidateExtractor(hub, config)
        candidates = extractor.extract_candidates(expansions)
        assert len(candidates) <= 5

    def test_candidates_have_merged_profiles(self, hub, world):
        expansions = expansions_for(world, hub)
        extractor = CandidateExtractor(hub, PipelineConfig(max_candidates=8))
        candidates = extractor.extract_candidates(expansions)
        assert candidates
        for candidate in candidates:
            assert candidate.name
            assert candidate.profile.canonical_name
            assert candidate.matched_keywords
            # Scholar-anchored candidates must carry scholar ids.
            assert candidate.profile.source_ids

    def test_no_duplicate_names(self, hub, world):
        expansions = expansions_for(world, hub, count=4)
        extractor = CandidateExtractor(hub, PipelineConfig(max_candidates=30))
        candidates = extractor.extract_candidates(expansions)
        names = [c.name for c in candidates]
        assert len(names) == len(set(names))

    def test_dblp_linked_for_scholar_candidates(self, hub, world):
        expansions = expansions_for(world, hub)
        extractor = CandidateExtractor(hub, PipelineConfig(max_candidates=8))
        candidates = extractor.extract_candidates(expansions)
        linked = [
            c
            for c in candidates
            if c.profile.source_id(SourceName.DBLP) is not None
        ]
        # DBLP covers everyone, so essentially all candidates must link.
        assert len(linked) == len(candidates)

    def test_publons_fields_applied_when_covered(self, hub, world):
        expansions = expansions_for(world, hub, count=4)
        extractor = CandidateExtractor(hub, PipelineConfig(max_candidates=20))
        candidates = extractor.extract_candidates(expansions)
        with_reviews = [c for c in candidates if c.review_count > 0]
        assert with_reviews, "no candidate carries review history"
        for candidate in with_reviews:
            assert candidate.venues_reviewed

    def test_empty_expansion_gives_no_candidates(self, hub):
        extractor = CandidateExtractor(hub)
        assert extractor.extract_candidates([]) == []

    def test_unknown_keyword_gives_no_candidates(self, hub):
        extractor = CandidateExtractor(hub)
        expansions = [
            ExpandedKeyword(
                keyword="antigravity pottery", topic_id="", score=1.0,
                seed="antigravity pottery", depth=0,
            )
        ]
        assert extractor.extract_candidates(expansions) == []

    def test_ranking_of_pool_by_aggregate_match(self, hub, world):
        expansions = expansions_for(world, hub, count=3)
        config = PipelineConfig(max_candidates=3)
        extractor = CandidateExtractor(hub, config)
        small_pool = extractor.extract_candidates(expansions)
        config_large = PipelineConfig(max_candidates=100)
        large_pool = CandidateExtractor(hub, config_large).extract_candidates(
            expansions
        )
        # The capped pool must be a prefix-quality subset: every kept
        # candidate's aggregate match >= the best dropped one's.
        if len(large_pool) > len(small_pool):
            kept_scores = [sum(c.matched_keywords.values()) for c in small_pool]
            small_ids = {c.candidate_id for c in small_pool}
            dropped = [
                c for c in large_pool if c.candidate_id not in small_ids
            ]
            dropped_scholar = [
                sum(c.matched_keywords.values())
                for c in dropped
                if c.candidate_id.startswith("sch_")
            ]
            if dropped_scholar and kept_scores:
                assert min(kept_scores) >= max(dropped_scholar) - 1e-9
