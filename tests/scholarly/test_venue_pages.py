"""Tests for DBLP venue search and venue pages (Fig. 2's outlet crawl)."""

import pytest

from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub


class TestVenueSearch:
    def test_exact_name_resolves(self, shared_hub, world):
        venue = world.journal_venues()[0]
        hits = shared_hub.dblp.search_venue(venue.name)
        assert any(h["venue_id"] == venue.venue_id for h in hits)

    def test_partial_name_matches(self, shared_hub, world):
        venue = world.journal_venues()[0]
        fragment = venue.name.split(" ")[-1]
        hits = shared_hub.dblp.search_venue(fragment)
        assert any(h["venue_id"] == venue.venue_id for h in hits)

    def test_case_insensitive(self, shared_hub, world):
        venue = world.journal_venues()[0]
        assert shared_hub.dblp.search_venue(venue.name.upper())

    def test_no_match(self, shared_hub):
        assert shared_hub.dblp.search_venue("Annals of Improbability") == []

    def test_empty_query(self, shared_hub):
        assert shared_hub.dblp.search_venue("") == []


class TestVenuePage:
    def test_page_contents(self, shared_hub, world):
        venue = world.journal_venues()[0]
        page = shared_hub.dblp.venue_page(venue.venue_id)
        assert page["name"] == venue.name
        assert page["venue_type"] == "journal"
        expected = sum(
            1 for p in world.publications.values() if p.venue_id == venue.venue_id
        )
        assert page["publication_count"] == expected
        assert len(page["recent_publications"]) <= 25

    def test_recent_first(self, shared_hub, world):
        venue = world.journal_venues()[0]
        page = shared_hub.dblp.venue_page(venue.venue_id)
        years = [p["year"] for p in page["recent_publications"]]
        assert years == sorted(years, reverse=True)

    def test_topics_resolved_to_labels(self, shared_hub, world):
        venue = world.journal_venues()[0]
        page = shared_hub.dblp.venue_page(venue.venue_id)
        assert page["topics"]
        assert all(isinstance(t, str) and t for t in page["topics"])

    def test_missing_venue(self, shared_hub):
        assert shared_hub.dblp.venue_page("venue-nope") is None


class TestTitleSearch:
    def test_finds_publication_by_its_own_title(self, shared_hub, world):
        pub = next(iter(world.publications.values()))
        hits = shared_hub.dblp.search_title(pub.title)
        assert any(h["id"] == pub.pub_id for h in hits)

    def test_ranked_by_relevance(self, shared_hub, world):
        pub = next(iter(world.publications.values()))
        hits = shared_hub.dblp.search_title(pub.title, limit=10)
        relevances = [h["relevance"] for h in hits]
        assert relevances == sorted(relevances, reverse=True)

    def test_limit_respected(self, shared_hub):
        hits = shared_hub.dblp.search_title("efficient scalable", limit=3)
        assert len(hits) <= 3

    def test_stopword_only_query_empty(self, shared_hub):
        assert shared_hub.dblp.search_title("of the and") == []

    def test_no_match(self, shared_hub):
        assert shared_hub.dblp.search_title("zymurgy quixotic") == []


class TestOutletResolution:
    def test_pipeline_canonicalizes_target_venue(self, world, manuscript):
        import dataclasses

        hub = ScholarlyHub.deploy(world)
        # Feed a sloppily-cased target name; the crawl_outlet phase must
        # canonicalize it so familiarity matching works.
        sloppy = dataclasses.replace(
            manuscript, target_venue=manuscript.target_venue.upper()
        )
        result = Minaret(hub).recommend(sloppy)
        assert result.manuscript.target_venue == manuscript.target_venue
        assert result.phase("crawl_outlet").requests >= 1

    def test_unknown_target_left_untouched(self, world, manuscript):
        import dataclasses

        hub = ScholarlyHub.deploy(world)
        odd = dataclasses.replace(
            manuscript, target_venue="Journal of Nonexistence"
        )
        result = Minaret(hub).recommend(odd)
        assert result.manuscript.target_venue == "Journal of Nonexistence"

    def test_no_target_venue_skips_crawl(self, world, manuscript):
        import dataclasses

        hub = ScholarlyHub.deploy(world)
        none = dataclasses.replace(manuscript, target_venue="")
        result = Minaret(hub).recommend(none)
        assert result.phase("crawl_outlet").requests == 0