"""Tests for the canonical record types and metric helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scholarly.records import (
    Affiliation,
    MergedProfile,
    Metrics,
    SourceName,
    compute_h_index,
    compute_i10_index,
)


class TestHIndex:
    def test_known_value(self):
        assert compute_h_index([10, 8, 5, 4, 3]) == 4

    def test_empty(self):
        assert compute_h_index([]) == 0

    def test_all_zeros(self):
        assert compute_h_index([0, 0, 0]) == 0

    def test_single_cited_paper(self):
        assert compute_h_index([100]) == 1

    def test_uniform(self):
        assert compute_h_index([3, 3, 3, 3]) == 3

    def test_order_invariant(self):
        assert compute_h_index([1, 5, 3]) == compute_h_index([5, 3, 1])

    @given(st.lists(st.integers(0, 100), max_size=50))
    def test_bounded_by_paper_count(self, counts):
        h = compute_h_index(counts)
        assert 0 <= h <= len(counts)

    @given(st.lists(st.integers(0, 100), max_size=50))
    def test_definition(self, counts):
        h = compute_h_index(counts)
        ranked = sorted(counts, reverse=True)
        assert sum(1 for c in ranked[:h] if c >= h) == h
        if h < len(ranked):
            assert ranked[h] < h + 1


class TestI10:
    def test_known_value(self):
        assert compute_i10_index([50, 10, 9, 3]) == 2

    def test_empty(self):
        assert compute_i10_index([]) == 0


class TestMergedProfile:
    def make_profile(self):
        return MergedProfile(
            canonical_name="Ada Lovelace",
            source_ids=(
                (SourceName.DBLP, "Ada Lovelace"),
                (SourceName.GOOGLE_SCHOLAR, "sch_abc"),
            ),
            affiliations=(
                Affiliation("Analytical Engines Ltd", "UK", 2010, 2014),
                Affiliation("Babbage Institute", "UK", 2015, None),
            ),
            metrics=Metrics(citations=100, h_index=5, i10_index=3),
        )

    def test_source_id_lookup(self):
        profile = self.make_profile()
        assert profile.source_id(SourceName.DBLP) == "Ada Lovelace"
        assert profile.source_id(SourceName.PUBLONS) is None

    def test_current_affiliations(self):
        profile = self.make_profile()
        current = profile.current_affiliations(2019)
        assert [a.institution for a in current] == ["Babbage Institute"]

    def test_past_affiliations_by_year(self):
        profile = self.make_profile()
        past = profile.current_affiliations(2012)
        assert [a.institution for a in past] == ["Analytical Engines Ltd"]
