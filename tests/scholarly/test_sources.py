"""Integration tests for the six simulated source services + clients.

Each service is exercised through its client over the real simulated
HTTP path, against the shared session world.
"""

import pytest

from repro.scholarly.records import SourceName
from repro.text.normalize import canonical_person_name


def covered_author(world, source):
    """First world author with a profile at ``source``."""
    for author_id in sorted(world.authors):
        if source in world.authors[author_id].covered_by:
            return world.authors[author_id]
    raise RuntimeError(f"no author covered by {source}")


def uncovered_author(world, source):
    """First world author WITHOUT a profile at ``source``."""
    for author_id in sorted(world.authors):
        author = world.authors[author_id]
        if source not in author.covered_by:
            # Only meaningful if nobody sharing the name is covered either.
            same_name = world.authors_by_name(author.name)
            if all(source not in a.covered_by for a in same_name):
                return author
    return None


class TestDblp:
    def test_search_finds_author(self, shared_hub, world):
        author = covered_author(world, SourceName.DBLP)
        hits = shared_hub.dblp.search_author(author.name)
        assert any(hit["name"] == author.name for hit in hits)

    def test_search_by_alternate_written_form(self, shared_hub, world):
        author = covered_author(world, SourceName.DBLP)
        family = author.name.rsplit(" ", 1)[-1]
        given = author.name.rsplit(" ", 1)[0]
        hits = shared_hub.dblp.search_author(f"{family}, {given}")
        assert hits

    def test_homonyms_get_numeric_suffixes(self, shared_hub, world):
        collision = next(
            (
                a
                for a in world.authors.values()
                if len(world.authors_by_name(a.name)) > 1
            ),
            None,
        )
        assert collision is not None
        hits = shared_hub.dblp.search_author(collision.name)
        assert len(hits) > 1
        assert all(hit["pid"].split(" ")[-1].isdigit() for hit in hits)

    def test_author_profile(self, shared_hub, world):
        author = covered_author(world, SourceName.DBLP)
        pid = shared_hub.dblp_service.pid_of(author.author_id)
        profile = shared_hub.dblp.author_profile(pid)
        assert profile.source is SourceName.DBLP
        assert set(profile.publication_ids) == set(
            world.publications_by_author.get(author.author_id, [])
        )

    def test_no_metrics_on_dblp(self, shared_hub, world):
        author = covered_author(world, SourceName.DBLP)
        pid = shared_hub.dblp_service.pid_of(author.author_id)
        assert shared_hub.dblp.author_profile(pid).metrics is None

    def test_publication_record(self, shared_hub, world):
        pub = next(iter(world.publications.values()))
        record = shared_hub.dblp.publication(pub.pub_id)
        assert record["title"] == pub.title
        assert record["year"] == pub.year

    def test_missing_publication_none(self, shared_hub):
        assert shared_hub.dblp.publication("pub-999999") is None

    def test_author_publications_have_venues(self, shared_hub, world):
        author = covered_author(world, SourceName.DBLP)
        pid = shared_hub.dblp_service.pid_of(author.author_id)
        pubs = shared_hub.dblp.author_publications(pid)
        assert pubs
        assert all("venue" in p and "year" in p for p in pubs)

    def test_coauthors(self, shared_hub, world):
        author_id = next(a for a, c in world.coauthors.items() if c)
        pid = shared_hub.dblp_service.pid_of(author_id)
        coauthor_pids = set(shared_hub.dblp.coauthor_pids(pid))
        expected = {
            shared_hub.dblp_service.pid_of(c) for c in world.coauthors[author_id]
        }
        assert coauthor_pids == expected

    def test_records_per_year_matches_world(self, shared_hub, world):
        assert shared_hub.dblp.records_per_year() == world.dblp_records_per_year()


class TestGoogleScholar:
    def test_profile_roundtrip(self, shared_hub, world):
        author = covered_author(world, SourceName.GOOGLE_SCHOLAR)
        user = shared_hub.scholar_service.user_of(author.author_id)
        profile = shared_hub.scholar.profile(user)
        assert profile.name == author.name
        assert profile.metrics is not None

    def test_uncovered_author_absent(self, shared_hub, world):
        author = uncovered_author(world, SourceName.GOOGLE_SCHOLAR)
        if author is None:
            pytest.skip("world covers everyone on scholar")
        assert shared_hub.scholar.search_author(author.name) == []

    def test_citations_inflated_over_truth(self, shared_hub, world):
        author = covered_author(world, SourceName.GOOGLE_SCHOLAR)
        user = shared_hub.scholar_service.user_of(author.author_id)
        profile = shared_hub.scholar.profile(user)
        truth = sum(world.author_citations(author.author_id))
        assert profile.metrics.citations >= truth

    def test_interest_search_consistent_with_profiles(self, shared_hub, world):
        author = covered_author(world, SourceName.GOOGLE_SCHOLAR)
        user = shared_hub.scholar_service.user_of(author.author_id)
        profile = shared_hub.scholar.profile(user)
        assert profile.interests
        users = shared_hub.scholar.scholars_by_interest(profile.interests[0])
        assert user in users

    def test_interest_search_unknown_keyword(self, shared_hub):
        assert shared_hub.scholar.scholars_by_interest("warp drive design") == []

    def test_publications_listing(self, shared_hub, world):
        author = covered_author(world, SourceName.GOOGLE_SCHOLAR)
        user = shared_hub.scholar_service.user_of(author.author_id)
        pubs = shared_hub.scholar.publications(user)
        assert len(pubs) == len(world.publications_by_author.get(author.author_id, []))
        assert all("citations" in p and "keywords" in p for p in pubs)

    def test_missing_profile_none(self, shared_hub):
        assert shared_hub.scholar.profile("sch_nonexistent") is None


class TestPublons:
    def test_review_count_matches_world(self, shared_hub, world):
        author = covered_author(world, SourceName.PUBLONS)
        reviewer_id = shared_hub.publons_service.reviewer_id_of(author.author_id)
        summary = shared_hub.publons.reviewer_summary(reviewer_id)
        assert summary["review_count"] == len(world.author_reviews(author.author_id))

    def test_reviews_listing(self, shared_hub, world):
        author = covered_author(world, SourceName.PUBLONS)
        reviewer_id = shared_hub.publons_service.reviewer_id_of(author.author_id)
        reviews = shared_hub.publons.reviews(reviewer_id)
        assert len(reviews) == len(world.author_reviews(author.author_id))

    def test_venues_reviewed_sums_to_total(self, shared_hub, world):
        author = covered_author(world, SourceName.PUBLONS)
        reviewer_id = shared_hub.publons_service.reviewer_id_of(author.author_id)
        summary = shared_hub.publons.reviewer_summary(reviewer_id)
        assert (
            sum(v["count"] for v in summary["venues_reviewed"])
            == summary["review_count"]
        )

    def test_summary_omits_raw_reviews(self, shared_hub, world):
        author = covered_author(world, SourceName.PUBLONS)
        reviewer_id = shared_hub.publons_service.reviewer_id_of(author.author_id)
        assert "reviews" not in shared_hub.publons.reviewer_summary(reviewer_id)

    def test_interest_search(self, shared_hub, world):
        author = covered_author(world, SourceName.PUBLONS)
        reviewer_id = shared_hub.publons_service.reviewer_id_of(author.author_id)
        summary = shared_hub.publons.reviewer_summary(reviewer_id)
        if not summary["interests"]:
            pytest.skip("author registered no interests")
        reviewers = shared_hub.publons.reviewers_by_interest(summary["interests"][0])
        assert reviewer_id in reviewers

    def test_missing_reviewer(self, shared_hub):
        assert shared_hub.publons.reviewer_summary("P-nothere") is None
        assert shared_hub.publons.reviews("P-nothere") == []


class TestAcm:
    def test_profile_subset_of_truth(self, shared_hub, world):
        author = covered_author(world, SourceName.ACM_DL)
        profile_id = shared_hub.acm_service.profile_id_of(author.author_id)
        profile = shared_hub.acm.profile(profile_id)
        truth = set(world.publications_by_author.get(author.author_id, []))
        assert set(profile.publication_ids) <= truth

    def test_citations_deflated_under_scholar(self, shared_hub, world):
        author = covered_author(world, SourceName.ACM_DL)
        if SourceName.GOOGLE_SCHOLAR not in author.covered_by:
            pytest.skip("need scholar coverage for comparison")
        acm = shared_hub.acm.profile(
            shared_hub.acm_service.profile_id_of(author.author_id)
        )
        scholar = shared_hub.scholar.profile(
            shared_hub.scholar_service.user_of(author.author_id)
        )
        assert acm.metrics.citations <= scholar.metrics.citations

    def test_search(self, shared_hub, world):
        author = covered_author(world, SourceName.ACM_DL)
        hits = shared_hub.acm.search_author(author.name)
        assert any(
            canonical_person_name(hit["name"]) == canonical_person_name(author.name)
            for hit in hits
        )


class TestOrcid:
    def test_id_format(self, shared_hub, world):
        author = covered_author(world, SourceName.ORCID)
        orcid = shared_hub.orcid_service.orcid_of(author.author_id)
        parts = orcid.split("-")
        assert len(parts) == 4
        assert all(len(p) == 4 and p.isdigit() for p in parts)

    def test_employment_history_is_authoritative(self, shared_hub, world):
        author = covered_author(world, SourceName.ORCID)
        orcid = shared_hub.orcid_service.orcid_of(author.author_id)
        record = shared_hub.orcid.record(orcid)
        assert record.affiliations == author.affiliations

    def test_search(self, shared_hub, world):
        author = covered_author(world, SourceName.ORCID)
        hits = shared_hub.orcid.search(author.name)
        assert any(h["orcid"] == shared_hub.orcid_service.orcid_of(author.author_id) for h in hits)


class TestResearcherId:
    def test_id_format(self, shared_hub, world):
        author = covered_author(world, SourceName.RESEARCHER_ID)
        rid = shared_hub.rid_service.rid_of(author.author_id)
        letter, number, year = rid.split("-")
        assert letter.isalpha() and len(letter) == 1
        assert number.isdigit()
        assert year.isdigit() and len(year) == 4

    def test_lowest_citation_counts(self, shared_hub, world):
        author = covered_author(world, SourceName.RESEARCHER_ID)
        rid_profile = shared_hub.rid.profile(
            shared_hub.rid_service.rid_of(author.author_id)
        )
        truth = sum(world.author_citations(author.author_id))
        assert rid_profile.metrics.citations <= truth

    def test_search_and_profile(self, shared_hub, world):
        author = covered_author(world, SourceName.RESEARCHER_ID)
        hits = shared_hub.rid.search(author.name)
        assert hits
        profile = shared_hub.rid.profile(hits[0]["rid"])
        assert profile is not None
