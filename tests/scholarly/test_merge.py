"""Tests for cross-source profile merging."""

import pytest

from repro.scholarly.merge import merge_source_profiles
from repro.scholarly.records import (
    Affiliation,
    Metrics,
    SourceName,
    SourceProfile,
)


def dblp_profile(**overrides):
    base = dict(
        source=SourceName.DBLP,
        source_author_id="Ada Lovelace",
        name="Ada Lovelace",
        publication_ids=("pub-1", "pub-2"),
    )
    base.update(overrides)
    return SourceProfile(**base)


def scholar_profile(**overrides):
    base = dict(
        source=SourceName.GOOGLE_SCHOLAR,
        source_author_id="sch_1",
        name="Ada K. Lovelace",
        interests=("rdf", "semantic web"),
        metrics=Metrics(citations=120, h_index=6, i10_index=4),
        affiliations=(Affiliation("Somewhere", "UK", 0, None),),
        publication_ids=("pub-2", "pub-3"),
    )
    base.update(overrides)
    return SourceProfile(**base)


def orcid_profile(**overrides):
    base = dict(
        source=SourceName.ORCID,
        source_author_id="0000-0001-2345-6789",
        name="Ada Lovelace",
        affiliations=(
            Affiliation("Analytical Engines", "UK", 2010, 2015),
            Affiliation("Babbage Institute", "UK", 2016, None),
        ),
        publication_ids=("pub-1",),
    )
    base.update(overrides)
    return SourceProfile(**base)


class TestValidation:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_source_profiles([])

    def test_duplicate_source_rejected(self):
        with pytest.raises(ValueError, match="dblp"):
            merge_source_profiles([dblp_profile(), dblp_profile()])


class TestFieldFusion:
    def test_longest_name_wins(self):
        merged = merge_source_profiles([dblp_profile(), scholar_profile()])
        assert merged.canonical_name == "Ada K. Lovelace"
        assert "Ada Lovelace" in merged.aliases

    def test_orcid_affiliations_preferred(self):
        merged = merge_source_profiles(
            [dblp_profile(), scholar_profile(), orcid_profile()]
        )
        institutions = [a.institution for a in merged.affiliations]
        assert institutions == ["Analytical Engines", "Babbage Institute"]

    def test_affiliations_unioned_without_orcid(self):
        merged = merge_source_profiles([dblp_profile(), scholar_profile()])
        assert [a.institution for a in merged.affiliations] == ["Somewhere"]

    def test_scholar_metrics_preferred(self):
        acm = SourceProfile(
            source=SourceName.ACM_DL,
            source_author_id="acm1",
            name="Ada Lovelace",
            metrics=Metrics(citations=50, h_index=3, i10_index=1),
        )
        merged = merge_source_profiles([acm, scholar_profile()])
        assert merged.metrics.citations == 120

    def test_metrics_fallback_chain(self):
        acm = SourceProfile(
            source=SourceName.ACM_DL,
            source_author_id="acm1",
            name="Ada Lovelace",
            metrics=Metrics(citations=50, h_index=3, i10_index=1),
        )
        merged = merge_source_profiles([dblp_profile(), acm])
        assert merged.metrics.citations == 50

    def test_no_metrics_defaults_to_zero(self):
        merged = merge_source_profiles([dblp_profile()])
        assert merged.metrics.citations == 0

    def test_publications_unioned_in_order(self):
        merged = merge_source_profiles([dblp_profile(), scholar_profile()])
        assert merged.publication_ids == ("pub-1", "pub-2", "pub-3")

    def test_interests_scholar_first(self):
        publons = SourceProfile(
            source=SourceName.PUBLONS,
            source_author_id="P-1",
            name="Ada Lovelace",
            interests=("peer review", "rdf"),
        )
        merged = merge_source_profiles([publons, scholar_profile()])
        assert merged.interests == ("rdf", "semantic web", "peer review")

    def test_source_ids_recorded(self):
        merged = merge_source_profiles([dblp_profile(), scholar_profile()])
        assert merged.source_id(SourceName.DBLP) == "Ada Lovelace"
        assert merged.source_id(SourceName.GOOGLE_SCHOLAR) == "sch_1"
        assert merged.source_id(SourceName.ORCID) is None
