"""Tests for the hub deployment and source behaviour wiring."""

import pytest

from repro.scholarly.records import SourceName
from repro.scholarly.registry import (
    DEFAULT_BEHAVIOUR,
    ScholarlyHub,
    SourceBehaviour,
)
from repro.web.crawler import RetryPolicy


class TestDeploy:
    def test_all_hosts_registered(self, hub):
        hosts = set(hub.http.hosts())
        assert hosts == {
            "dblp.org",
            "scholar.google.com",
            "publons.com",
            "dl.acm.org",
            "orcid.org",
            "researcherid.com",
        }

    def test_clients_dict_complete(self, hub):
        clients = hub.clients()
        assert set(clients) == set(SourceName)

    def test_accounting_starts_at_zero(self, hub):
        assert hub.total_requests() == 0
        assert hub.total_latency() == 0.0

    def test_requests_accumulate(self, hub, world):
        author = next(iter(world.authors.values()))
        hub.dblp.search_author(author.name)
        assert hub.total_requests() == 1
        assert hub.total_latency() > 0.0

    def test_default_cache_is_on_the_fly(self, hub, world):
        author = next(iter(world.authors.values()))
        hub.dblp.search_author(author.name)
        hub.dblp.search_author(author.name)
        assert hub.http.stats["dblp.org"].requests == 2

    def test_positive_ttl_enables_caching(self, world):
        hub = ScholarlyHub.deploy(world, cache_ttl=3600.0)
        author = next(iter(world.authors.values()))
        hub.dblp.search_author(author.name)
        hub.dblp.search_author(author.name)
        assert hub.http.stats["dblp.org"].requests == 1
        assert hub.crawler.cache_hits == 1


class TestBehaviourModels:
    def test_default_behaviour_covers_all_sources(self):
        assert set(DEFAULT_BEHAVIOUR) == set(SourceName)

    def test_scholar_is_slowest(self):
        scholar = DEFAULT_BEHAVIOUR[SourceName.GOOGLE_SCHOLAR]
        dblp = DEFAULT_BEHAVIOUR[SourceName.DBLP]
        assert scholar.latency_base > dblp.latency_base

    def test_custom_behaviour_applied(self, world):
        behaviour = {
            source: SourceBehaviour(latency_base=0.0, latency_jitter=0.0)
            for source in SourceName
        }
        hub = ScholarlyHub.deploy(world, behaviour=behaviour)
        author = next(iter(world.authors.values()))
        hub.dblp.search_author(author.name)
        assert hub.total_latency() == 0.0

    def test_faults_are_retried_transparently(self, world):
        behaviour = dict(DEFAULT_BEHAVIOUR)
        behaviour[SourceName.DBLP] = SourceBehaviour(
            latency_base=0.001, latency_jitter=0.0, failure_probability=0.5
        )
        hub = ScholarlyHub.deploy(
            world,
            behaviour=behaviour,
            retry=RetryPolicy(max_attempts=10, base_backoff=0.001),
        )
        # Several distinct queries; each must eventually succeed despite
        # 50% faults.  (Fault draws are keyed by request content, so
        # repeating one identical request would re-draw one fate — the
        # spread of authors guarantees some first attempts fail.)
        import itertools

        for author in itertools.islice(world.authors.values(), 8):
            assert hub.dblp.search_author(author.name) is not None
        assert hub.http.stats["dblp.org"].faults > 0
