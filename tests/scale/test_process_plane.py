"""Process-backed scale queries: bit-identity, properties, pickling.

The module keeps ONE process pool alive (spawning interpreters dominates
test wall-clock) and reuses it for both the acceptance grid rows and the
hypothesis property — the executor contract guarantees a pool outlives
any single map.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency import create_executor
from repro.scale.bench import popular_labels
from repro.scale.plane import ScalePlane
from repro.scale.worker import (
    TASK_TYPES,
    ComponentRowsTask,
    RetrieveShardTask,
    ScaleWorkerBootstrap,
    ScoreRowsTask,
    ScreenShardTask,
    run_scale_task,
)
from repro.world.config import WorldConfig
from repro.world.streaming import StreamingWorld

_CONFIG = WorldConfig(author_count=200, seed=9)


@pytest.fixture(scope="module")
def scale_world():
    return StreamingWorld(_CONFIG, block_size=32)


@pytest.fixture(scope="module")
def labels(scale_world):
    return popular_labels(scale_world, sample=200, count=4)


@pytest.fixture(scope="module")
def submitters():
    return ["author-0", "author-1"]


@pytest.fixture(scope="module")
def sequential_plane(scale_world):
    plane = ScalePlane(scale_world, n_shards=4)
    plane.ingest()
    return plane


@pytest.fixture(scope="module")
def process_executor(sequential_plane):
    executor = create_executor(
        2, "process", bootstrap=ScaleWorkerBootstrap.for_plane(sequential_plane)
    )
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def process_plane(scale_world, process_executor):
    plane = ScalePlane(scale_world, n_shards=4, executor=process_executor)
    plane.ingest()
    return plane


class TestBitIdentity:
    @pytest.mark.parametrize("n_shards", [1, 4])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_grid_point_matches_brute_force(
        self, scale_world, labels, submitters, n_shards, workers
    ):
        keywords = {labels[0]: 1.0, labels[1]: 0.8, labels[2]: 0.5}
        reference_plane = ScalePlane(scale_world, n_shards=n_shards)
        reference_plane.ingest()
        reference = reference_plane.brute_force_topk(keywords, submitters, k=10)
        executor = create_executor(
            workers,
            "process",
            bootstrap=ScaleWorkerBootstrap.for_plane(reference_plane),
        )
        plane = ScalePlane(scale_world, n_shards=n_shards, executor=executor)
        plane.ingest()
        try:
            hits, stats = plane.topk(keywords, submitters, k=10)
        finally:
            executor.close()
        assert hits == reference
        assert len(stats.shard_costs) == n_shards

    def test_shard_cost_accounting_identical(
        self, sequential_plane, process_plane, labels, submitters
    ):
        keywords = {labels[0]: 1.0, labels[1]: 0.8}
        __, seq_stats = sequential_plane.topk(keywords, submitters, k=10)
        __, proc_stats = process_plane.topk(keywords, submitters, k=10)
        assert proc_stats.shard_costs == seq_stats.shard_costs
        assert proc_stats.pool_size == seq_stats.pool_size
        assert proc_stats.scored == seq_stats.scored


class TestProcessSequentialProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_process_equals_sequential_for_any_query(
        self, data, sequential_plane, process_plane, labels, submitters
    ):
        """Property: whatever query hypothesis draws, the process plane
        answers exactly like the in-process sequential plane — ids,
        floats, order, and per-shard cost units."""
        chosen = data.draw(
            st.lists(
                st.sampled_from(labels), min_size=1, max_size=3, unique=True
            )
        )
        weights = data.draw(
            st.lists(
                st.sampled_from([0.25, 0.5, 0.8, 1.0]),
                min_size=len(chosen),
                max_size=len(chosen),
            )
        )
        k = data.draw(st.sampled_from([1, 5, 10]))
        pool_limit = data.draw(st.sampled_from([None, 25]))
        keywords = dict(zip(chosen, weights))
        seq_hits, seq_stats = sequential_plane.topk(
            keywords, submitters, k=k, pool_limit=pool_limit
        )
        proc_hits, proc_stats = process_plane.topk(
            keywords, submitters, k=k, pool_limit=pool_limit
        )
        assert proc_hits == seq_hits
        assert proc_stats.shard_costs == seq_stats.shard_costs


class TestDescriptorPickling:
    def _examples(self, sequential_plane):
        return {
            RetrieveShardTask: RetrieveShardTask(
                shard_id=1,
                terms=("graphs", "graphs", "ml"),
                weights={"graphs": 1.0, "ml": 0.5},
                idf={"graphs": 1.25, "ml": 2.5},
            ),
            ScreenShardTask: ScreenShardTask(
                shard_id=0,
                members=((3, "author-3"), (7, "author-7")),
                submitters=frozenset({"author-0"}),
                submitter_affs=(("mit", 1, 2),),
            ),
            ComponentRowsTask: ComponentRowsTask(
                shard_id=2, members=("author-3", "author-7")
            ),
            ScoreRowsTask: ScoreRowsTask(
                rows=(("author-3", 1.0, 2.0, 3.0, 4.0, 0.5),),
                maxima=(1.0, 2.0, 3.0, 4.0),
                k=5,
            ),
        }

    def test_every_task_type_round_trips(self, sequential_plane):
        examples = self._examples(sequential_plane)
        assert set(examples) == set(TASK_TYPES)
        for task_type in TASK_TYPES:
            task = examples[task_type]
            clone = pickle.loads(pickle.dumps(task))
            assert clone == task
            assert type(clone) is task_type

    def test_bootstrap_round_trips_and_rehydrates_equal_plane(
        self, sequential_plane, labels, submitters
    ):
        bootstrap = ScaleWorkerBootstrap.for_plane(sequential_plane)
        clone = pickle.loads(pickle.dumps(bootstrap))
        assert clone == bootstrap
        replica = clone.hydrate()
        keywords = {labels[0]: 1.0, labels[1]: 0.8}
        assert replica.topk(keywords, submitters, k=5) == sequential_plane.topk(
            keywords, submitters, k=5
        )

    def test_run_scale_task_requires_a_plane(self):
        import repro.scale.worker as worker_module

        saved = dict(worker_module._PARENT_PLANE)
        worker_module._PARENT_PLANE.clear()
        try:
            with pytest.raises(RuntimeError, match="no hydrated ScalePlane"):
                run_scale_task(
                    ScoreRowsTask(rows=(), maxima=(0.0, 0.0, 0.0, 0.0), k=1)
                )
        finally:
            worker_module._PARENT_PLANE.update(saved)
