"""Parity tests: sharded index/store vs their monolithic originals."""

import random

import pytest

from repro.concurrency import create_executor
from repro.scale import ShardedFeatureStore, ShardedInvertedIndex, shard_of
from repro.scale.plane import ScalePlane
from repro.scoring.features import FeatureStore, ScoringContext
from repro.storage.inverted import InvertedIndex
from repro.world.config import WorldConfig
from repro.world.streaming import StreamingWorld

_TERMS = ["rdf", "sparql", "graphs", "nlp", "provenance", "indexing"]


def _corpus(doc_count: int = 120, seed: int = 17) -> dict[str, dict[str, float]]:
    rng = random.Random(seed)
    docs = {}
    for i in range(doc_count):
        terms = rng.sample(_TERMS, rng.randint(1, 4))
        docs[f"doc-{i}"] = {t: round(rng.uniform(0.1, 3.0), 3) for t in terms}
    return docs


def _pair(n_shards: int, executor=None):
    mono, sharded = InvertedIndex(), ShardedInvertedIndex(n_shards, executor=executor)
    for doc_id, weights in _corpus().items():
        mono.add(doc_id, weights)
        sharded.add(doc_id, weights)
    return mono, sharded


class TestShardOf:
    def test_range_and_stability(self):
        for n in (1, 4, 16):
            assert all(0 <= shard_of(f"author-{i}", n) < n for i in range(200))
        assert shard_of("author-7", 16) == shard_of("author-7", 16)

    def test_not_process_randomized(self):
        # blake2b, not builtin hash: the value is a cross-process constant.
        assert shard_of("author-0", 16) == 1

    def test_single_shard_short_circuit(self):
        assert shard_of("anything", 1) == 0

    def test_spreads_documents(self):
        counts = [0] * 8
        for i in range(800):
            counts[shard_of(f"author-{i}", 8)] += 1
        assert min(counts) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedInvertedIndex(0)


class TestSearchParity:
    @pytest.mark.parametrize("n_shards", [1, 4, 16])
    def test_search_identical(self, n_shards):
        mono, sharded = _pair(n_shards)
        queries = [
            ["rdf"],
            ["rdf", "sparql", "nlp"],
            ["missing-term"],
            _TERMS,
            ["rdf", "rdf", "sparql"],  # duplicate query terms
        ]
        for terms in queries:
            assert sharded.search(terms) == mono.search(terms)
            assert sharded.search(terms, use_idf=False) == mono.search(
                terms, use_idf=False
            )
            weights = {t: 0.5 + 0.1 * i for i, t in enumerate(terms)}
            assert sharded.search(terms, query_weights=weights) == mono.search(
                terms, query_weights=weights
            )

    @pytest.mark.parametrize("n_shards", [4, 16])
    def test_limit_identical(self, n_shards):
        mono, sharded = _pair(n_shards)
        for limit in (0, 1, 5, 1000):
            assert sharded.search(_TERMS, limit=limit) == mono.search(
                _TERMS, limit=limit
            )

    @pytest.mark.parametrize("workers", [2, 8])
    def test_threaded_fanout_identical(self, workers):
        executor = create_executor(workers, "thread")
        mono, sharded = _pair(8, executor=executor)
        assert sharded.search(_TERMS) == mono.search(_TERMS)
        assert sharded.search_any(_TERMS) == mono.search_any(_TERMS)

    @pytest.mark.parametrize("n_shards", [1, 4, 16])
    def test_boolean_parity(self, n_shards):
        mono, sharded = _pair(n_shards)
        assert sharded.search_any(["rdf", "nlp"]) == mono.search_any(["rdf", "nlp"])
        assert sharded.search_any([]) == mono.search_any([])
        # AND across shards intersects per shard then unions: each doc
        # lives in exactly one shard, so the result set is identical.
        assert sharded.search_all(["rdf", "sparql"]) == mono.search_all(
            ["rdf", "sparql"]
        )
        assert sharded.search_all(["missing"]) == mono.search_all(["missing"])


class TestWriteParity:
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_replace_term(self, n_shards):
        mono, sharded = _pair(n_shards)
        new = {f"doc-{i}": 1.5 for i in range(0, 40, 3)}
        mono.replace_term("rdf", new)
        sharded.replace_term("rdf", new)
        assert sharded.postings("rdf") == mono.postings("rdf")
        assert sharded.search(_TERMS) == mono.search(_TERMS)
        mono.replace_term("rdf", {})
        sharded.replace_term("rdf", {})
        assert sharded.postings("rdf") == [] == mono.postings("rdf")
        assert sharded.document_frequency("rdf") == 0

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_add_term_and_remove(self, n_shards):
        mono, sharded = _pair(n_shards)
        extra = {f"doc-{i}": 0.7 for i in range(50, 70)}
        mono.add_term("fresh", extra)
        sharded.add_term("fresh", extra)
        assert sharded.postings("fresh") == mono.postings("fresh")
        for doc_id in ("doc-3", "doc-55", "doc-999"):
            mono.remove(doc_id)
            sharded.remove(doc_id)
        assert len(sharded) == len(mono)
        assert sharded.search(_TERMS + ["fresh"]) == mono.search(_TERMS + ["fresh"])
        assert "doc-3" not in sharded
        assert "doc-4" in sharded
        assert sharded.terms_of("doc-4") == mono.terms_of("doc-4")

    def test_stats_aggregate_matches_monolithic(self):
        mono, sharded = _pair(4)
        mono_stats, sharded_stats = mono.stats(), sharded.stats()
        for key in ("documents", "postings", "terms"):
            assert sharded_stats[key] == mono_stats[key]
        assert len(sharded_stats["per_shard"]) == 4
        assert sum(s["documents"] for s in sharded_stats["per_shard"]) == len(mono)


class TestEpochs:
    def test_writes_advance_owning_shard(self):
        index = ShardedInvertedIndex(4)
        before = index.epoch
        index.add("doc-1", {"rdf": 1.0})
        assert index.epoch > before

    def test_bump_epoch_aligns_all_shards(self):
        index = ShardedInvertedIndex(4)
        index.add("doc-1", {"rdf": 1.0})
        index.add("doc-2", {"rdf": 1.0})
        target = index.bump_epoch()
        assert target == index.epoch
        assert all(shard.epoch == target for shard in index._shards)
        assert index.bump_epoch() == target + 1


class TestShardedFeatureStore:
    @pytest.fixture(scope="class")
    def candidates(self):
        world = StreamingWorld(
            WorldConfig(author_count=64, seed=3), block_size=16
        )
        plane = ScalePlane(world, n_shards=1)
        return [plane.candidate_of(f"author-{i}") for i in range(40)]

    @pytest.mark.parametrize("n_shards", [1, 4, 16])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_batch_parity_in_input_order(self, candidates, n_shards, workers):
        ctx = ScoringContext(current_year=2024, half_life_years=3.0)
        mono = FeatureStore()
        sharded = ShardedFeatureStore(
            n_shards,
            executor=create_executor(workers, "thread" if workers > 1 else "auto"),
        )
        assert sharded.features_for_many(candidates, ctx) == (
            mono.features_for_many(candidates, ctx)
        )

    def test_single_lookup_routes_consistently(self, candidates):
        ctx = ScoringContext(current_year=2024, half_life_years=3.0)
        sharded = ShardedFeatureStore(4)
        first = sharded.features_for(candidates[0], ctx)
        assert sharded.features_for(candidates[0], ctx) == first
        assert sharded.built == 1
        assert sharded.reused == 1

    def test_epoch_provider_invalidates_every_shard(self, candidates):
        ctx = ScoringContext(current_year=2024, half_life_years=3.0)
        epoch = [0]
        sharded = ShardedFeatureStore(4, epoch_provider=lambda: epoch[0])
        sharded.features_for_many(candidates, ctx)
        built = sharded.built
        epoch[0] += 1
        sharded.features_for_many(candidates, ctx)
        assert sharded.built == 2 * built  # every entry rebuilt

    def test_capacity_below_shard_count_floors_at_one_slot_each(
        self, candidates
    ):
        # Degenerate regime from the class docstring: capacity=1 over 16
        # shards must not build any zero-capacity store — each shard
        # keeps one slot, bounding the cache at max(capacity, n_shards).
        ctx = ScoringContext(current_year=2024, half_life_years=3.0)
        sharded = ShardedFeatureStore(16, capacity=1)
        mono = FeatureStore()
        assert sharded.features_for_many(candidates, ctx) == (
            mono.features_for_many(candidates, ctx)
        )
        stats = sharded.stats()
        assert stats["entries"] <= 16
        assert all(s["entries"] <= 1 for s in stats["per_shard"])
        repeat = sharded.features_for_many(candidates, ctx)
        assert repeat == mono.features_for_many(candidates, ctx)
        assert sharded.reused > 0  # the single slot per shard does cache

    def test_stats_and_capacity_split(self, candidates):
        ctx = ScoringContext(current_year=2024, half_life_years=3.0)
        sharded = ShardedFeatureStore(4, capacity=8)
        sharded.features_for_many(candidates, ctx)
        stats = sharded.stats()
        assert stats["shards"] == 4
        assert stats["entries"] <= 8
        assert len(stats["per_shard"]) == 4
        with pytest.raises(ValueError):
            ShardedFeatureStore(0)
        with pytest.raises(ValueError):
            ShardedFeatureStore(4, capacity=0)
