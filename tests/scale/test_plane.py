"""End-to-end scale-plane tests: the sharded query path against its
brute-force reference, at every worker/shard combination the issue names."""

import pytest

from repro.concurrency import create_executor
from repro.scale.bench import popular_labels
from repro.scale.plane import ScalePlane, lpt_makespan, modeled_speedup
from repro.world.config import WorldConfig
from repro.world.streaming import StreamingWorld

_CONFIG = WorldConfig(author_count=200, seed=9)


@pytest.fixture(scope="module")
def scale_world():
    return StreamingWorld(_CONFIG, block_size=32)


@pytest.fixture(scope="module")
def keywords(scale_world):
    labels = popular_labels(scale_world, sample=200, count=3)
    return {labels[0]: 1.0, labels[1]: 0.8, labels[2]: 0.5}


@pytest.fixture(scope="module")
def submitters():
    return ["author-0", "author-1"]


@pytest.fixture(scope="module")
def reference(scale_world, keywords, submitters):
    plane = ScalePlane(scale_world, n_shards=1)
    plane.ingest()
    return plane.brute_force_topk(keywords, submitters, k=10)


def _plane(scale_world, n_shards, workers=1):
    executor = create_executor(workers, "thread" if workers > 1 else "auto")
    plane = ScalePlane(scale_world, n_shards=n_shards, executor=executor)
    plane.ingest()
    return plane


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("n_shards", [1, 4, 16])
    def test_topk_matches_brute_force_at_every_grid_point(
        self, scale_world, keywords, submitters, reference, n_shards, workers
    ):
        """The issue's acceptance grid: sharded top-k is bit-identical
        to the unsharded brute-force scan at 1/2/8 workers x 1/4/16
        shards — same ids, same floats, same order."""
        plane = _plane(scale_world, n_shards, workers)
        hits, stats = plane.topk(keywords, submitters, k=10)
        assert hits == reference
        assert stats.pool_size > 0
        assert len(stats.shard_costs) == n_shards

    def test_plain_keyword_list_query(self, scale_world, reference, keywords, submitters):
        plane = _plane(scale_world, 4)
        weighted, __ = plane.topk(keywords, submitters, k=10)
        unweighted, __ = plane.topk(list(keywords), submitters, k=10)
        assert [h.candidate_id for h in weighted] == [
            h.candidate_id for h in reference
        ]
        # Dropping the query weights re-ranks but stays canonical.
        assert unweighted == sorted(
            unweighted, key=lambda h: (-h.total_score, h.candidate_id)
        )

    def test_pool_limit_caps_work(self, scale_world, keywords, submitters):
        plane = _plane(scale_world, 4)
        __, capped = plane.topk(keywords, submitters, k=10, pool_limit=20)
        __, full = plane.topk(keywords, submitters, k=10, pool_limit=None)
        assert capped.pool_size == 20 < full.pool_size
        assert capped.sequential_cost < full.sequential_cost


class TestScreening:
    def test_submitters_never_recommended(self, scale_world, keywords):
        plane = _plane(scale_world, 4)
        submitters = [f"author-{i}" for i in range(8)]
        hits, __ = plane.topk(keywords, submitters, k=200)
        assert not ({h.candidate_id for h in hits} & set(submitters))

    def test_coauthors_screened_with_reasons(self, scale_world):
        plane = _plane(scale_world, 4)
        scholar = scale_world.scholar("author-5")
        coauthor = sorted(scholar.coauthor_ids)[0]
        pool = plane.retrieve(dict(scale_world.interest_weights(scale_world.author_index(coauthor))))
        verdicts = plane.screen(pool, ["author-5"])
        by_id = {v.candidate_id: v for v in verdicts}
        assert coauthor in by_id
        assert by_id[coauthor].has_conflict
        assert "coauthor:author-5" in by_id[coauthor].reasons

    def test_unknown_submitter_screens_nothing_extra(self, scale_world, keywords):
        plane = _plane(scale_world, 4)
        pool = plane.retrieve(keywords)
        baseline = plane.screen(pool, [])
        with_ghost = plane.screen(pool, ["author-99999"])
        assert baseline == with_ghost

    def test_verdicts_in_pool_order(self, scale_world, keywords):
        plane = _plane(scale_world, 16)
        pool = plane.retrieve(keywords)
        verdicts = plane.screen(pool, ["author-0"])
        assert [v.candidate_id for v in verdicts] == [
            m.candidate_id for m in pool
        ]


class TestIngest:
    def test_stats_cover_population(self, scale_world):
        plane = _plane(scale_world, 8)
        stats = plane.stats()
        assert stats["index"]["documents"] == 200
        assert stats["coi_candidates"] == 200
        assert stats["shards"] == 8

    def test_refresh_invalidates_features(self, scale_world, keywords, submitters):
        plane = _plane(scale_world, 4)
        first, __ = plane.topk(keywords, submitters, k=5)
        built = plane.features.built
        plane.refresh()
        second, __ = plane.topk(keywords, submitters, k=5)
        assert second == first
        assert plane.features.built == 2 * built

    def test_validation(self, scale_world):
        with pytest.raises(ValueError):
            ScalePlane(scale_world, n_shards=0)


class TestCostModel:
    def test_lpt_makespan_basics(self):
        assert lpt_makespan([], 4) == 0.0
        assert lpt_makespan([5.0, 3.0], 1) == 8.0
        assert lpt_makespan([5.0, 3.0, 2.0], 2) == 5.0
        assert lpt_makespan([4.0] * 8, 4) == 8.0

    def test_makespan_never_beats_bounds(self):
        costs = [7.0, 1.0, 3.0, 3.0, 2.0, 9.0, 4.0]
        for workers in (1, 2, 4, 8):
            makespan = lpt_makespan(costs, workers)
            assert makespan >= max(costs)
            assert makespan >= sum(costs) / workers
            assert makespan <= sum(costs)

    def test_modeled_speedup_monotone_and_bounded(self):
        costs = [10.0] * 16
        speedups = [modeled_speedup(costs, n) for n in (1, 2, 4, 8)]
        assert speedups[0] == 1.0
        assert speedups == sorted(speedups)
        assert all(s <= n for s, n in zip(speedups, (1, 2, 4, 8)))

    def test_balanced_shards_reach_worker_speedup(self):
        assert modeled_speedup([10.0] * 16, 8) == pytest.approx(8.0)


class TestPipelineSharding:
    """Minaret with shards > 1 must be output-identical to shards = 1."""

    def test_recommend_equivalence(self, hub, shared_hub, manuscript):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import Minaret

        baseline = Minaret(hub, config=PipelineConfig(shards=1)).recommend(
            manuscript
        )
        sharded = Minaret(
            shared_hub, config=PipelineConfig(shards=4, workers=4)
        ).recommend(manuscript)
        assert [s.candidate.candidate_id for s in baseline.ranked] == [
            s.candidate.candidate_id for s in sharded.ranked
        ]
        assert [s.total_score for s in baseline.ranked] == [
            s.total_score for s in sharded.ranked
        ]

    def test_config_validates_shards(self):
        from repro.core.config import PipelineConfig

        with pytest.raises(ValueError):
            PipelineConfig(shards=0)
