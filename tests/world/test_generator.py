"""Tests for the synthetic world generator."""

import pytest

from repro.scholarly.records import SourceName, VenueType
from repro.world.config import WorldConfig
from repro.world.generator import generate_world


class TestDeterminism:
    def test_same_config_same_world(self):
        a = generate_world(WorldConfig(author_count=60, seed=9))
        b = generate_world(WorldConfig(author_count=60, seed=9))
        assert set(a.authors) == set(b.authors)
        assert set(a.publications) == set(b.publications)
        assert [p.title for p in a.publications.values()] == [
            p.title for p in b.publications.values()
        ]

    def test_different_seed_differs(self):
        a = generate_world(WorldConfig(author_count=60, seed=1))
        b = generate_world(WorldConfig(author_count=60, seed=2))
        names_a = sorted(author.name for author in a.authors.values())
        names_b = sorted(author.name for author in b.authors.values())
        assert names_a != names_b


class TestPopulation:
    def test_author_count(self, world):
        assert len(world.authors) == 120

    def test_venue_counts(self, world):
        journals = [v for v in world.venues.values() if v.venue_type == VenueType.JOURNAL]
        conferences = [
            v for v in world.venues.values() if v.venue_type == VenueType.CONFERENCE
        ]
        assert len(journals) == world.config.journals_count
        assert len(conferences) == world.config.conferences_count

    def test_every_author_has_topics_and_affiliations(self, world):
        for author in world.authors.values():
            assert author.topic_expertise
            assert author.affiliations
            assert all(0 < e <= 1 for e in author.topic_expertise.values())

    def test_topics_exist_in_ontology(self, world):
        for author in world.authors.values():
            for topic_id in author.topic_expertise:
                assert topic_id in world.ontology

    def test_hidden_variables_in_range(self, world):
        for author in world.authors.values():
            assert 0 <= author.responsiveness <= 1
            assert 0 <= author.review_quality <= 1
            assert 0 <= author.prominence <= 1

    def test_dblp_covers_everyone(self, world):
        assert all(
            SourceName.DBLP in author.covered_by for author in world.authors.values()
        )

    def test_coverage_is_partial_elsewhere(self, world):
        publons_covered = sum(
            1
            for author in world.authors.values()
            if SourceName.PUBLONS in author.covered_by
        )
        assert 0 < publons_covered < len(world.authors)

    def test_name_collisions_planted(self, world):
        config = world.config
        collision_names = {
            author.name
            for author in world.authors.values()
            if len(world.authors_by_name(author.name)) > 1
        }
        assert len(collision_names) >= config.collision_group_count // 2

    def test_affiliation_periods_are_sane(self, world):
        for author in world.authors.values():
            periods = author.affiliations
            assert periods[0].start_year == author.career_start
            assert periods[-1].end_year is None
            for earlier, later in zip(periods, periods[1:]):
                assert earlier.end_year is not None
                assert earlier.end_year + 1 == later.start_year


class TestPublications:
    def test_authors_exist(self, world):
        for pub in world.publications.values():
            for author_id in pub.author_ids:
                assert author_id in world.authors

    def test_lead_active_in_publication_year(self, world):
        for pub in world.publications.values():
            lead = world.authors[pub.author_ids[0]]
            assert pub.year >= lead.career_start

    def test_keywords_resolve_in_ontology(self, world):
        for pub in world.publications.values():
            for keyword in pub.keywords:
                assert world.ontology.find(keyword) is not None

    def test_team_sizes_bounded(self, world):
        limit = world.config.max_team_size
        for pub in world.publications.values():
            assert 1 <= len(pub.author_ids) <= limit

    def test_citation_counts_nonnegative(self, world):
        assert all(p.citation_count >= 0 for p in world.publications.values())

    def test_growth_shape(self):
        """The Fig. 1 property: later years see (much) more output."""
        world = generate_world(WorldConfig(author_count=300, seed=2))
        stats = world.dblp_records_per_year()
        years = sorted(stats)
        early = sum(sum(stats[y].values()) for y in years[: len(years) // 3])
        late = sum(sum(stats[y].values()) for y in years[-len(years) // 3 :])
        assert late > 2 * early


class TestReviews:
    def test_reviews_reference_journals(self, world):
        for review in world.reviews.values():
            venue = world.venues[review.venue_id]
            assert venue.venue_type == VenueType.JOURNAL

    def test_on_time_consistent_with_days(self, world):
        for review in world.reviews.values():
            assert review.on_time == (review.days_to_complete <= 30)

    def test_reviewers_exist(self, world):
        for review in world.reviews.values():
            assert review.reviewer_id in world.authors

    def test_responsive_authors_review_faster(self, world):
        fast_days, slow_days = [], []
        for author in world.authors.values():
            reviews = world.author_reviews(author.author_id)
            if not reviews:
                continue
            mean_days = sum(r.days_to_complete for r in reviews) / len(reviews)
            if author.responsiveness > 0.8:
                fast_days.append(mean_days)
            elif author.responsiveness < 0.3:
                slow_days.append(mean_days)
        if fast_days and slow_days:
            assert sum(fast_days) / len(fast_days) < sum(slow_days) / len(slow_days)


class TestDerivedStructures:
    def test_publications_by_author_consistent(self, world):
        for author_id, pub_ids in world.publications_by_author.items():
            for pub_id in pub_ids:
                assert author_id in world.publications[pub_id].author_ids

    def test_coauthors_symmetric(self, world):
        for author_id, coauthors in world.coauthors.items():
            for other in coauthors:
                assert author_id in world.coauthors[other]

    def test_no_self_coauthorship(self, world):
        for author_id, coauthors in world.coauthors.items():
            assert author_id not in coauthors

    def test_author_publications_sorted_by_year(self, world):
        for author_id in world.authors:
            pubs = world.author_publications(author_id)
            years = [p.year for p in pubs]
            assert years == sorted(years)


class TestConfigValidation:
    def test_zero_authors_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(author_count=0)

    def test_career_bounds_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(min_career_length=10, max_career_length=5)

    def test_collision_group_size_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(collision_group_count=1, collision_group_size=1)

    def test_bad_noise_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(interest_noise=1.5)
