"""Tests for the name factory."""

import random

import pytest

from repro.world.names import (
    COLLISION_GIVEN_NAMES,
    FAMILY_NAMES,
    GIVEN_NAMES,
    POPULAR_FAMILY_NAMES,
    NameFactory,
)


class TestPools:
    def test_pools_nonempty_and_unique(self):
        assert len(set(GIVEN_NAMES)) == len(GIVEN_NAMES)
        assert len(set(FAMILY_NAMES)) == len(FAMILY_NAMES)

    def test_popular_names_are_family_names(self):
        assert set(POPULAR_FAMILY_NAMES) <= set(FAMILY_NAMES)

    def test_collision_givens_are_given_names(self):
        assert set(COLLISION_GIVEN_NAMES) <= set(GIVEN_NAMES)


class TestFactory:
    def test_unique_names_never_repeat(self):
        factory = NameFactory(random.Random(1))
        names = [factory.make_unique() for __ in range(500)]
        assert len(set(names)) == 500

    def test_deterministic(self):
        a = NameFactory(random.Random(7))
        b = NameFactory(random.Random(7))
        assert [a.make_unique() for __ in range(20)] == [
            b.make_unique() for __ in range(20)
        ]

    def test_collision_names_use_popular_pool(self):
        factory = NameFactory(random.Random(3))
        name = factory.make_collision_name()
        given, family = name.split(" ")
        assert given in COLLISION_GIVEN_NAMES
        assert family in POPULAR_FAMILY_NAMES

    def test_unique_avoids_collision_names(self):
        factory = NameFactory(random.Random(3))
        collision = factory.make_collision_name()
        uniques = {factory.make_unique() for __ in range(300)}
        assert collision not in uniques

    def test_middle_initial_probability_zero(self):
        factory = NameFactory(random.Random(3))
        names = [factory.make_unique(with_middle_probability=0.0) for __ in range(50)]
        assert all(len(name.split(" ")) == 2 for name in names)
