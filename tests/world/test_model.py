"""Tests for the world model and the ground-truth oracle."""

import pytest

from repro.scholarly.records import Affiliation
from repro.world.model import GroundTruthOracle


@pytest.fixture(scope="module")
def oracle(world):
    return GroundTruthOracle(world)


class TestAffiliationRecords:
    def test_active_in(self):
        affiliation = Affiliation("X", "Y", 2010, 2015)
        assert affiliation.active_in(2010)
        assert affiliation.active_in(2015)
        assert not affiliation.active_in(2016)
        assert not affiliation.active_in(2009)

    def test_open_ended_active(self):
        affiliation = Affiliation("X", "Y", 2010, None)
        assert affiliation.active_in(2030)

    def test_overlaps(self):
        a = Affiliation("X", "Y", 2010, 2015)
        b = Affiliation("X", "Y", 2015, 2020)
        c = Affiliation("X", "Y", 2016, None)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert b.overlaps(c)


class TestWorldAccessors:
    def test_primary_topic_is_max_expertise(self, world):
        for author in list(world.authors.values())[:10]:
            primary = author.primary_topic()
            assert author.topic_expertise[primary] == max(
                author.topic_expertise.values()
            )

    def test_author_citations_match_publications(self, world):
        author_id = next(iter(world.publications_by_author))
        citations = world.author_citations(author_id)
        pubs = world.author_publications(author_id)
        assert citations == [p.citation_count for p in pubs]

    def test_authors_by_name(self, world):
        author = next(iter(world.authors.values()))
        assert author in world.authors_by_name(author.name)

    def test_journal_venues_sorted(self, world):
        journals = world.journal_venues()
        assert [v.venue_id for v in journals] == sorted(v.venue_id for v in journals)

    def test_records_per_year_totals(self, world):
        stats = world.dblp_records_per_year()
        total = sum(sum(by_type.values()) for by_type in stats.values())
        assert total == len(world.publications)


class TestOracleRelevance:
    def test_expert_scores_higher_than_outsider(self, world, oracle):
        author = next(iter(world.authors.values()))
        own_topics = sorted(author.topic_expertise)[:2]
        outsider = next(
            a
            for a in world.authors.values()
            if not (set(own_topics) & a.topics())
        )
        assert oracle.topic_relevance(
            author.author_id, own_topics
        ) > oracle.topic_relevance(outsider.author_id, own_topics)

    def test_empty_topics_zero(self, world, oracle):
        author_id = next(iter(world.authors))
        assert oracle.topic_relevance(author_id, []) == 0.0

    def test_relevance_bounded(self, world, oracle):
        author = next(iter(world.authors.values()))
        topics = sorted(author.topic_expertise)
        value = oracle.topic_relevance(author.author_id, topics)
        assert 0.0 <= value <= 1.0

    def test_utility_discounts_unresponsiveness(self, world, oracle):
        author = next(iter(world.authors.values()))
        topics = sorted(author.topic_expertise)[:1]
        utility = oracle.reviewer_utility(author.author_id, topics)
        relevance = oracle.topic_relevance(author.author_id, topics)
        assert utility <= relevance


class TestOracleIdealReviewers:
    def test_excludes_manuscript_authors(self, world, oracle):
        author = next(iter(world.authors.values()))
        topics = sorted(author.topic_expertise)[:2]
        ideal = oracle.ideal_reviewers(topics, [author.author_id], k=20)
        assert author.author_id not in ideal

    def test_respects_k(self, world, oracle):
        author = next(iter(world.authors.values()))
        topics = sorted(author.topic_expertise)[:2]
        assert len(oracle.ideal_reviewers(topics, [author.author_id], k=5)) <= 5

    def test_coi_enforcement_removes_coauthors(self, world, oracle):
        # Find an author with coauthors.
        author_id = next(a for a, c in world.coauthors.items() if c)
        author = world.authors[author_id]
        topics = sorted(author.topic_expertise)[:2]
        with_coi = set(
            oracle.ideal_reviewers(topics, [author_id], k=200, enforce_coi=False)
        )
        without_coi = set(
            oracle.ideal_reviewers(topics, [author_id], k=200, enforce_coi=True)
        )
        assert not (without_coi & world.coauthors[author_id])
        assert with_coi >= without_coi

    def test_sorted_by_utility(self, world, oracle):
        author = next(iter(world.authors.values()))
        topics = sorted(author.topic_expertise)[:2]
        ideal = oracle.ideal_reviewers(topics, [author.author_id], k=10)
        utilities = [oracle.reviewer_utility(a, topics) for a in ideal]
        assert utilities == sorted(utilities, reverse=True)


class TestOracleCoi:
    def test_self_is_conflicted(self, world, oracle):
        author_id = next(iter(world.authors))
        assert oracle.has_coi(author_id, [author_id])

    def test_coauthor_is_conflicted(self, world, oracle):
        author_id = next(a for a, c in world.coauthors.items() if c)
        coauthor = next(iter(world.coauthors[author_id]))
        assert oracle.has_coi(coauthor, [author_id])

    def test_shared_institution_is_conflicted(self, world, oracle):
        authors = list(world.authors.values())
        pair = None
        for i, a in enumerate(authors):
            for b in authors[i + 1 :]:
                if GroundTruthOracle._shares_affiliation(a, b, include_country=False):
                    pair = (a, b)
                    break
            if pair:
                break
        assert pair is not None, "world has no shared-institution pair"
        assert oracle.has_coi(pair[0].author_id, [pair[1].author_id])

    def test_country_level_is_stricter(self, world, oracle):
        count_university = sum(
            oracle.has_coi(a, ["author-0"], include_country=False)
            for a in world.authors
        )
        count_country = sum(
            oracle.has_coi(a, ["author-0"], include_country=True)
            for a in world.authors
        )
        assert count_country >= count_university
