"""Tests for the streaming world generator (repro.world.streaming)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.world.config import WorldConfig
from repro.world.generator import _POISSON_KNUTH_MAX, _poisson
from repro.world.streaming import StreamingWorld, child_rng

_SMALL = WorldConfig(author_count=96, seed=11)


@pytest.fixture(scope="module")
def streaming_world():
    return StreamingWorld(_SMALL, block_size=16, cache_blocks=4)


@pytest.fixture(scope="module")
def materialized(streaming_world):
    return streaming_world.materialize()


class TestChildRng:
    def test_deterministic(self):
        assert (
            child_rng(42, "author", 7).random()
            == child_rng(42, "author", 7).random()
        )

    def test_independent_streams(self):
        assert (
            child_rng(42, "author", 7).random()
            != child_rng(42, "author", 8).random()
        )
        assert (
            child_rng(42, "author", 7).random()
            != child_rng(43, "author", 7).random()
        )

    def test_kind_separates_streams(self):
        assert (
            child_rng(42, "pubs", 7).random()
            != child_rng(42, "reviews", 7).random()
        )


class TestAccessOrderIndependence:
    def test_reverse_order_identical(self):
        forward = StreamingWorld(_SMALL, block_size=16)
        backward = StreamingWorld(_SMALL, block_size=16)
        ids = list(forward.author_ids())
        forward_scholars = {i: forward.scholar(i) for i in ids}
        backward_scholars = {i: backward.scholar(i) for i in reversed(ids)}
        assert forward_scholars == backward_scholars

    @settings(max_examples=20, deadline=None)
    @given(order=st.permutations(list(range(0, 96, 7))))
    def test_any_access_order_matches_materialized(
        self, streaming_world, materialized, order
    ):
        """The hypothesis property from the issue: whatever order
        scholars are realised in — interleaved with whatever eviction
        pattern the LRU produces — every entity is bit-identical to the
        eagerly materialised world."""
        fresh = StreamingWorld(_SMALL, block_size=16, cache_blocks=2)
        for index in order:
            author_id = f"author-{index}"
            scholar = fresh.scholar(author_id)
            assert scholar.author == materialized.authors[author_id]
            assert [p.pub_id for p in scholar.publications] == (
                materialized.publications_by_author.get(author_id, [])
            )
            assert list(scholar.publications) == [
                materialized.publications[p]
                for p in materialized.publications_by_author.get(author_id, [])
            ]
            assert [r.review_id for r in scholar.reviews] == (
                materialized.reviews_by_reviewer.get(author_id, [])
            )
            assert set(scholar.coauthor_ids) == materialized.coauthors.get(
                author_id, set()
            )


class TestMaterializeEquivalence:
    def test_every_scholar_matches(self, streaming_world, materialized):
        fresh = StreamingWorld(_SMALL, block_size=16)
        for author_id in materialized.authors:
            scholar = fresh.scholar(author_id)
            assert scholar.author == materialized.authors[author_id]

    def test_materialize_is_deterministic(self, materialized):
        again = StreamingWorld(_SMALL, block_size=16).materialize()
        assert again.authors == materialized.authors
        assert again.publications == materialized.publications
        assert again.reviews == materialized.reviews

    def test_venues_identical_across_instances(self, streaming_world):
        other = StreamingWorld(_SMALL, block_size=32)
        assert other.venues == streaming_world.venues

    def test_block_size_changes_content_family(self):
        """Block size is part of the world family (it bounds the
        co-author neighbourhood), not a tuning knob of one world."""
        a = StreamingWorld(_SMALL, block_size=16).scholar("author-3")
        b = StreamingWorld(_SMALL, block_size=48).scholar("author-3")
        assert a.author == b.author  # profiles are block-independent


class TestLru:
    def test_eviction_does_not_change_content(self):
        tight = StreamingWorld(_SMALL, block_size=16, cache_blocks=1)
        first = tight.scholar("author-0")
        tight.scholar("author-90")  # evicts author-0's block
        assert tight.stats()["blocks_evicted"] >= 1
        assert tight.scholar("author-0") == first

    def test_cache_bound_holds(self):
        tight = StreamingWorld(_SMALL, block_size=16, cache_blocks=2)
        for author_id in tight.author_ids():
            tight.scholar(author_id)
        assert tight.stats()["blocks_cached"] <= 2

    def test_warm_hits_do_not_rerealize(self, streaming_world):
        before = streaming_world.stats()["blocks_realized"]
        streaming_world.scholar("author-1")
        streaming_world.scholar("author-2")  # same block of 16
        after = streaming_world.stats()["blocks_realized"]
        assert after <= before + 1


class TestPopulationShape:
    def test_collision_groups_planted(self, streaming_world):
        config = streaming_world.config
        group_size = config.collision_group_size
        for group in range(config.collision_group_count):
            names = {
                streaming_world.profile(group * group_size + offset).name
                for offset in range(group_size)
            }
            assert len(names) == 1

    def test_profiles_valid(self, streaming_world):
        for index in range(0, 96, 11):
            author = streaming_world.profile(index)
            assert author.topic_expertise
            assert author.affiliations
            assert 0.0 <= author.prominence <= 1.0
            assert (
                streaming_world.config.min_career_length
                <= streaming_world.config.current_year - author.career_start
                <= streaming_world.config.max_career_length
            )

    def test_interest_weights_are_ontology_labels(self, streaming_world):
        labels = {
            t.label for t in streaming_world.ontology.topics()
        }
        weights = streaming_world.interest_weights(5)
        assert weights
        assert set(weights) <= labels

    def test_team_density_matches_eager_family(self, materialized):
        team_sizes = [
            len(p.author_ids) for p in materialized.publications.values()
        ]
        assert 2.0 < sum(team_sizes) / len(team_sizes) < 5.0

    def test_author_ids_and_index_roundtrip(self, streaming_world):
        ids = list(streaming_world.author_ids())
        assert len(ids) == 96
        assert streaming_world.author_index("author-95") == 95
        with pytest.raises(KeyError):
            streaming_world.author_index("author-96")
        with pytest.raises(KeyError):
            streaming_world.author_index("venue-3")

    def test_interned_ids_share_objects(self):
        world = StreamingWorld(_SMALL, block_size=16, cache_blocks=1)
        first = world.scholar("author-10").author.author_id
        world.scholar("author-90")  # evict and re-realise
        second = world.scholar("author-10").author.author_id
        assert first is second


class TestValidation:
    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            StreamingWorld(_SMALL, block_size=0)

    def test_bad_cache_blocks(self):
        with pytest.raises(ValueError):
            StreamingWorld(_SMALL, cache_blocks=0)


class TestPoisson:
    """Satellite: the large-mean Poisson path (PTRS)."""

    def test_small_means_unchanged(self):
        """Draw-for-draw identical to Knuth's method at existing means —
        the guard must not move a single stock-config draw."""

        def knuth_reference(rng, mean):
            import math

            threshold = math.exp(-mean)
            count = 0
            product = rng.random()
            while product > threshold:
                count += 1
                product *= rng.random()
            return count

        for mean in (0.3, 1.2, 7.5, 45.0, _POISSON_KNUTH_MAX):
            a, b = random.Random(99), random.Random(99)
            assert [_poisson(a, mean) for __ in range(200)] == [
                knuth_reference(b, mean) for __ in range(200)
            ]

    def test_zero_and_negative_mean(self):
        rng = random.Random(1)
        assert _poisson(rng, 0.0) == 0
        assert _poisson(rng, -3.0) == 0

    def test_large_mean_terminates_and_centers(self):
        """exp(-800) underflows to 0.0 — the old loop would only stop
        when the running product underflowed too, after O(mean) draws.
        The PTRS path must terminate fast and still sample Poisson."""
        rng = random.Random(7)
        draws = [_poisson(rng, 800.0) for __ in range(400)]
        mean = sum(draws) / len(draws)
        assert 750 < mean < 850
        variance = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert 500 < variance < 1200  # Poisson: variance ~ mean

    def test_huge_mean_no_underflow(self):
        rng = random.Random(3)
        draws = [_poisson(rng, 1e6) for __ in range(50)]
        assert all(900_000 < d < 1_100_000 for d in draws)

    def test_large_mean_deterministic(self):
        assert [_poisson(random.Random(5), 500.0) for __ in range(20)] == [
            _poisson(random.Random(5), 500.0) for __ in range(20)
        ]
