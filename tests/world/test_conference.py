"""Tests for the planted conference scenario generator.

The load-bearing property is the planted-optimum guarantee: the score
matrix that :meth:`ConferenceScenario.planted_problem` emits must have
the planted assignment as its *unique* lexicographic optimum at every
permitted noise level, so an exact solver's planted recall is 1.0 by
construction and any shortfall measured later is the solver's fault.
"""

import pytest

from repro.assignment import (
    AssignmentObjective,
    greedy_swap_assignment,
    min_cost_flow_assignment,
    objective_value,
)
from repro.world.conference import (
    ConferenceConfig,
    generate_conference,
    load_spread,
    planted_recall,
    precision_at_set,
)
from repro.world.model import GroundTruthOracle


@pytest.fixture(scope="module")
def scenario(world):
    return generate_conference(world, ConferenceConfig(paper_count=12, seed=3))


class TestConfigValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            ConferenceConfig(paper_count=0)
        with pytest.raises(ValueError):
            ConferenceConfig(reviewers_per_paper=0)
        with pytest.raises(ValueError):
            ConferenceConfig(max_load=0)
        with pytest.raises(ValueError):
            ConferenceConfig(score_noise=1.5)

    def test_pool_cannot_exceed_world(self, world):
        with pytest.raises(ValueError):
            generate_conference(
                world, ConferenceConfig(paper_count=4, pool_size=10_000)
            )


class TestPlantedStructure:
    def test_every_paper_gets_k_distinct_pool_reviewers(self, scenario):
        k = scenario.config.reviewers_per_paper
        pool = set(scenario.pool)
        for paper in scenario.papers:
            assert len(paper.true_reviewers) == k
            assert len(set(paper.true_reviewers)) == k
            assert set(paper.true_reviewers) <= pool

    def test_planted_allocation_respects_capacity(self, scenario):
        loads = scenario.planted_assignment().loads()
        assert all(
            load <= scenario.config.max_load for load in loads.values()
        )

    def test_planted_reviewers_are_coi_free(self, scenario):
        oracle = GroundTruthOracle(scenario.world)
        for paper in scenario.papers:
            for reviewer in paper.true_reviewers:
                assert reviewer not in paper.author_ids
                assert not oracle.has_coi(reviewer, list(paper.author_ids))

    def test_pool_excludes_submitting_leads(self, scenario):
        leads = {
            author_id
            for paper in scenario.papers
            for author_id in paper.author_ids
        }
        assert not leads & set(scenario.pool)

    def test_generation_is_deterministic(self, world):
        config = ConferenceConfig(paper_count=6, seed=11)
        first = generate_conference(world, config)
        second = generate_conference(world, config)
        assert first.pool == second.pool
        assert first.papers == second.papers

    def test_exhausted_pool_raises(self, world):
        with pytest.raises(ValueError, match="cannot plant"):
            generate_conference(
                world,
                ConferenceConfig(paper_count=10, pool_size=3, max_load=1),
            )


class TestPlantedSeparation:
    @pytest.mark.parametrize("noise", [0.0, 0.5, 1.0])
    def test_planted_pairs_strictly_outscore_background(self, world, noise):
        scenario = generate_conference(
            world,
            ConferenceConfig(paper_count=10, score_noise=noise, seed=3),
        )
        problem = scenario.planted_problem()
        for paper in scenario.papers:
            row = problem.scores[paper.paper_id]
            planted = {row[r] for r in paper.true_reviewers}
            background = [
                score
                for reviewer, score in row.items()
                if reviewer not in paper.true_reviewers
            ]
            if background:
                assert min(planted) > max(background)

    @pytest.mark.parametrize("noise", [0.0, 0.5, 1.0])
    def test_flow_recovers_planted_truth_exactly(self, world, noise):
        """The ISSUE acceptance criterion: planted recall 1.0."""
        scenario = generate_conference(
            world,
            ConferenceConfig(paper_count=10, score_noise=noise, seed=3),
        )
        problem = scenario.planted_problem()
        assignment = min_cost_flow_assignment(problem)
        assert planted_recall(scenario, assignment) == 1.0
        assert precision_at_set(scenario, assignment) == 1.0

    def test_greedy_swap_within_bound_of_flow(self, world):
        scenario = generate_conference(
            world, ConferenceConfig(paper_count=10, score_noise=1.0, seed=3)
        )
        problem = scenario.planted_problem()
        objective = AssignmentObjective()
        flow_value = objective_value(
            problem, min_cost_flow_assignment(problem), objective
        )
        swap_value = objective_value(
            problem, greedy_swap_assignment(problem), objective
        )
        assert swap_value >= 0.9 * flow_value

    def test_sparse_candidate_lists_still_recoverable(self, world):
        scenario = generate_conference(
            world,
            ConferenceConfig(
                paper_count=8, candidates_per_paper=4, seed=3
            ),
        )
        problem = scenario.planted_problem()
        for paper in scenario.papers:
            row = problem.scores[paper.paper_id]
            # k planted + at most candidates_per_paper background.
            assert len(row) <= scenario.config.reviewers_per_paper + 4
            assert set(paper.true_reviewers) <= set(row)
        assignment = min_cost_flow_assignment(problem)
        assert planted_recall(scenario, assignment) == 1.0


class TestMetrics:
    def test_planted_assignment_scores_perfectly(self, scenario):
        planted = scenario.planted_assignment()
        assert planted_recall(scenario, planted) == 1.0
        assert precision_at_set(scenario, planted) == 1.0

    def test_empty_assignment_scores_zero(self, scenario):
        from repro.assignment.models import Assignment

        empty = Assignment()
        assert planted_recall(scenario, empty) == 0.0
        assert precision_at_set(scenario, empty) == 0.0

    def test_load_spread_counts_idle_pool_members(self, scenario):
        planted = scenario.planted_assignment()
        spread = load_spread(planted, scenario.pool)
        loads = planted.loads()
        busiest = max(loads.values())
        if len(loads) < len(scenario.pool):
            assert spread == busiest  # someone idle -> min is 0
        assert spread >= 0

    def test_resolve_maps_ids_before_matching(self, scenario):
        planted = scenario.planted_assignment()
        prefixed = type(planted)(
            by_paper={
                paper: [f"x:{r}" for r in reviewers]
                for paper, reviewers in planted.by_paper.items()
            }
        )
        assert planted_recall(scenario, prefixed) == 0.0
        resolved = planted_recall(
            scenario, prefixed, resolve=lambda r: r.split(":", 1)[1]
        )
        assert resolved == 1.0
