"""Round-trip tests for world serialization."""

import pytest

from repro.scholarly.registry import ScholarlyHub
from repro.world.config import WorldConfig
from repro.world.dynamics import WorldDynamics
from repro.world.generator import generate_world
from repro.world.io import load_world, save_world, world_from_dict, world_to_dict


@pytest.fixture(scope="module")
def small_world():
    return generate_world(WorldConfig(author_count=40, seed=23))


class TestRoundTrip:
    def test_entity_counts_survive(self, small_world):
        restored = world_from_dict(world_to_dict(small_world))
        assert set(restored.authors) == set(small_world.authors)
        assert set(restored.venues) == set(small_world.venues)
        assert set(restored.publications) == set(small_world.publications)
        assert set(restored.reviews) == set(small_world.reviews)

    def test_hidden_variables_survive(self, small_world):
        restored = world_from_dict(world_to_dict(small_world))
        for author_id, author in small_world.authors.items():
            twin = restored.authors[author_id]
            assert twin.responsiveness == author.responsiveness
            assert twin.topic_expertise == author.topic_expertise
            assert twin.affiliations == author.affiliations
            assert twin.covered_by == author.covered_by

    def test_derived_structures_rebuilt(self, small_world):
        restored = world_from_dict(world_to_dict(small_world))
        assert restored.coauthors == small_world.coauthors
        assert restored.publications_by_author == small_world.publications_by_author

    def test_mutated_world_checkpoints_exactly(self, small_world):
        # Serialize a state no config can regenerate.
        import copy

        mutated = world_from_dict(world_to_dict(small_world))
        dynamics = WorldDynamics(mutated, seed=4)
        author_id = sorted(mutated.authors)[0]
        dynamics.pivot_author(author_id, "rdf")
        dynamics.publish(author_id, "rdf", 2020, count=2)
        restored = world_from_dict(world_to_dict(mutated))
        assert "rdf" in restored.authors[author_id].topic_expertise
        assert set(restored.publications) == set(mutated.publications)

    def test_with_ontology_embedded(self, small_world):
        data = world_to_dict(small_world, include_ontology=True)
        restored = world_from_dict(data)
        assert len(restored.ontology) == len(small_world.ontology)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            world_from_dict({"format": "nope"})

    def test_file_round_trip(self, small_world, tmp_path):
        path = tmp_path / "world.json"
        save_world(small_world, path)
        restored = load_world(path)
        assert set(restored.authors) == set(small_world.authors)

    def test_restored_world_runs_the_pipeline(self, small_world):
        """The acid test: a restored world must be fully operational."""
        from repro.core.pipeline import Minaret
        from tests.conftest import make_manuscript

        restored = world_from_dict(world_to_dict(small_world))
        hub = ScholarlyHub.deploy(restored)
        author = next(
            a
            for a in restored.authors.values()
            if len(restored.authors_by_name(a.name)) == 1
        )
        manuscript = make_manuscript(restored, author)
        result = Minaret(hub).recommend(manuscript)
        assert result.candidates

    def test_deterministic_serialization(self, small_world):
        assert world_to_dict(small_world) == world_to_dict(small_world)
