"""Tests for world evolution and service refresh."""

import pytest

from repro.scholarly.registry import ScholarlyHub
from repro.world.config import WorldConfig
from repro.world.dynamics import WorldDynamics
from repro.world.generator import generate_world


@pytest.fixture()
def small_world():
    # Function-scoped: dynamics mutates the world.
    return generate_world(WorldConfig(author_count=60, seed=17))


@pytest.fixture()
def dynamics(small_world):
    return WorldDynamics(small_world, seed=1)


class TestPublish:
    def test_adds_publications(self, small_world, dynamics):
        author_id = sorted(small_world.authors)[0]
        before = len(small_world.publications)
        new_ids = dynamics.publish(author_id, "databases", 2020, count=3)
        assert len(new_ids) == 3
        assert len(small_world.publications) == before + 3

    def test_derived_structures_updated(self, small_world, dynamics):
        author_id = sorted(small_world.authors)[0]
        new_ids = dynamics.publish(author_id, "databases", 2020)
        assert new_ids[0] in small_world.publications_by_author[author_id]

    def test_keywords_match_topic(self, small_world, dynamics):
        author_id = sorted(small_world.authors)[0]
        pub_id = dynamics.publish(author_id, "rdf", 2020)[0]
        assert "RDF" in small_world.publications[pub_id].keywords

    def test_coauthors_linked(self, small_world, dynamics):
        first, second = sorted(small_world.authors)[:2]
        dynamics.publish(first, "databases", 2020, coauthor_ids=(second,))
        assert second in small_world.coauthors[first]

    def test_unknown_author_rejected(self, dynamics):
        with pytest.raises(KeyError):
            dynamics.publish("author-9999", "databases", 2020)

    def test_venue_is_topical_journal(self, small_world, dynamics):
        author_id = sorted(small_world.authors)[0]
        pub_id = dynamics.publish(author_id, "databases", 2020)[0]
        venue = small_world.venues[small_world.publications[pub_id].venue_id]
        assert venue.venue_type.value == "journal"


class TestPivot:
    def test_expertise_updated(self, small_world, dynamics):
        author_id = sorted(small_world.authors)[0]
        dynamics.pivot_author(author_id, "rdf", expertise=0.95)
        assert small_world.authors[author_id].topic_expertise["rdf"] == 0.95

    def test_invalid_expertise_rejected(self, dynamics, small_world):
        author_id = sorted(small_world.authors)[0]
        with pytest.raises(ValueError):
            dynamics.pivot_author(author_id, "rdf", expertise=0.0)

    def test_unknown_topic_rejected(self, dynamics, small_world):
        author_id = sorted(small_world.authors)[0]
        with pytest.raises(KeyError):
            dynamics.pivot_author(author_id, "no-such-topic")


class TestReviews:
    def test_adds_reviews(self, small_world, dynamics):
        author_id = sorted(small_world.authors)[0]
        venue_id = small_world.journal_venues()[0].venue_id
        before = len(small_world.author_reviews(author_id))
        dynamics.record_reviews(author_id, venue_id, 2020, count=2)
        assert len(small_world.author_reviews(author_id)) == before + 2

    def test_unknown_venue_rejected(self, small_world, dynamics):
        author_id = sorted(small_world.authors)[0]
        with pytest.raises(KeyError):
            dynamics.record_reviews(author_id, "venue-nope", 2020)


class TestAdvanceYear:
    def test_adds_background_publications(self, small_world, dynamics):
        before = len(small_world.publications)
        added = dynamics.advance_year(publication_rate=0.5)
        assert added > 0
        assert len(small_world.publications) == before + added

    def test_new_year_is_after_latest(self, small_world, dynamics):
        latest_before = max(p.year for p in small_world.publications.values())
        dynamics.advance_year(publication_rate=1.0)
        latest_after = max(p.year for p in small_world.publications.values())
        assert latest_after == latest_before + 1


class TestServiceRefresh:
    def test_new_publication_invisible_until_refresh(self, small_world, dynamics):
        hub = ScholarlyHub.deploy(small_world)
        author_id = sorted(small_world.authors)[0]
        pid = hub.dblp_service.pid_of(author_id)
        before = len(hub.dblp.author_profile(pid).publication_ids)
        dynamics.publish(author_id, "databases", 2020, count=2)
        # Services still answer from their build-time projection.
        assert len(hub.dblp.author_profile(pid).publication_ids) == before
        hub.refresh_services()
        assert len(hub.dblp.author_profile(pid).publication_ids) == before + 2

    def test_refresh_preserves_statistics(self, small_world, dynamics):
        hub = ScholarlyHub.deploy(small_world)
        author_id = sorted(small_world.authors)[0]
        hub.dblp.search_author(small_world.authors[author_id].name)
        requests_before = hub.total_requests()
        hub.refresh_services()
        assert hub.total_requests() == requests_before

    def test_pivot_changes_interest_search_after_refresh(self, small_world, dynamics):
        hub = ScholarlyHub.deploy(small_world)
        # Find a scholar-covered author not yet interested in RDF.
        author_id = next(
            a
            for a in sorted(small_world.authors)
            if hub.scholar_service.user_of(a)
            and "rdf" not in small_world.authors[a].topic_expertise
        )
        user = hub.scholar_service.user_of(author_id)
        assert user not in hub.scholar.scholars_by_interest("RDF", limit=500)
        dynamics.pivot_author(author_id, "rdf")
        hub.refresh_services()
        assert user in hub.scholar.scholars_by_interest("RDF", limit=500)
