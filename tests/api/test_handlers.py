"""Tests for the MINARET REST API endpoints."""

import pytest

from repro.api.handlers import MinaretApi


@pytest.fixture()
def api(hub):
    return MinaretApi(hub)


def manuscript_payload(manuscript):
    return {
        "title": manuscript.title,
        "keywords": list(manuscript.keywords),
        "authors": [
            {
                "name": a.name,
                "affiliation": a.affiliation,
                "country": a.country,
            }
            for a in manuscript.authors
        ],
        "target_venue": manuscript.target_venue,
    }


class TestHealth:
    def test_health(self, api):
        response = api.handle("GET", "/api/v1/health")
        assert response.ok
        assert response.body["status"] == "ok"

    def test_routes_exposed(self, api):
        assert ("POST", "/api/v1/recommend") in api.routes()
        assert ("GET", "/api/v1/serving") in api.routes()


class TestInputValidation:
    """Client-input coercion must raise typed 400s, never crash to 500.

    Regression for the router no longer laundering bare ValueError:
    every handler coercion site now goes through ``_as_int``/
    ``_as_float`` (or raises ``ValidationError`` directly).
    """

    @pytest.mark.parametrize(
        ("path", "body"),
        [
            ("/api/v1/expand", {"keywords": ["RDF"], "max_depth": "deep"}),
            ("/api/v1/expand", {"keywords": ["RDF"], "min_score": "high"}),
            ("/api/v1/recommend", {"manuscript": None, "top_k": "many"}),
            ("/api/v1/assign", {"manuscripts": [], "workers": "all"}),
            ("/api/v1/assign", {"manuscripts": [], "capacity": []}),
            ("/api/v1/assign", {"manuscripts": [], "balance_weight": "heavy"}),
        ],
    )
    def test_bad_numeric_input_is_400(self, api, path, body):
        response = api.handle("POST", path, body)
        assert response.status == 400
        assert "error" in response.body

    def test_malformed_author_entry_is_400(self, api):
        response = api.handle(
            "POST", "/api/v1/verify-authors", {"authors": ["not a dict"]}
        )
        assert response.status == 400


class TestExpand:
    def test_paper_example(self, api):
        response = api.handle("POST", "/api/v1/expand", {"keywords": ["RDF"]})
        assert response.ok
        labels = {e["keyword"] for e in response.body["expansions"]}
        assert {"Semantic Web", "SPARQL", "Linked Open Data"} <= labels

    def test_depth_override(self, api):
        response = api.handle(
            "POST", "/api/v1/expand", {"keywords": ["RDF"], "max_depth": 0}
        )
        assert [e["keyword"] for e in response.body["expansions"]] == ["RDF"]

    def test_missing_keywords_400(self, api):
        assert api.handle("POST", "/api/v1/expand", {}).status == 400

    def test_empty_keywords_400(self, api):
        response = api.handle("POST", "/api/v1/expand", {"keywords": []})
        assert response.status == 400


class TestVerifyAuthors:
    def test_known_author(self, api, manuscript):
        author = manuscript.authors[0]
        response = api.handle(
            "POST",
            "/api/v1/verify-authors",
            {"authors": [{"name": author.name, "affiliation": author.affiliation}]},
        )
        assert response.ok
        verified = response.body["verified"][0]
        assert verified["name"] == author.name
        assert "dblp" in verified["source_ids"]

    def test_unknown_author_404(self, api):
        response = api.handle(
            "POST", "/api/v1/verify-authors", {"authors": [{"name": "Nobody Nowhere"}]}
        )
        assert response.status == 404

    def test_ambiguous_author_409(self, api, world):
        collision = next(
            a
            for a in world.authors.values()
            if len(world.authors_by_name(a.name)) > 1
        )
        response = api.handle(
            "POST", "/api/v1/verify-authors", {"authors": [{"name": collision.name}]}
        )
        assert response.status == 409

    def test_missing_body_400(self, api):
        assert api.handle("POST", "/api/v1/verify-authors", {}).status == 400


class TestRecommend:
    def test_full_workflow(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript), "top_k": 5},
        )
        assert response.ok
        body = response.body
        assert len(body["recommendations"]) <= 5
        for rec in body["recommendations"]:
            assert set(rec["breakdown"]) == {
                "topic_coverage",
                "scientific_impact",
                "recency",
                "review_experience",
                "outlet_familiarity",
                "timeliness",
            }
        assert [p["phase"] for p in body["phases"]] == [
            "verify_authors",
            "crawl_outlet",
            "expand_keywords",
            "extract_candidates",
            "filter",
            "rank",
        ]

    def test_config_overrides_applied(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": manuscript_payload(manuscript),
                "config": {"max_candidates": 3},
            },
        )
        assert response.ok
        extract = next(
            p for p in response.body["phases"] if p["phase"] == "extract_candidates"
        )
        assert extract["items_out"] <= 3

    def test_invalid_weights_400(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": manuscript_payload(manuscript),
                "config": {"weights": {"topic_coverage": -1.0}},
            },
        )
        assert response.status == 400

    def test_missing_manuscript_400(self, api):
        assert api.handle("POST", "/api/v1/recommend", {}).status == 400

    def test_manuscript_without_keywords_400(self, api, manuscript):
        payload = manuscript_payload(manuscript)
        payload["keywords"] = []
        response = api.handle(
            "POST", "/api/v1/recommend", {"manuscript": payload}
        )
        assert response.status == 400

    def test_invalid_top_k_400(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript), "top_k": 0},
        )
        assert response.status == 400


class TestAssign:
    def batch_payload(self, world, count=3):
        entries = []
        index = 0
        for author in world.authors.values():
            if index >= count:
                break
            if len(world.authors_by_name(author.name)) > 1:
                continue
            topics = sorted(author.topic_expertise)[:2]
            entries.append(
                {
                    "paper_id": f"paper-{index}",
                    "manuscript": {
                        "title": f"Batch {index}",
                        "keywords": [
                            world.ontology.topic(t).label for t in topics
                        ],
                        "authors": [
                            {
                                "name": author.name,
                                "affiliation": author.affiliations[-1].institution,
                            }
                        ],
                    },
                }
            )
            index += 1
        return entries

    def test_batch_assignment(self, api, world):
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {
                "manuscripts": self.batch_payload(world),
                "reviewers_per_paper": 2,
                "max_load": 2,
                "solver": "optimal",
            },
        )
        assert response.ok
        assignments = response.body["assignments"]
        assert len(assignments) == 3
        for reviewers in assignments.values():
            assert len(reviewers) <= 2
            for reviewer in reviewers:
                assert reviewer["name"]
        assert response.body["quality"]["max_load"] <= 2

    def test_unknown_solver_400(self, api, world):
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {
                "manuscripts": self.batch_payload(world, count=1),
                "solver": "simulated-annealing",
            },
        )
        assert response.status == 400

    def test_missing_paper_id_400(self, api):
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {"manuscripts": [{"manuscript": {}}]},
        )
        assert response.status == 400

    def test_empty_batch_400(self, api):
        assert api.handle("POST", "/api/v1/assign", {"manuscripts": []}).status == 400

    def test_duplicate_paper_ids_400(self, api, world):
        entry = self.batch_payload(world, count=1)[0]
        response = api.handle(
            "POST", "/api/v1/assign", {"manuscripts": [entry, entry]}
        )
        assert response.status == 400

    def test_capacity_alias_and_conference_solvers(self, api, world):
        payload = {
            "manuscripts": self.batch_payload(world),
            "reviewers_per_paper": 2,
            "solver": "greedy-swap",
            "balance_weight": 0.1,
            "on_error": "skip",
        }
        response = api.handle(
            "POST", "/api/v1/assign", {**payload, "capacity": 2}
        )
        assert response.ok
        assert response.body["failures"] == []
        assert response.body["objective_value"] > 0
        via_max_load = api.handle(
            "POST", "/api/v1/assign", {**payload, "max_load": 2}
        )
        assert via_max_load.ok
        assert via_max_load.body["assignments"] == response.body["assignments"]

    def test_capacity_and_max_load_together_400(self, api, world):
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {
                "manuscripts": self.batch_payload(world, count=1),
                "capacity": 2,
                "max_load": 2,
            },
        )
        assert response.status == 400
        assert "not both" in response.body["error"]

    def test_bad_on_error_400(self, api, world):
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {
                "manuscripts": self.batch_payload(world, count=1),
                "on_error": "retry",
            },
        )
        assert response.status == 400

    def test_require_full_infeasible_409(self, api, world):
        # One reviewer slot available per paper cannot satisfy a
        # 3-reviewer quota under load 1 with 3 papers sharing a pool.
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {
                "manuscripts": self.batch_payload(world),
                "reviewers_per_paper": 40,
                "capacity": 1,
                "require_full": True,
            },
        )
        assert response.status == 409
        assert "unfilled" in response.body["error"] or "candidate" in response.body["error"] or "demand" in response.body["error"]


class TestSourceStats:
    def test_stats_accumulate(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        response = api.handle("GET", "/api/v1/sources")
        assert response.ok
        by_host = {s["host"]: s for s in response.body["sources"]}
        assert by_host["scholar.google.com"]["requests"] > 0


class TestMetricsEndpoint:
    def test_per_host_counters_and_histograms(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        response = api.handle("GET", "/api/v1/metrics")
        assert response.ok
        metrics = response.body["metrics"]
        request_hosts = {
            series["labels"]["host"]
            for series in metrics["counters"]["http_requests_total"]
        }
        assert "dblp.org" in request_hosts
        assert "scholar.google.com" in request_hosts
        latency_series = metrics["histograms"]["http_request_latency_seconds"]
        by_host = {series["labels"]["host"]: series for series in latency_series}
        assert by_host["dblp.org"]["count"] > 0
        assert by_host["dblp.org"]["buckets"]["+Inf"] == by_host["dblp.org"]["count"]

    def test_http_and_cache_sections(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        body = api.handle("GET", "/api/v1/metrics").body
        assert body["http"]["scholar.google.com"]["requests"] > 0
        cache = body["cache"]
        assert cache["name"] == "crawler"
        # Default deployment has caching off (ttl=0): every get misses.
        assert cache["misses"] > 0
        assert cache["hit_rate"] == pytest.approx(0.0)

    def test_cache_hit_ratio_reported(self, world, manuscript):
        from repro.scholarly.registry import ScholarlyHub

        api = MinaretApi(ScholarlyHub.deploy(world, cache_ttl=None))
        payload = {"manuscript": manuscript_payload(manuscript)}
        api.handle("POST", "/api/v1/recommend", payload)
        api.handle("POST", "/api/v1/recommend", payload)
        cache = api.handle("GET", "/api/v1/metrics").body["cache"]
        assert cache["hits"] > 0
        assert 0.0 < cache["hit_rate"] <= 1.0

    def test_api_request_counters(self, api):
        api.handle("GET", "/api/v1/health")
        body = api.handle("GET", "/api/v1/metrics").body
        series = body["metrics"]["counters"]["api_requests_total"]
        by_route = {s["labels"]["route"]: s["value"] for s in series}
        assert by_route["/api/v1/health"] == 1.0

    def test_scoring_plane_metrics_visible(self, api, manuscript):
        # One recommend builds features in the filter phase and reuses
        # them in the ranking phase, and every plane ranking reports its
        # prune rate — all of it lands on the metrics endpoint.
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        metrics = api.handle("GET", "/api/v1/metrics").body["metrics"]
        counters = metrics["counters"]
        built = sum(s["value"] for s in counters["scoring_features_built_total"])
        reused = sum(s["value"] for s in counters["scoring_features_reused_total"])
        assert built > 0
        assert reused > 0
        assert "scoring_prune_rate" in metrics["gauges"]

    def test_body_is_json_serialisable(self, api, manuscript):
        import json

        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        json.dumps(api.handle("GET", "/api/v1/metrics").body)


def _triple(x):
    """Module-level so the process backend can pickle it by name."""
    return x * 3


class TestExecutorBackendConfig:
    @pytest.mark.parametrize("backend", ["auto", "sequential", "thread", "process"])
    def test_registered_backend_accepted(self, api, manuscript, backend):
        # "process" downgrades inside the pipeline's closure-heavy
        # fan-outs rather than erroring: config acceptance is what the
        # registry governs.
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": manuscript_payload(manuscript),
                "config": {"workers": 2, "executor_backend": backend},
            },
        )
        assert response.ok
        assert response.body["recommendations"]

    def test_unknown_backend_is_400(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": manuscript_payload(manuscript),
                "config": {"executor_backend": "fork"},
            },
        )
        assert response.status == 400
        assert "executor_backend" in response.body["error"]

    def test_process_child_metrics_served_by_parent_endpoint(self, api):
        # The acceptance check: work done in spawned workers must land
        # in THIS deployment's registry and flow out of /api/v1/metrics.
        from repro.concurrency import create_executor
        from repro.obs import use

        executor = create_executor(2, "process")
        try:
            with use(api.obs):
                assert executor.map(_triple, range(4)) == [0, 3, 6, 9]
        finally:
            executor.close()
        metrics = api.handle("GET", "/api/v1/metrics").body["metrics"]
        series = metrics["counters"]["executor_tasks_total"]
        process = [s for s in series if s["labels"]["backend"] == "process"]
        assert sum(s["value"] for s in process) == 4.0
        assert all(s["labels"]["outcome"] == "ok" for s in process)


def _walk(spans):
    for span in spans:
        yield span
        yield from _walk(span["children"])


class TestTraceEndpoint:
    def test_ring_enabled_by_default(self, api, manuscript):
        # ScholarlyHub.deploy defaults to trace_capacity=0; the API must
        # turn the ring on itself so /api/v1/trace is never dead.
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        body = api.handle("GET", "/api/v1/trace").body
        assert body["enabled"] is True
        assert len(body["traces"]) > 0

    def test_span_tree_fanout_parents_under_phase(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": manuscript_payload(manuscript),
                "config": {"workers": 2},
            },
        )
        body = api.handle("GET", "/api/v1/trace").body
        roots = body["spans"]
        assert roots, "span forest should not be empty"
        api_roots = [s for s in roots if s["name"] == "api.request"]
        assert api_roots, "api.request must be a root span"
        request = api_roots[0]
        pipeline = [c for c in request["children"] if c["name"] == "pipeline.recommend"]
        assert pipeline, "pipeline span must parent under the API request"
        phases = {c["name"]: c for c in pipeline[0]["children"]}
        extract = phases["phase.extract_candidates"]
        tasks = [c for c in extract["children"] if c["name"] == "executor.task"]
        assert len(tasks) > 1, "fan-out tasks must parent under their phase"
        assert all(t["labels"]["backend"] == "thread" for t in tasks)
        trace_ids = {s["trace_id"] for s in _walk([request])}
        assert trace_ids == {request["trace_id"]}

    def test_trace_id_filter(self, api, manuscript):
        api.handle("GET", "/api/v1/health")
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        all_roots = api.handle("GET", "/api/v1/trace").body["spans"]
        assert len({s["trace_id"] for s in all_roots}) >= 2
        wanted = all_roots[-1]["trace_id"]
        filtered = api.handle("GET", f"/api/v1/trace/{wanted}").body["spans"]
        assert filtered
        assert {s["trace_id"] for s in _walk(filtered)} == {wanted}

    def test_bad_trace_id_400(self, api):
        assert api.handle("GET", "/api/v1/trace/notanumber").status == 400

    def test_custom_trace_capacity_respected(self, world):
        from repro.scholarly.registry import ScholarlyHub

        hub = ScholarlyHub.deploy(world, trace_capacity=7)
        MinaretApi(hub)  # must not shrink or replace the existing ring
        assert hub.http.tracing_enabled
        assert hub.http.trace_capacity == 7


class TestSloEndpoint:
    def test_report_lists_default_host_slos(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        response = api.handle("GET", "/api/v1/slo")
        assert response.ok
        assert response.body["verdict"] in ("ok", "warn", "burning")
        names = {slo["name"] for slo in response.body["slos"]}
        assert "http-dblp.org" in names
        assert "http-scholar.google.com" in names
        for slo in response.body["slos"]:
            assert {"verdict", "good_ratio", "objective", "alerts"} <= set(slo)

    def test_custom_specs_override_defaults(self, hub):
        from repro.obs import SloSpec

        api = MinaretApi(
            hub,
            slos=[SloSpec(name="only-one", metric="http_request_latency_seconds")],
        )
        names = {slo["name"] for slo in api.handle("GET", "/api/v1/slo").body["slos"]}
        assert names == {"only-one"}

    def test_health_carries_slo_verdicts(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        body = api.handle("GET", "/api/v1/health").body
        assert body["status"] in ("ok", "warn", "burning")
        assert body["slos"]
        for slo in body["slos"].values():
            assert {"verdict", "good_ratio", "objective"} <= set(slo)

    def test_health_goes_burning_when_a_host_dies(self, world, manuscript):
        from repro.scholarly.registry import ScholarlyHub
        from repro.web.faults import FaultPolicy

        hub = ScholarlyHub.deploy(world)
        api = MinaretApi(hub)
        hub.http.set_fault_policy(
            "dblp.org", FaultPolicy(failure_probability=1.0, seed=3)
        )
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        assert response.status >= 500
        body = api.handle("GET", "/api/v1/health").body
        assert body["status"] == "burning"
        assert body["slos"]["http-dblp.org"]["verdict"] == "burning"


class TestProfileEndpoint:
    def test_flame_profiles_after_traffic(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        response = api.handle("GET", "/api/v1/profile")
        assert response.ok
        names = {profile["name"] for profile in response.body["profiles"]}
        assert "pipeline.recommend" in names
        assert any(name.startswith("phase.") for name in names)
        for profile in response.body["profiles"]:
            assert profile["wall_self"] <= profile["wall_total"] + 1e-9
        assert response.body["retention"]["enabled"] is False

    def test_retention_stats_reflect_policy(self, world, manuscript):
        from repro.obs import TailRetentionPolicy
        from repro.scholarly.registry import ScholarlyHub

        api = MinaretApi(
            ScholarlyHub.deploy(world),
            tail_retention=TailRetentionPolicy(latency_threshold=1e9),
        )
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        retention = api.handle("GET", "/api/v1/profile").body["retention"]
        assert retention["enabled"] is True
        assert retention["evicted_traces"] > 0


class TestPrometheusExposition:
    def test_format_prometheus_query(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        response = api.handle("GET", "/api/v1/metrics?format=prometheus")
        assert response.ok
        assert response.body["content_type"].startswith("text/plain")
        text = response.body["text"]
        assert "# TYPE http_requests_total counter" in text
        assert 'http_request_latency_seconds_bucket{host="dblp.org"' in text
        assert "le=\"+Inf\"" in text

    def test_default_format_unchanged(self, api):
        body = api.handle("GET", "/api/v1/metrics").body
        assert "metrics" in body and "text" not in body


class TestDebugCost:
    def test_cost_attached_on_request(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": manuscript_payload(manuscript),
                "debug_cost": True,
            },
        )
        assert response.ok
        cost = response.body["cost"]
        assert cost["requests"] > 0
        assert cost["http"]["dblp.org"]["requests"] > 0
        assert {p["phase"] for p in cost["phases"]} >= {"rank"}

    def test_cost_absent_by_default(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        assert response.ok
        assert "cost" not in response.body

    def test_cost_emitted_as_event(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": manuscript_payload(manuscript),
                "debug_cost": True,
            },
        )
        events = api.obs.ring.events("request_cost")
        assert events
        assert events[-1].fields["label"] == "POST /api/v1/recommend"
