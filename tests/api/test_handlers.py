"""Tests for the MINARET REST API endpoints."""

import pytest

from repro.api.handlers import MinaretApi


@pytest.fixture()
def api(hub):
    return MinaretApi(hub)


def manuscript_payload(manuscript):
    return {
        "title": manuscript.title,
        "keywords": list(manuscript.keywords),
        "authors": [
            {
                "name": a.name,
                "affiliation": a.affiliation,
                "country": a.country,
            }
            for a in manuscript.authors
        ],
        "target_venue": manuscript.target_venue,
    }


class TestHealth:
    def test_health(self, api):
        response = api.handle("GET", "/api/v1/health")
        assert response.ok
        assert response.body["status"] == "ok"

    def test_routes_exposed(self, api):
        assert ("POST", "/api/v1/recommend") in api.routes()


class TestExpand:
    def test_paper_example(self, api):
        response = api.handle("POST", "/api/v1/expand", {"keywords": ["RDF"]})
        assert response.ok
        labels = {e["keyword"] for e in response.body["expansions"]}
        assert {"Semantic Web", "SPARQL", "Linked Open Data"} <= labels

    def test_depth_override(self, api):
        response = api.handle(
            "POST", "/api/v1/expand", {"keywords": ["RDF"], "max_depth": 0}
        )
        assert [e["keyword"] for e in response.body["expansions"]] == ["RDF"]

    def test_missing_keywords_400(self, api):
        assert api.handle("POST", "/api/v1/expand", {}).status == 400

    def test_empty_keywords_400(self, api):
        response = api.handle("POST", "/api/v1/expand", {"keywords": []})
        assert response.status == 400


class TestVerifyAuthors:
    def test_known_author(self, api, manuscript):
        author = manuscript.authors[0]
        response = api.handle(
            "POST",
            "/api/v1/verify-authors",
            {"authors": [{"name": author.name, "affiliation": author.affiliation}]},
        )
        assert response.ok
        verified = response.body["verified"][0]
        assert verified["name"] == author.name
        assert "dblp" in verified["source_ids"]

    def test_unknown_author_404(self, api):
        response = api.handle(
            "POST", "/api/v1/verify-authors", {"authors": [{"name": "Nobody Nowhere"}]}
        )
        assert response.status == 404

    def test_ambiguous_author_409(self, api, world):
        collision = next(
            a
            for a in world.authors.values()
            if len(world.authors_by_name(a.name)) > 1
        )
        response = api.handle(
            "POST", "/api/v1/verify-authors", {"authors": [{"name": collision.name}]}
        )
        assert response.status == 409

    def test_missing_body_400(self, api):
        assert api.handle("POST", "/api/v1/verify-authors", {}).status == 400


class TestRecommend:
    def test_full_workflow(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript), "top_k": 5},
        )
        assert response.ok
        body = response.body
        assert len(body["recommendations"]) <= 5
        for rec in body["recommendations"]:
            assert set(rec["breakdown"]) == {
                "topic_coverage",
                "scientific_impact",
                "recency",
                "review_experience",
                "outlet_familiarity",
                "timeliness",
            }
        assert [p["phase"] for p in body["phases"]] == [
            "verify_authors",
            "crawl_outlet",
            "expand_keywords",
            "extract_candidates",
            "filter",
            "rank",
        ]

    def test_config_overrides_applied(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": manuscript_payload(manuscript),
                "config": {"max_candidates": 3},
            },
        )
        assert response.ok
        extract = next(
            p for p in response.body["phases"] if p["phase"] == "extract_candidates"
        )
        assert extract["items_out"] <= 3

    def test_invalid_weights_400(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {
                "manuscript": manuscript_payload(manuscript),
                "config": {"weights": {"topic_coverage": -1.0}},
            },
        )
        assert response.status == 400

    def test_missing_manuscript_400(self, api):
        assert api.handle("POST", "/api/v1/recommend", {}).status == 400

    def test_manuscript_without_keywords_400(self, api, manuscript):
        payload = manuscript_payload(manuscript)
        payload["keywords"] = []
        response = api.handle(
            "POST", "/api/v1/recommend", {"manuscript": payload}
        )
        assert response.status == 400

    def test_invalid_top_k_400(self, api, manuscript):
        response = api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript), "top_k": 0},
        )
        assert response.status == 400


class TestAssign:
    def batch_payload(self, world, count=3):
        entries = []
        index = 0
        for author in world.authors.values():
            if index >= count:
                break
            if len(world.authors_by_name(author.name)) > 1:
                continue
            topics = sorted(author.topic_expertise)[:2]
            entries.append(
                {
                    "paper_id": f"paper-{index}",
                    "manuscript": {
                        "title": f"Batch {index}",
                        "keywords": [
                            world.ontology.topic(t).label for t in topics
                        ],
                        "authors": [
                            {
                                "name": author.name,
                                "affiliation": author.affiliations[-1].institution,
                            }
                        ],
                    },
                }
            )
            index += 1
        return entries

    def test_batch_assignment(self, api, world):
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {
                "manuscripts": self.batch_payload(world),
                "reviewers_per_paper": 2,
                "max_load": 2,
                "solver": "optimal",
            },
        )
        assert response.ok
        assignments = response.body["assignments"]
        assert len(assignments) == 3
        for reviewers in assignments.values():
            assert len(reviewers) <= 2
            for reviewer in reviewers:
                assert reviewer["name"]
        assert response.body["quality"]["max_load"] <= 2

    def test_unknown_solver_400(self, api, world):
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {
                "manuscripts": self.batch_payload(world, count=1),
                "solver": "simulated-annealing",
            },
        )
        assert response.status == 400

    def test_missing_paper_id_400(self, api):
        response = api.handle(
            "POST",
            "/api/v1/assign",
            {"manuscripts": [{"manuscript": {}}]},
        )
        assert response.status == 400

    def test_empty_batch_400(self, api):
        assert api.handle("POST", "/api/v1/assign", {"manuscripts": []}).status == 400

    def test_duplicate_paper_ids_400(self, api, world):
        entry = self.batch_payload(world, count=1)[0]
        response = api.handle(
            "POST", "/api/v1/assign", {"manuscripts": [entry, entry]}
        )
        assert response.status == 400


class TestSourceStats:
    def test_stats_accumulate(self, api, manuscript):
        api.handle(
            "POST",
            "/api/v1/recommend",
            {"manuscript": manuscript_payload(manuscript)},
        )
        response = api.handle("GET", "/api/v1/sources")
        assert response.ok
        by_host = {s["host"]: s for s in response.body["sources"]}
        assert by_host["scholar.google.com"]["requests"] > 0
