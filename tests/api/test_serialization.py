"""Tests for payload ↔ domain-object conversion."""

import pytest

from repro.api.router import ApiError
from repro.api.serialization import (
    config_from_payload,
    manuscript_from_payload,
    result_to_payload,
    scored_candidate_to_payload,
)
from repro.core.config import AffiliationCoiLevel, ImpactMetric
from repro.core.models import (
    Candidate,
    FilterDecision,
    Manuscript,
    ManuscriptAuthor,
    PhaseReport,
    RecommendationResult,
    ScoreBreakdown,
    ScoredCandidate,
)
from repro.scholarly.records import MergedProfile, Metrics


class TestManuscriptFromPayload:
    def test_full_payload(self):
        manuscript = manuscript_from_payload(
            {
                "title": "T",
                "keywords": ["rdf", "sparql"],
                "authors": [
                    {"name": "Ada", "affiliation": "MIT", "country": "US"}
                ],
                "target_venue": "Journal X",
                "abstract": "Short.",
            }
        )
        assert manuscript.keywords == ("rdf", "sparql")
        assert manuscript.authors[0].affiliation == "MIT"
        assert manuscript.target_venue == "Journal X"

    def test_minimal_payload(self):
        manuscript = manuscript_from_payload(
            {"keywords": ["rdf"], "authors": [{"name": "Ada"}]}
        )
        assert manuscript.title == ""
        assert manuscript.authors[0].country == ""

    def test_missing_keywords_is_api_error(self):
        with pytest.raises(ApiError) as exc_info:
            manuscript_from_payload({"authors": [{"name": "Ada"}]})
        assert exc_info.value.status == 400
        assert "keywords" in exc_info.value.message

    def test_missing_authors_is_api_error(self):
        with pytest.raises(ApiError):
            manuscript_from_payload({"keywords": ["rdf"]})

    def test_empty_keywords_is_api_error(self):
        with pytest.raises(ApiError):
            manuscript_from_payload({"keywords": [], "authors": [{"name": "A"}]})

    def test_author_without_name_is_api_error(self):
        with pytest.raises(ApiError):
            manuscript_from_payload({"keywords": ["k"], "authors": [{}]})


class TestConfigFromPayload:
    def test_empty_payload_gives_defaults(self):
        config = config_from_payload({})
        assert config.impact_metric is ImpactMetric.H_INDEX
        assert config.max_candidates == 50

    def test_weights_override(self):
        config = config_from_payload({"weights": {"topic_coverage": 0.9}})
        assert config.weights.topic_coverage == 0.9

    def test_unknown_weight_rejected(self):
        with pytest.raises(ApiError):
            config_from_payload({"weights": {"charisma": 1.0}})

    def test_coi_overrides(self):
        config = config_from_payload(
            {
                "coi": {
                    "check_coauthorship": False,
                    "affiliation_level": "country",
                    "lookback_years": 5,
                }
            }
        )
        assert not config.filters.coi.check_coauthorship
        assert config.filters.coi.affiliation_level is AffiliationCoiLevel.COUNTRY
        assert config.filters.coi.coauthorship_lookback_years == 5

    def test_bad_affiliation_level_rejected(self):
        with pytest.raises(ApiError):
            config_from_payload({"coi": {"affiliation_level": "continent"}})

    def test_constraints(self):
        config = config_from_payload(
            {"constraints": {"min_citations": 10, "max_h_index": 40}}
        )
        assert config.filters.constraints.min_citations == 10
        assert config.filters.constraints.max_h_index == 40

    def test_unknown_constraint_rejected(self):
        with pytest.raises(ApiError):
            config_from_payload({"constraints": {"min_charm": 1}})

    def test_impact_metric(self):
        config = config_from_payload({"impact_metric": "citations"})
        assert config.impact_metric is ImpactMetric.CITATIONS

    def test_pc_members(self):
        config = config_from_payload({"pc_members": ["Ada", "Bob"]})
        assert config.filters.pc_members == ("Ada", "Bob")

    def test_owa_aggregation(self):
        from repro.core.config import AggregationMethod

        config = config_from_payload(
            {"aggregation": "owa", "owa_weights": [0.5, 0.3, 0.2]}
        )
        assert config.aggregation is AggregationMethod.OWA
        assert config.owa_weights == (0.5, 0.3, 0.2)

    def test_bad_aggregation_rejected(self):
        with pytest.raises(ApiError):
            config_from_payload({"aggregation": "geometric"})

    def test_bad_owa_weights_rejected(self):
        with pytest.raises(ApiError):
            config_from_payload({"owa_weights": [-1.0]})


class TestResultSerialization:
    def make_result(self):
        candidate = Candidate(
            candidate_id="sch_1",
            name="Ada",
            profile=MergedProfile(
                canonical_name="Ada",
                source_ids=(),
                interests=("rdf",),
                metrics=Metrics(citations=10, h_index=2),
            ),
            matched_keywords={"rdf": 1.0},
        )
        candidate.review_count = 4
        scored = ScoredCandidate(candidate, 0.75, ScoreBreakdown(topic_coverage=1.0))
        return RecommendationResult(
            manuscript=Manuscript(
                title="T", keywords=("rdf",), authors=(ManuscriptAuthor("A"),)
            ),
            verified_authors=[],
            expanded_keywords=[],
            candidates=[candidate],
            filter_decisions=[FilterDecision("sch_2", False, ("COI: x",))],
            ranked=[scored],
            phase_reports=[PhaseReport(phase="rank", requests=0)],
        )

    def test_scored_candidate_payload(self):
        result = self.make_result()
        payload = scored_candidate_to_payload(result.ranked[0])
        assert payload["name"] == "Ada"
        assert payload["total_score"] == 0.75
        assert payload["breakdown"]["topic_coverage"] == 1.0
        assert payload["h_index"] == 2
        assert payload["review_count"] == 4

    def test_result_payload_shape(self):
        payload = result_to_payload(self.make_result())
        assert payload["manuscript"]["title"] == "T"
        assert len(payload["recommendations"]) == 1
        assert payload["rejected"][0]["reasons"] == ["COI: x"]
        assert payload["phases"][0]["phase"] == "rank"

    def test_top_k_truncates(self):
        payload = result_to_payload(self.make_result(), top_k=0)
        # top_k=0 is nonsensical but must not crash serialization layer;
        # handler-level validation rejects it before this point.
        assert payload["recommendations"] == []

    def test_payload_is_json_serializable(self):
        import json

        json.dumps(result_to_payload(self.make_result()))
