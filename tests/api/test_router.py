"""Tests for the API router."""

import pytest

from repro.api.router import ApiError, ApiRequest, Router


@pytest.fixture()
def router():
    r = Router()
    r.add("GET", "/things", lambda req: {"all": True})
    r.add("GET", "/things/{id}", lambda req: {"id": req.path_params["id"]})
    r.add("POST", "/things", lambda req: {"created": req.require("name")})
    return r


class TestDispatch:
    def test_exact_route(self, router):
        response = router.dispatch("GET", "/things")
        assert response.ok
        assert response.body == {"all": True}

    def test_path_params(self, router):
        response = router.dispatch("GET", "/things/42")
        assert response.body == {"id": "42"}

    def test_unknown_path_404(self, router):
        assert router.dispatch("GET", "/nope").status == 404

    def test_wrong_method_405(self, router):
        assert router.dispatch("DELETE", "/things").status == 405

    def test_method_case_insensitive(self, router):
        assert router.dispatch("get", "/things").ok

    def test_trailing_slash_tolerated(self, router):
        assert router.dispatch("GET", "/things/").ok


class TestErrors:
    def test_api_error_maps_to_status(self, router):
        response = router.dispatch("POST", "/things", {})
        assert response.status == 400
        assert "name" in response.body["error"]

    def test_value_error_becomes_400(self):
        router = Router()

        def boom(request):
            raise ValueError("bad input")

        router.add("GET", "/boom", boom)
        response = router.dispatch("GET", "/boom")
        assert response.status == 400
        assert response.body["error"] == "bad input"

    def test_custom_api_error_status(self):
        router = Router()

        def conflict(request):
            raise ApiError(409, "conflict!")

        router.add("GET", "/c", conflict)
        assert router.dispatch("GET", "/c").status == 409


class TestRegistration:
    def test_duplicate_route_rejected(self, router):
        with pytest.raises(ValueError):
            router.add("GET", "/things", lambda req: {})

    def test_same_path_different_methods_allowed(self, router):
        router.add("DELETE", "/things", lambda req: {"deleted": True})
        assert router.dispatch("DELETE", "/things").ok

    def test_routes_listing(self, router):
        assert ("GET", "/things") in router.routes()
        assert ("GET", "/things/{id}") in router.routes()


class TestRequest:
    def test_require_present(self):
        request = ApiRequest("POST", "/x", body={"a": 1})
        assert request.require("a") == 1

    def test_require_missing_raises(self):
        request = ApiRequest("POST", "/x", body={})
        with pytest.raises(ApiError) as exc_info:
            request.require("a")
        assert exc_info.value.status == 400
