"""Tests for the API router."""

import pytest

from repro.api.router import ApiError, ApiRequest, Router, ValidationError
from repro.obs import Observability, use


@pytest.fixture()
def router():
    r = Router()
    r.add("GET", "/things", lambda req: {"all": True})
    r.add("GET", "/things/{id}", lambda req: {"id": req.path_params["id"]})
    r.add("POST", "/things", lambda req: {"created": req.require("name")})
    return r


class TestDispatch:
    def test_exact_route(self, router):
        response = router.dispatch("GET", "/things")
        assert response.ok
        assert response.body == {"all": True}

    def test_path_params(self, router):
        response = router.dispatch("GET", "/things/42")
        assert response.body == {"id": "42"}

    def test_unknown_path_404(self, router):
        assert router.dispatch("GET", "/nope").status == 404

    def test_wrong_method_405(self, router):
        assert router.dispatch("DELETE", "/things").status == 405

    def test_405_lists_allowed_methods(self, router):
        # /things is registered under GET and POST; the 405 envelope
        # must advertise both, sorted, like an Allow header would.
        response = router.dispatch("DELETE", "/things")
        assert response.status == 405
        assert response.body["allow"] == ["GET", "POST"]

    def test_405_allow_excludes_other_paths(self, router):
        # /things/{id} is GET-only; its 405 must not leak methods
        # registered on sibling paths.
        response = router.dispatch("POST", "/things/42")
        assert response.status == 405
        assert response.body["allow"] == ["GET"]

    def test_method_case_insensitive(self, router):
        assert router.dispatch("get", "/things").ok

    def test_trailing_slash_tolerated(self, router):
        assert router.dispatch("GET", "/things/").ok


class TestErrors:
    def test_api_error_maps_to_status(self, router):
        response = router.dispatch("POST", "/things", {})
        assert response.status == 400
        assert "name" in response.body["error"]

    def test_validation_error_becomes_400(self):
        router = Router()

        def boom(request):
            raise ValidationError("bad input")

        router.add("GET", "/boom", boom)
        response = router.dispatch("GET", "/boom")
        assert response.status == 400
        assert response.body["error"] == "bad input"

    def test_custom_api_error_status(self):
        router = Router()

        def conflict(request):
            raise ApiError(409, "conflict!")

        router.add("GET", "/c", conflict)
        assert router.dispatch("GET", "/c").status == 409

    def test_value_error_is_a_crash_not_a_client_error(self):
        # Regression: bare ValueError used to be laundered into a 400,
        # hiding handler bugs behind "bad request".  It must be a 500.
        router = Router()

        def buggy(request):
            raise ValueError("off-by-one in the handler")

        router.add("GET", "/buggy", buggy)
        with use(Observability()):
            response = router.dispatch("GET", "/buggy")
        assert response.status == 500
        assert response.body["error"] == "internal server error"
        assert response.body["exception"] == "ValueError"

    def test_crash_emits_event_and_counter(self):
        router = Router()

        def explode(request):
            raise RuntimeError("kaboom")

        router.add("POST", "/explode", explode)
        obs = Observability()
        with use(obs):
            response = router.dispatch("POST", "/explode", {"x": 1})
        assert response.status == 500
        assert response.body["exception"] == "RuntimeError"
        assert response.body["detail"] == "kaboom"
        events = obs.ring.events("api.handler_crashed")
        assert len(events) == 1
        assert events[0].fields["exception"] == "RuntimeError"
        assert events[0].fields["path"] == "/explode"
        crashes = obs.metrics.counter_value(
            "api_handler_crashes_total",
            route="/explode",
            exception="RuntimeError",
        )
        assert crashes == 1


class TestQueryParsing:
    @pytest.fixture()
    def echo_router(self):
        r = Router()
        r.add("GET", "/echo", lambda req: dict(req.query))
        return r

    @pytest.mark.parametrize(
        ("query", "expected"),
        [
            # plain pairs
            ("a=1&b=2", {"a": "1", "b": "2"}),
            # percent-escapes decode in values...
            ("q=deep%20learning", {"q": "deep learning"}),
            # ...and in keys
            ("my%20key=v", {"my key": "v"}),
            # '+' is a space, same as %20
            ("q=deep+learning", {"q": "deep learning"}),
            # escaped reserved characters survive decoding
            ("q=a%3Db%26c", {"q": "a=b&c"}),
            # value-less and empty-value keys
            ("flag&x=", {"flag": "", "x": ""}),
            # duplicate keys: last occurrence wins, deterministically
            ("k=first&k=last", {"k": "last"}),
            # keys that only collide *after* decoding also last-win
            ("a%20b=1&a+b=2", {"a b": "2"}),
            # empty pieces are skipped
            ("&&a=1&&", {"a": "1"}),
            ("", {}),
        ],
    )
    def test_decoding_table(self, echo_router, query, expected):
        response = echo_router.dispatch("GET", f"/echo?{query}")
        assert response.ok
        assert response.body == expected

    def test_query_ignored_for_route_matching(self, echo_router):
        assert echo_router.dispatch("GET", "/echo?x=1").ok
        assert echo_router.dispatch("GET", "/echo").ok


class TestRegistration:
    def test_duplicate_route_rejected(self, router):
        with pytest.raises(ValueError):
            router.add("GET", "/things", lambda req: {})

    def test_same_path_different_methods_allowed(self, router):
        router.add("DELETE", "/things", lambda req: {"deleted": True})
        assert router.dispatch("DELETE", "/things").ok

    def test_routes_listing(self, router):
        assert ("GET", "/things") in router.routes()
        assert ("GET", "/things/{id}") in router.routes()


class TestRequest:
    def test_require_present(self):
        request = ApiRequest("POST", "/x", body={"a": 1})
        assert request.require("a") == 1

    def test_require_missing_raises(self):
        request = ApiRequest("POST", "/x", body={})
        with pytest.raises(ApiError) as exc_info:
            request.require("a")
        assert exc_info.value.status == 400
