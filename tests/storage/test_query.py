"""Unit tests for the predicate language."""

import pytest

from repro.storage.documents import DocumentStore
from repro.storage.query import (
    And,
    Contains,
    Eq,
    Gte,
    In,
    Lte,
    Not,
    Or,
    Range,
    field_value,
    select,
)


class TestFieldValue:
    def test_flat(self):
        assert field_value({"a": 1}, "a") == 1

    def test_nested(self):
        assert field_value({"m": {"h": 12}}, "m.h") == 12

    def test_missing(self):
        assert field_value({}, "a") is None

    def test_missing_nested(self):
        assert field_value({"m": 5}, "m.h") is None


class TestLeafPredicates:
    def test_eq(self):
        assert Eq("x", 1).matches({"x": 1})
        assert not Eq("x", 1).matches({"x": 2})
        assert not Eq("x", 1).matches({})

    def test_in(self):
        assert In("x", [1, 2]).matches({"x": 2})
        assert not In("x", [1, 2]).matches({"x": 3})

    def test_contains(self):
        assert Contains("tags", "a").matches({"tags": ["a", "b"]})
        assert not Contains("tags", "z").matches({"tags": ["a"]})
        assert not Contains("tags", "a").matches({})

    def test_contains_non_container(self):
        assert not Contains("tags", "a").matches({"tags": 42})

    def test_gte(self):
        assert Gte("x", 5).matches({"x": 5})
        assert not Gte("x", 5).matches({"x": 4})
        assert not Gte("x", 5).matches({})

    def test_lte(self):
        assert Lte("x", 5).matches({"x": 5})
        assert not Lte("x", 5).matches({"x": 6})

    def test_incomparable_type_fails_closed(self):
        assert not Gte("x", 5).matches({"x": "string"})


class TestRange:
    def test_closed_interval(self):
        predicate = Range("h", 3, 10)
        assert predicate.matches({"h": 3})
        assert predicate.matches({"h": 10})
        assert not predicate.matches({"h": 2})
        assert not predicate.matches({"h": 11})

    def test_open_low(self):
        assert Range("h", None, 10).matches({"h": -100})

    def test_open_high(self):
        assert Range("h", 3, None).matches({"h": 1_000_000})

    def test_missing_field_fails(self):
        assert not Range("h", 0, 10).matches({})


class TestCombinators:
    def test_and(self):
        predicate = Eq("a", 1) & Eq("b", 2)
        assert predicate.matches({"a": 1, "b": 2})
        assert not predicate.matches({"a": 1, "b": 3})

    def test_empty_and_is_true(self):
        assert And([]).matches({})

    def test_or(self):
        predicate = Eq("a", 1) | Eq("a", 2)
        assert predicate.matches({"a": 2})
        assert not predicate.matches({"a": 3})

    def test_empty_or_is_false(self):
        assert not Or([]).matches({})

    def test_not(self):
        assert (~Eq("a", 1)).matches({"a": 2})
        assert not (~Eq("a", 1)).matches({"a": 1})

    def test_nested_combination(self):
        predicate = And([Or([Eq("a", 1), Eq("a", 2)]), Not(Eq("b", 0))])
        assert predicate.matches({"a": 2, "b": 1})
        assert not predicate.matches({"a": 2, "b": 0})


class TestSelect:
    @pytest.fixture()
    def store(self):
        store = DocumentStore()
        store.create_index("country", lambda d: d.get("country"))
        store.insert({"name": "a", "country": "EE", "h": 10})
        store.insert({"name": "b", "country": "DE", "h": 5})
        store.insert({"name": "c", "country": "EE", "h": 2})
        return store

    def test_full_scan_select(self, store):
        results = select(store, Gte("h", 5))
        assert {d.payload["name"] for d in results} == {"a", "b"}

    def test_eq_on_indexed_field_uses_index(self, store):
        store.reset_stats()
        results = select(store, Eq("country", "EE"))
        assert {d.payload["name"] for d in results} == {"a", "c"}
        assert store.stats.index_lookups == 1
        assert store.stats.scans == 0

    def test_eq_on_unindexed_field_scans(self, store):
        store.reset_stats()
        results = select(store, Eq("name", "b"))
        assert len(results) == 1
        assert store.stats.scans == 1
