"""Unit and property tests for the document store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.documents import DocumentStore
from repro.storage.errors import (
    DocumentNotFoundError,
    DuplicateDocumentError,
    IndexError_,
    VersionConflictError,
)


@pytest.fixture()
def store():
    return DocumentStore(name="test")


class TestInsertAndGet:
    def test_insert_returns_snapshot(self, store):
        doc = store.insert({"x": 1})
        assert doc.payload == {"x": 1}
        assert doc.version == 1

    def test_auto_ids_are_unique(self, store):
        ids = {store.insert({}).doc_id for __ in range(10)}
        assert len(ids) == 10

    def test_explicit_id(self, store):
        doc = store.insert({"x": 1}, doc_id="k")
        assert doc.doc_id == "k"
        assert store.get("k").payload == {"x": 1}

    def test_duplicate_id_rejected(self, store):
        store.insert({}, doc_id="k")
        with pytest.raises(DuplicateDocumentError):
            store.insert({}, doc_id="k")

    def test_get_missing_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.get("nope")

    def test_get_or_none(self, store):
        assert store.get_or_none("nope") is None
        store.insert({}, doc_id="k")
        assert store.get_or_none("k") is not None

    def test_contains_and_len(self, store):
        store.insert({}, doc_id="k")
        assert "k" in store
        assert "other" not in store
        assert len(store) == 1


class TestIsolation:
    def test_mutating_input_does_not_affect_store(self, store):
        payload = {"nested": {"v": 1}}
        store.insert(payload, doc_id="k")
        payload["nested"]["v"] = 99
        assert store.get("k").payload["nested"]["v"] == 1

    def test_mutating_output_does_not_affect_store(self, store):
        store.insert({"nested": {"v": 1}}, doc_id="k")
        snapshot = store.get("k")
        snapshot.payload["nested"]["v"] = 99
        assert store.get("k").payload["nested"]["v"] == 1


class TestUpdateAndDelete:
    def test_update_bumps_version(self, store):
        store.insert({"x": 1}, doc_id="k")
        updated = store.update("k", {"x": 2})
        assert updated.version == 2
        assert store.get("k").payload == {"x": 2}

    def test_update_missing_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.update("nope", {})

    def test_cas_success(self, store):
        store.insert({"x": 1}, doc_id="k")
        store.update("k", {"x": 2}, expected_version=1)

    def test_cas_conflict(self, store):
        store.insert({"x": 1}, doc_id="k")
        store.update("k", {"x": 2})
        with pytest.raises(VersionConflictError) as exc_info:
            store.update("k", {"x": 3}, expected_version=1)
        assert exc_info.value.expected == 1
        assert exc_info.value.actual == 2

    def test_delete(self, store):
        store.insert({}, doc_id="k")
        store.delete("k")
        assert "k" not in store

    def test_delete_missing_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.delete("nope")


class TestSecondaryIndexes:
    def test_single_value_index(self, store):
        store.create_index("country", lambda d: d.get("country"))
        store.insert({"name": "a", "country": "EE"})
        store.insert({"name": "b", "country": "DE"})
        store.insert({"name": "c", "country": "EE"})
        names = {doc.payload["name"] for doc in store.lookup("country", "EE")}
        assert names == {"a", "c"}

    def test_multi_value_index(self, store):
        store.create_index("tags", lambda d: d.get("tags", ()))
        store.insert({"name": "a", "tags": ["x", "y"]})
        assert store.lookup_ids("tags", "x") == store.lookup_ids("tags", "y")

    def test_none_key_excluded(self, store):
        store.create_index("maybe", lambda d: d.get("maybe"))
        store.insert({})
        assert store.index_keys("maybe") == []

    def test_backfill_on_creation(self, store):
        store.insert({"k": "v"}, doc_id="d")
        store.create_index("k", lambda d: d.get("k"))
        assert store.lookup_ids("k", "v") == ["d"]

    def test_update_reindexes(self, store):
        store.create_index("k", lambda d: d.get("k"))
        store.insert({"k": "old"}, doc_id="d")
        store.update("d", {"k": "new"})
        assert store.lookup_ids("k", "old") == []
        assert store.lookup_ids("k", "new") == ["d"]

    def test_delete_unindexes(self, store):
        store.create_index("k", lambda d: d.get("k"))
        store.insert({"k": "v"}, doc_id="d")
        store.delete("d")
        assert store.lookup_ids("k", "v") == []

    def test_duplicate_index_name_rejected(self, store):
        store.create_index("k", lambda d: None)
        with pytest.raises(IndexError_):
            store.create_index("k", lambda d: None)

    def test_unknown_index_rejected(self, store):
        with pytest.raises(IndexError_):
            store.lookup("nope", "x")

    def test_drop_index(self, store):
        store.create_index("k", lambda d: d.get("k"))
        store.drop_index("k")
        assert "k" not in store.index_names()

    def test_drop_unknown_index_rejected(self, store):
        with pytest.raises(IndexError_):
            store.drop_index("nope")


class TestScanAndStats:
    def test_scan_yields_everything(self, store):
        for i in range(5):
            store.insert({"i": i})
        assert sorted(d.payload["i"] for d in store.scan()) == list(range(5))

    def test_stats_count_operations(self, store):
        store.insert({}, doc_id="a")
        store.get("a")
        store.update("a", {})
        store.delete("a")
        assert store.stats.inserts == 1
        assert store.stats.reads == 1
        assert store.stats.updates == 1
        assert store.stats.deletes == 1
        assert store.stats.total_operations() == 4

    def test_reset_stats(self, store):
        store.insert({})
        store.reset_stats()
        assert store.stats.total_operations() == 0

    def test_clear_keeps_indexes(self, store):
        store.create_index("k", lambda d: d.get("k"))
        store.insert({"k": "v"})
        store.clear()
        assert len(store) == 0
        assert store.index_names() == ["k"]
        assert store.lookup_ids("k", "v") == []


class TestProperties:
    @given(
        st.lists(
            st.dictionaries(st.sampled_from("abc"), st.integers(), max_size=3),
            max_size=20,
        )
    )
    def test_insert_then_get_roundtrips(self, payloads):
        store = DocumentStore()
        inserted = [store.insert(p) for p in payloads]
        for doc, payload in zip(inserted, payloads):
            assert store.get(doc.doc_id).payload == payload

    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=30))
    def test_index_is_consistent_with_scan(self, keys):
        store = DocumentStore()
        store.create_index("key", lambda d: d["key"])
        for key in keys:
            store.insert({"key": key})
        for key in set(keys):
            via_index = len(store.lookup_ids("key", key))
            via_scan = sum(1 for d in store.scan() if d.payload["key"] == key)
            assert via_index == via_scan
