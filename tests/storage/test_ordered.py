"""Tests for ordered indexes and range lookups."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.documents import DocumentStore
from repro.storage.errors import IndexError_
from repro.storage.ordered import OrderedIndex, OrderedIndexManager


class TestOrderedIndex:
    @pytest.fixture()
    def index(self):
        idx = OrderedIndex()
        for year, doc in ((2015, "a"), (2018, "b"), (2016, "c"), (2016, "d")):
            idx.add(year, doc)
        return idx

    def test_range_closed(self, index):
        assert index.range(2015, 2016) == ["a", "c", "d"]

    def test_range_single_key(self, index):
        assert index.range(2016, 2016) == ["c", "d"]

    def test_range_open_low(self, index):
        assert index.range(None, 2015) == ["a"]

    def test_range_open_high(self, index):
        assert index.range(2018, None) == ["b"]

    def test_range_fully_open(self, index):
        assert index.range() == ["a", "c", "d", "b"]

    def test_range_empty_interval(self, index):
        assert index.range(2019, 2025) == []

    def test_duplicate_pair_ignored(self, index):
        index.add(2015, "a")
        assert len(index) == 4

    def test_remove(self, index):
        index.remove(2016, "c")
        assert index.range(2016, 2016) == ["d"]

    def test_remove_absent_is_noop(self, index):
        index.remove(1999, "zzz")
        assert len(index) == 4

    def test_min_max(self, index):
        assert index.min_key() == 2015
        assert index.max_key() == 2018

    def test_empty_min_max(self):
        idx = OrderedIndex()
        assert idx.min_key() is None
        assert idx.max_key() is None

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 20)), max_size=60))
    def test_range_matches_filter(self, pairs):
        index = OrderedIndex()
        seen = set()
        for key, doc_number in pairs:
            doc_id = f"d{doc_number}"
            index.add(key, doc_id)
            seen.add((key, doc_id))
        low, high = 10, 30
        expected = sorted(
            doc_id for key, doc_id in seen if low <= key <= high
        )
        assert sorted(index.range(low, high)) == expected


class TestManager:
    @pytest.fixture()
    def managed(self):
        store = DocumentStore()
        store.insert({"year": 2015, "t": "x"}, doc_id="a")
        store.insert({"year": 2018, "t": "y"}, doc_id="b")
        manager = OrderedIndexManager(store)
        manager.create_index("year", lambda d: d.get("year"))
        return store, manager

    def test_backfill(self, managed):
        __, manager = managed
        assert manager.range_lookup("year", 2015, 2018) == ["a", "b"]

    def test_duplicate_index_rejected(self, managed):
        __, manager = managed
        with pytest.raises(IndexError_):
            manager.create_index("year", lambda d: None)

    def test_unknown_index_rejected(self, managed):
        __, manager = managed
        with pytest.raises(IndexError_):
            manager.range_lookup("nope")

    def test_on_insert_and_delete(self, managed):
        store, manager = managed
        doc = store.insert({"year": 2016}, doc_id="c")
        manager.on_insert("c", {"year": 2016})
        assert manager.range_lookup("year", 2016, 2016) == ["c"]
        manager.on_delete("c", {"year": 2016})
        assert manager.range_lookup("year", 2016, 2016) == []

    def test_none_key_skipped(self, managed):
        store, manager = managed
        manager.on_insert("d", {"no_year": True})
        assert "d" not in manager.range_lookup("year")


class TestDblpYearSearch:
    def test_year_range_query(self, shared_hub, world):
        hits = shared_hub.dblp.publications_by_year(2015, 2016, limit=1000)
        expected = sum(
            1 for p in world.publications.values() if 2015 <= p.year <= 2016
        )
        assert len(hits) == expected
        assert all(2015 <= h["year"] <= 2016 for h in hits)

    def test_venue_type_filter(self, shared_hub):
        hits = shared_hub.dblp.publications_by_year(
            2010, 2019, venue_type="journal", limit=1000
        )
        assert hits
        assert all(h["venue_type"] == "journal" for h in hits)

    def test_limit_respected(self, shared_hub):
        hits = shared_hub.dblp.publications_by_year(2000, 2019, limit=5)
        assert len(hits) <= 5
