"""Tests for WAL + snapshot persistence, including crash recovery."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.persistence import JournaledStore, PersistentStoreError


@pytest.fixture()
def directory(tmp_path):
    return tmp_path / "store"


class TestBasicDurability:
    def test_insert_survives_reopen(self, directory):
        with JournaledStore.open(directory) as store:
            doc = store.insert({"name": "Ada"})
        with JournaledStore.open(directory) as reopened:
            assert reopened.get(doc.doc_id).payload == {"name": "Ada"}

    def test_update_survives_reopen(self, directory):
        with JournaledStore.open(directory) as store:
            doc = store.insert({"v": 1})
            store.update(doc.doc_id, {"v": 2})
        with JournaledStore.open(directory) as reopened:
            assert reopened.get(doc.doc_id).payload == {"v": 2}

    def test_delete_survives_reopen(self, directory):
        with JournaledStore.open(directory) as store:
            doc = store.insert({"v": 1})
            store.delete(doc.doc_id)
        with JournaledStore.open(directory) as reopened:
            assert doc.doc_id not in reopened

    def test_fresh_directory_is_empty(self, directory):
        with JournaledStore.open(directory) as store:
            assert len(store) == 0

    def test_reads_pass_through(self, directory):
        with JournaledStore.open(directory) as store:
            doc = store.insert({"x": 1})
            assert doc.doc_id in store
            assert len(store) == 1


class TestSnapshots:
    def test_snapshot_truncates_wal(self, directory):
        with JournaledStore.open(directory) as store:
            store.insert({"a": 1})
            store.insert({"b": 2})
            assert store.entries_since_snapshot == 2
            store.snapshot()
            assert store.entries_since_snapshot == 0
            assert (directory / "wal.jsonl").read_text() == ""

    def test_recovery_from_snapshot_only(self, directory):
        with JournaledStore.open(directory) as store:
            doc = store.insert({"a": 1})
            store.snapshot()
        with JournaledStore.open(directory) as reopened:
            assert reopened.get(doc.doc_id).payload == {"a": 1}

    def test_recovery_from_snapshot_plus_tail(self, directory):
        with JournaledStore.open(directory) as store:
            first = store.insert({"a": 1})
            store.snapshot()
            second = store.insert({"b": 2})
            store.update(first.doc_id, {"a": 99})
        with JournaledStore.open(directory) as reopened:
            assert reopened.get(first.doc_id).payload == {"a": 99}
            assert reopened.get(second.doc_id).payload == {"b": 2}

    def test_bad_snapshot_format_rejected(self, directory):
        directory.mkdir(parents=True)
        (directory / "snapshot.json").write_text(
            json.dumps({"format": "bogus", "documents": {}})
        )
        with pytest.raises(PersistentStoreError):
            JournaledStore.open(directory)


class TestCrashScenarios:
    def test_torn_wal_tail_recovers_prefix(self, directory):
        with JournaledStore.open(directory) as store:
            kept = store.insert({"a": 1})
        # Simulate a crash mid-append: garbage half-line at the end.
        with open(directory / "wal.jsonl", "a") as wal:
            wal.write('{"op": "insert", "id": "torn", "payl')
        with JournaledStore.open(directory) as reopened:
            assert kept.doc_id in reopened
            assert "torn" not in reopened

    def test_redundant_replay_after_unclean_snapshot(self, directory):
        # Crash between snapshot rename and WAL truncation: the WAL
        # still contains entries already folded into the snapshot.
        with JournaledStore.open(directory) as store:
            doc = store.insert({"v": 1})
            # Write the snapshot by hand without truncating the WAL.
            documents = {d.doc_id: d.payload for d in store.store.scan()}
            (directory / "snapshot.json").write_text(
                json.dumps({"format": "minaret-wal/1", "documents": documents})
            )
        with JournaledStore.open(directory) as reopened:
            assert reopened.get(doc.doc_id).payload == {"v": 1}
            assert len(reopened) == 1

    def test_unknown_wal_op_rejected(self, directory):
        directory.mkdir(parents=True)
        (directory / "wal.jsonl").write_text('{"op": "truncate-all"}\n')
        with pytest.raises(PersistentStoreError):
            JournaledStore.open(directory)


class TestBatches:
    def test_batch_applies_and_survives_reopen(self, directory):
        with JournaledStore.open(directory) as store:
            with store.batch() as batch:
                batch.insert({"a": 1}, doc_id="x")
                batch.insert({"b": 2}, doc_id="y")
                batch.update("x", {"a": 10})
        with JournaledStore.open(directory) as reopened:
            assert reopened.get("x").payload == {"a": 10}
            assert reopened.get("y").payload == {"b": 2}

    def test_batch_is_one_wal_record(self, directory):
        with JournaledStore.open(directory) as store:
            with store.batch() as batch:
                batch.insert({"a": 1}, doc_id="x")
                batch.insert({"b": 2}, doc_id="y")
            assert store.entries_since_snapshot == 1

    def test_failed_batch_rolls_back_memory(self, directory):
        with JournaledStore.open(directory) as store:
            store.insert({"v": 1}, doc_id="pre")
            with pytest.raises(RuntimeError):
                with store.batch() as batch:
                    batch.insert({"a": 1}, doc_id="x")
                    batch.update("pre", {"v": 2})
                    batch.delete("pre")
                    raise RuntimeError("abort")
            assert "x" not in store
            assert store.get("pre").payload == {"v": 1}

    def test_failed_batch_logs_nothing(self, directory):
        with JournaledStore.open(directory) as store:
            with pytest.raises(RuntimeError):
                with store.batch() as batch:
                    batch.insert({"a": 1}, doc_id="x")
                    raise RuntimeError("abort")
        with JournaledStore.open(directory) as reopened:
            assert "x" not in reopened

    def test_torn_batch_record_is_all_or_nothing(self, directory):
        with JournaledStore.open(directory) as store:
            store.insert({"v": 1}, doc_id="durable")
        # A batch record that never finished being written.
        with open(directory / "wal.jsonl", "a") as wal:
            wal.write('{"op": "batch", "entries": [{"op": "insert", "id": "t1"')
        with JournaledStore.open(directory) as reopened:
            assert "durable" in reopened
            assert "t1" not in reopened

    def test_batch_sees_its_own_writes(self, directory):
        with JournaledStore.open(directory) as store:
            with store.batch() as batch:
                batch.insert({"v": 1}, doc_id="x")
                batch.update("x", {"v": 2})
            assert store.get("x").payload == {"v": 2}

    def test_empty_batch_logs_nothing(self, directory):
        with JournaledStore.open(directory) as store:
            with store.batch():
                pass
            assert store.entries_since_snapshot == 0


class TestIndexRebuild:
    def test_indexes_backfill_after_open(self, directory):
        with JournaledStore.open(directory) as store:
            store.insert({"country": "EE"}, doc_id="a")
            store.insert({"country": "DE"}, doc_id="b")
        with JournaledStore.open(directory) as reopened:
            reopened.store.create_index("country", lambda d: d.get("country"))
            assert reopened.store.lookup_ids("country", "EE") == ["a"]


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "delete", "snapshot"]),
                st.sampled_from(["d1", "d2", "d3"]),
                st.integers(0, 100),
            ),
            max_size=30,
        )
    )
    def test_reopen_equals_in_memory(self, tmp_path_factory, operations):
        """After any operation sequence, reopen == live state."""
        directory = tmp_path_factory.mktemp("journal")
        with JournaledStore.open(directory) as store:
            for operation, doc_id, value in operations:
                if operation == "insert" and doc_id not in store:
                    store.insert({"v": value}, doc_id=doc_id)
                elif operation == "update" and doc_id in store:
                    store.update(doc_id, {"v": value})
                elif operation == "delete" and doc_id in store:
                    store.delete(doc_id)
                elif operation == "snapshot":
                    store.snapshot()
            live = {d.doc_id: d.payload for d in store.store.scan()}
        with JournaledStore.open(directory) as reopened:
            recovered = {d.doc_id: d.payload for d in reopened.store.scan()}
        assert recovered == live
