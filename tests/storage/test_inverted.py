"""Unit and property tests for the inverted index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.inverted import InvertedIndex, Posting


@pytest.fixture()
def index():
    idx = InvertedIndex()
    idx.add("alice", {"rdf": 2.0, "sparql": 1.0})
    idx.add("bob", {"rdf": 1.0, "ml": 3.0})
    idx.add("carol", {"ml": 1.0})
    return idx


class TestAddRemove:
    def test_len_counts_documents(self, index):
        assert len(index) == 3

    def test_contains(self, index):
        assert "alice" in index
        assert "dave" not in index

    def test_term_count(self, index):
        assert index.term_count == 3

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            InvertedIndex().add("d", {"t": 0.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            InvertedIndex().add("d", {"t": -1.0})

    def test_re_add_overwrites_weight(self, index):
        index.add("alice", {"rdf": 5.0})
        postings = index.postings("rdf")
        alice = next(p for p in postings if p.doc_id == "alice")
        assert alice.weight == 5.0

    def test_remove_drops_all_postings(self, index):
        index.remove("alice")
        assert "alice" not in index
        assert all(p.doc_id != "alice" for p in index.postings("rdf"))

    def test_remove_unknown_is_noop(self, index):
        index.remove("nobody")
        assert len(index) == 3

    def test_remove_cleans_empty_terms(self):
        idx = InvertedIndex()
        idx.add("only", {"term": 1.0})
        idx.remove("only")
        assert idx.term_count == 0

    def test_terms_of(self, index):
        assert index.terms_of("alice") == {"rdf", "sparql"}
        assert index.terms_of("nobody") == set()


class TestPostings:
    def test_sorted_by_weight_desc(self, index):
        postings = index.postings("rdf")
        assert postings == [Posting("alice", 2.0), Posting("bob", 1.0)]

    def test_unknown_term_empty(self, index):
        assert index.postings("nope") == []

    def test_document_frequency(self, index):
        assert index.document_frequency("rdf") == 2
        assert index.document_frequency("nope") == 0


class TestRankedSearch:
    def test_single_term(self, index):
        results = index.search(["rdf"], use_idf=False)
        assert [p.doc_id for p in results] == ["alice", "bob"]

    def test_multi_term_accumulates(self, index):
        results = index.search(["rdf", "ml"], use_idf=False)
        scores = {p.doc_id: p.weight for p in results}
        assert scores["bob"] == pytest.approx(4.0)

    def test_query_weights_scale(self, index):
        results = index.search(
            ["rdf", "ml"], query_weights={"ml": 0.1}, use_idf=False
        )
        scores = {p.doc_id: p.weight for p in results}
        assert scores["alice"] > scores["carol"]

    def test_limit(self, index):
        assert len(index.search(["rdf", "ml"], limit=1)) == 1

    def test_limit_keeps_best(self, index):
        best = index.search(["rdf"], use_idf=False, limit=1)[0]
        assert best.doc_id == "alice"

    def test_idf_downweights_common_terms(self):
        idx = InvertedIndex()
        for i in range(10):
            idx.add(f"d{i}", {"common": 1.0})
        idx.add("d0", {"rare": 1.0})
        results = idx.search(["common", "rare"])
        assert results[0].doc_id == "d0"

    def test_unknown_terms_ignored(self, index):
        assert index.search(["nope"]) == []

    def test_empty_query(self, index):
        assert index.search([]) == []


class TestBooleanSearch:
    def test_and_semantics(self, index):
        assert index.search_all(["rdf", "ml"]) == ["bob"]

    def test_and_with_missing_term_is_empty(self, index):
        assert index.search_all(["rdf", "nope"]) == []

    def test_and_empty_query(self, index):
        assert index.search_all([]) == []

    def test_or_semantics(self, index):
        assert index.search_any(["sparql", "ml"]) == ["alice", "bob", "carol"]

    def test_or_unknown_terms(self, index):
        assert index.search_any(["nope"]) == []


class TestProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["d1", "d2", "d3", "d4"]),
            st.dictionaries(
                st.sampled_from(["t1", "t2", "t3"]),
                st.floats(0.1, 5.0),
                min_size=1,
                max_size=3,
            ),
            max_size=4,
        )
    )
    def test_search_any_matches_union_of_postings(self, corpus):
        index = InvertedIndex()
        for doc_id, weights in corpus.items():
            index.add(doc_id, weights)
        all_terms = {t for weights in corpus.values() for t in weights}
        expected = sorted(corpus)
        assert index.search_any(all_terms) == expected

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=10))
    def test_remove_everything_empties_index(self, doc_ids):
        index = InvertedIndex()
        for i, doc in enumerate(doc_ids):
            index.add(f"{doc}{i}", {"t": 1.0})
        for i, doc in enumerate(doc_ids):
            index.remove(f"{doc}{i}")
        assert len(index) == 0
        assert index.term_count == 0


class TestStats:
    def test_counts_live_content(self, index):
        stats = index.stats()
        assert stats["documents"] == len(index)
        assert stats["terms"] == index.term_count
        assert stats["postings"] == sum(
            index.document_frequency(t)
            for t in {term for d in index._document_terms for term in index.terms_of(d)}
        )

    def test_empty_index(self):
        assert InvertedIndex().stats() == {
            "terms": 0,
            "documents": 0,
            "postings": 0,
        }

    def test_add_term_empty_is_noop(self):
        index = InvertedIndex()
        index.add_term("ghost", {})
        assert index.stats() == {"terms": 0, "documents": 0, "postings": 0}

    def test_replace_term_leaves_no_empty_postings(self):
        index = InvertedIndex()
        index.add("a", {"x": 1.0, "y": 2.0})
        index.add("b", {"x": 1.0})
        index.replace_term("x", {})
        assert "x" not in index._postings
        assert index.stats() == {"terms": 1, "documents": 1, "postings": 1}
        assert "b" not in index  # b held only x

    def test_warm_refresh_cycles_do_not_grow_terms(self):
        """Regression for the warm retrieval plane: re-folding interest
        postings every refresh epoch replaces per-term lists, so index
        size must track live content, not refresh history."""
        index = InvertedIndex()
        terms = [f"topic-{i}" for i in range(12)]
        for epoch in range(50):
            for i, term in enumerate(terms):
                docs = {
                    f"author-{(epoch + j) % 9}": 1.0 + 0.01 * (epoch % 7)
                    for j in range(i % 4)
                }
                index.replace_term(term, docs)
        stats = index.stats()
        assert stats["terms"] <= len(terms)
        assert stats["documents"] <= 9
        assert stats["postings"] <= sum(i % 4 for i in range(12))
        # And every surviving posting list is non-empty.
        assert all(bucket for bucket in index._postings.values())
