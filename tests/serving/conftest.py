"""Fixtures for the serving front-end suite."""

from __future__ import annotations

import pytest

from repro.api.handlers import MinaretApi
from repro.serving import ServingConfig, ServingFrontend, TenantPolicy


@pytest.fixture()
def api(hub):
    return MinaretApi(hub)


def manuscript_payload(manuscript):
    return {
        "title": manuscript.title,
        "keywords": list(manuscript.keywords),
        "authors": [
            {
                "name": a.name,
                "affiliation": a.affiliation,
                "country": a.country,
            }
            for a in manuscript.authors
        ],
        "target_venue": manuscript.target_venue,
    }


@pytest.fixture()
def recommend_body(manuscript):
    return {"manuscript": manuscript_payload(manuscript), "top_k": 5}


def make_frontend(api, **overrides) -> ServingFrontend:
    """A front-end with small, test-friendly defaults."""
    defaults = dict(
        queue_capacity=8,
        default_policy=TenantPolicy(capacity=4, refill_rate=1.0),
    )
    defaults.update(overrides)
    return ServingFrontend(api, ServingConfig(**defaults))


@pytest.fixture()
def frontend(api):
    return make_frontend(api)
