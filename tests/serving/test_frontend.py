"""Tests for the admission-controlled serving front-end."""

import pytest

from repro.api.handlers import MinaretApi
from repro.scholarly.registry import ScholarlyHub
from repro.serving import (
    ServingConfig,
    TenantPolicy,
    canonical_body,
    request_key,
)
from tests.serving.conftest import make_frontend


class TestAdmission:
    def test_admitted_request_matches_direct_dispatch(
        self, world, frontend, recommend_body
    ):
        served = frontend.handle("POST", "/api/v1/recommend", recommend_body)
        assert served.status == 200
        direct = MinaretApi(ScholarlyHub.deploy(world)).handle(
            "POST", "/api/v1/recommend", recommend_body
        )
        assert canonical_body(served.body) == canonical_body(direct.body)

    def test_submit_queues_until_drain(self, frontend):
        admission = frontend.submit("GET", "/api/v1/health")
        assert admission.admitted
        assert admission.response is None
        assert frontend.queue_depth == 1
        frontend.drain()
        assert frontend.queue_depth == 0
        assert admission.status == 200

    def test_fifo_order_preserved(self, frontend):
        first = frontend.submit("GET", "/api/v1/health")
        second = frontend.submit("GET", "/api/v1/sources")
        batch = frontend.drain()
        assert batch == [first, second]
        assert all(a.response is not None for a in batch)

    def test_served_latency_includes_queue_wait(self, frontend):
        admission = frontend.submit("GET", "/api/v1/health")
        frontend.pop_queued()
        frontend.dispatch_one(admission, queue_wait=3.5)
        assert admission.served_latency == pytest.approx(
            3.5 + admission.service_seconds
        )


class TestRateLimiting:
    def test_429_envelope_carries_retry_after(self, api):
        front = make_frontend(
            api,
            default_policy=TenantPolicy(capacity=1, refill_rate=0.5),
            degraded_serving=False,
        )
        assert front.handle("GET", "/api/v1/health").status == 200
        shed = front.handle("GET", "/api/v1/health")
        assert shed.status == 429
        assert shed.body["reason"] == "rate_limited"
        assert shed.body["tenant"] == "default"
        assert shed.body["retry_after"] == pytest.approx(2.0)

    def test_retry_after_is_honored_on_the_virtual_clock(self, api):
        front = make_frontend(
            api,
            default_policy=TenantPolicy(capacity=1, refill_rate=0.5),
            degraded_serving=False,
        )
        front.handle("GET", "/api/v1/health")
        shed = front.handle("GET", "/api/v1/health")
        retry_after = shed.body["retry_after"]
        # Advancing to just before the hint keeps shedding...
        front.clock.advance(retry_after * 0.5)
        assert front.handle("GET", "/api/v1/health").status == 429
        # ...advancing past it admits.  handle() itself consumed some
        # virtual budget above, so re-read the hint from the last shed.
        final = front.submit("GET", "/api/v1/health")
        front.clock.advance(final.retry_after + 1e-6)
        assert front.handle("GET", "/api/v1/health").status == 200

    def test_tenants_are_isolated(self, api):
        front = make_frontend(
            api,
            default_policy=TenantPolicy(capacity=1, refill_rate=0.1),
            degraded_serving=False,
        )
        assert front.handle("GET", "/api/v1/health", tenant="noisy").status == 200
        assert front.handle("GET", "/api/v1/health", tenant="noisy").status == 429
        # The noisy tenant's exhaustion never touches the quiet one.
        assert front.handle("GET", "/api/v1/health", tenant="quiet").status == 200

    def test_per_tenant_policy_override(self, api):
        front = make_frontend(
            api,
            default_policy=TenantPolicy(capacity=1, refill_rate=0.1),
            tenant_policies=(("vip", TenantPolicy(capacity=10, refill_rate=5.0)),),
            degraded_serving=False,
        )
        for _ in range(5):
            assert front.handle("GET", "/api/v1/health", tenant="vip").status == 200


class TestQueueShedding:
    def test_full_queue_sheds_503(self, api):
        front = make_frontend(
            api, queue_capacity=2, shed_retry_after=7.0, degraded_serving=False
        )
        assert front.submit("GET", "/api/v1/health").admitted
        assert front.submit("GET", "/api/v1/health").admitted
        shed = front.submit("GET", "/api/v1/health")
        assert not shed.admitted
        assert shed.status == 503
        assert shed.response.body["reason"] == "queue_full"
        assert shed.response.body["retry_after"] == pytest.approx(7.0)
        assert shed.retry_after == pytest.approx(7.0)

    def test_drain_frees_the_queue(self, api):
        front = make_frontend(api, queue_capacity=1, degraded_serving=False)
        front.submit("GET", "/api/v1/health")
        assert front.submit("GET", "/api/v1/health").status == 503
        front.drain()
        assert front.submit("GET", "/api/v1/health").admitted

    def test_queue_full_shed_refunds_the_token(self, api):
        # Regression: a queue_full shed used to burn a rate-limit token
        # the tenant never got service for, so the retry the 503 hint
        # asked for could land on a spurious 429.
        front = make_frontend(
            api,
            queue_capacity=1,
            default_policy=TenantPolicy(capacity=2, refill_rate=0.001),
            degraded_serving=False,
        )
        assert front.submit("GET", "/api/v1/health").admitted
        assert front.submit("GET", "/api/v1/health").status == 503
        assert front.submit("GET", "/api/v1/health").status == 503
        # Only the admitted request consumed budget (no virtual time
        # passed, so nothing refilled): one token remains.
        assert front._bucket_for("default").available() == pytest.approx(1.0)
        front.drain()
        assert front.submit("GET", "/api/v1/health").admitted


class TestDegradation:
    def _exhaust(self, front, tenant="default"):
        while front._bucket_for(tenant).try_acquire():
            pass

    def test_warm_response_served_degraded(self, api, recommend_body):
        front = make_frontend(api, degraded_top_k=3)
        warm = front.handle("POST", "/api/v1/recommend", recommend_body)
        assert warm.status == 200
        self._exhaust(front)
        degraded = front.handle("POST", "/api/v1/recommend", recommend_body)
        assert degraded.status == 200
        assert degraded.body["degraded"] is True
        assert degraded.body["degraded_reason"] == "rate_limited"
        assert len(degraded.body["recommendations"]) <= 3
        # The surviving prefix is the warm answer's own top-3.
        expected = canonical_body(warm.body)["recommendations"][:3]
        assert degraded.body["recommendations"] == expected

    def test_cold_cache_sheds_instead(self, api, recommend_body):
        front = make_frontend(api)
        self._exhaust(front)
        shed = front.handle("POST", "/api/v1/recommend", recommend_body)
        assert shed.status == 429

    def test_disabled_degradation_always_sheds(self, api, recommend_body):
        front = make_frontend(api, degraded_serving=False)
        front.handle("POST", "/api/v1/recommend", recommend_body)
        self._exhaust(front)
        assert front.handle("POST", "/api/v1/recommend", recommend_body).status == 429

    def test_non_degradable_path_sheds(self, api):
        front = make_frontend(api)
        front.handle("GET", "/api/v1/health")
        self._exhaust(front)
        assert front.handle("GET", "/api/v1/health").status == 429

    def test_degraded_copy_does_not_corrupt_cache(self, api, recommend_body):
        front = make_frontend(api, degraded_top_k=None)
        front.handle("POST", "/api/v1/recommend", recommend_body)
        self._exhaust(front)
        first = front.handle("POST", "/api/v1/recommend", recommend_body)
        first.body["recommendations"].clear()
        first.body["mutated"] = True
        second = front.handle("POST", "/api/v1/recommend", recommend_body)
        assert "mutated" not in second.body
        assert second.body["degraded"] is True

    def test_warm_cache_is_lru_bounded(self, api, recommend_body):
        front = make_frontend(api, warm_capacity=1)
        other_body = {**recommend_body, "top_k": 2}
        front.handle("POST", "/api/v1/recommend", recommend_body)
        front.handle("POST", "/api/v1/recommend", other_body)
        self._exhaust(front)
        # The first key was evicted by the second: no warm fallback.
        assert front.handle("POST", "/api/v1/recommend", recommend_body).status == 429
        # The survivor still degrades.
        assert (
            front.handle("POST", "/api/v1/recommend", other_body).body["degraded"]
            is True
        )


class TestTelemetry:
    def test_counters_and_gauge(self, api):
        front = make_frontend(
            api,
            default_policy=TenantPolicy(capacity=1, refill_rate=0.1),
            degraded_serving=False,
        )
        front.submit("GET", "/api/v1/health")
        front.submit("GET", "/api/v1/health")
        metrics = api.obs.metrics
        assert metrics.counter_value("serving_requests_total", tenant="default") == 2
        assert metrics.counter_value("serving_admitted_total", tenant="default") == 1
        assert (
            metrics.counter_value(
                "serving_shed_total",
                tenant="default",
                reason="rate_limited",
                status="429",
            )
            == 1
        )
        assert metrics.gauge_value("serving_queue_depth") == 1
        front.drain()
        assert metrics.gauge_value("serving_queue_depth") == 0
        assert (
            metrics.counter_value(
                "serving_served_total", tenant="default", status="200"
            )
            == 1
        )

    def test_latency_histogram_feeds_slo(self, api):
        front = make_frontend(api, slo_threshold=1e9)
        front.handle("GET", "/api/v1/health")
        status = api.obs.slo.status("serving-latency")
        assert status.verdict == "ok"
        assert status.events >= 1

    def test_overload_burns_the_slo(self, api):
        # Long queue waits push served latency over the SLO threshold,
        # so every event is bad and the verdict walks to burning.
        front = make_frontend(api, slo_threshold=1.0)
        for _ in range(3):
            admission = front.submit("GET", "/api/v1/health")
            front.pop_queued()
            front.dispatch_one(admission, queue_wait=10.0)
        assert api.obs.slo.status("serving-latency").verdict == "burning"

    def test_register_slo_false_skips_registration(self, api):
        make_frontend(api, register_slo=False)
        with pytest.raises(KeyError):
            api.obs.slo.status("serving-latency")

    def test_stats_snapshot(self, api):
        front = make_frontend(
            api,
            default_policy=TenantPolicy(capacity=1, refill_rate=0.1),
            degraded_serving=False,
        )
        front.handle("GET", "/api/v1/health", tenant="t1")
        front.handle("GET", "/api/v1/health", tenant="t1")
        stats = front.stats()
        assert stats["submitted"] == 2
        assert stats["served"] == 1
        assert stats["shed"] == {"rate_limited": 1}
        assert stats["queue_capacity"] == 8
        assert set(stats["latency"]) == {"p50", "p95", "p99"}
        tenant = stats["tenants"]["t1"]
        assert tenant["submitted"] == 2
        assert tenant["shed"] == 1
        assert "available_tokens" in tenant


class TestServingRoute:
    def test_disabled_without_frontend(self, api):
        response = api.handle("GET", "/api/v1/serving")
        assert response.ok
        assert response.body == {"enabled": False}

    def test_attached_frontend_reports_stats(self, api):
        front = make_frontend(api)
        front.handle("GET", "/api/v1/health")
        response = api.handle("GET", "/api/v1/serving")
        assert response.ok
        assert response.body["enabled"] is True
        # One /health plus the /serving call itself routed via api.handle
        # directly, which does not pass admission.
        assert response.body["served"] == 1

    def test_metrics_export_includes_serving(self, api):
        make_frontend(api)
        response = api.handle("GET", "/api/v1/metrics")
        assert response.ok
        assert response.body["serving"] is not None
        assert response.body["serving"]["queue_depth"] == 0


class TestCanonicalBody:
    def test_strips_telemetry_attachments(self):
        body = {
            "recommendations": [1, 2],
            "phases": [{"wall_seconds": 0.123}],
            "cost": {"total": 9.9},
        }
        assert canonical_body(body) == {"recommendations": [1, 2]}

    def test_deep_copies(self):
        body = {"recommendations": [{"x": 1}]}
        out = canonical_body(body)
        out["recommendations"][0]["x"] = 2
        assert body["recommendations"][0]["x"] == 1

    def test_request_key_is_canonical(self):
        assert request_key("post", "/p", {"b": 1, "a": 2}) == request_key(
            "POST", "/p", {"a": 2, "b": 1}
        )
        assert request_key("GET", "/p", None) == request_key("GET", "/p", {})


class TestConfigValidation:
    def test_bad_queue_capacity(self):
        with pytest.raises(ValueError):
            ServingConfig(queue_capacity=0)

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            TenantPolicy(capacity=0)
        with pytest.raises(ValueError):
            TenantPolicy(refill_rate=-1)

    def test_bad_degraded_top_k(self):
        with pytest.raises(ValueError):
            ServingConfig(degraded_top_k=0)

    def test_policy_for_falls_back_to_default(self):
        policy = TenantPolicy(capacity=2, refill_rate=2.0)
        config = ServingConfig(tenant_policies=(("vip", policy),))
        assert config.policy_for("vip") is policy
        assert config.policy_for("anon") is config.default_policy
