"""Tests for the deterministic open-loop load generator."""

import pytest

from repro.serving import (
    Burst,
    LoadGenerator,
    RequestTemplate,
    TenantLoad,
    manuscript_templates,
)

HEALTH = RequestTemplate("GET", "/api/v1/health")


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        gen = LoadGenerator((HEALTH,), rate=50.0, seed=3)
        assert gen.arrivals(count=100) == gen.arrivals(count=100)
        assert gen.arrivals(count=100) == LoadGenerator(
            (HEALTH,), rate=50.0, seed=3
        ).arrivals(count=100)

    def test_different_seed_different_schedule(self):
        a = LoadGenerator((HEALTH,), rate=50.0, seed=3).arrivals(count=100)
        b = LoadGenerator((HEALTH,), rate=50.0, seed=4).arrivals(count=100)
        assert a != b

    def test_arrivals_are_time_ordered(self):
        arrivals = LoadGenerator((HEALTH,), rate=20.0, seed=9).arrivals(count=200)
        assert all(a.at <= b.at for a, b in zip(arrivals, arrivals[1:]))
        assert all(a.at >= 0 for a in arrivals)


class TestModes:
    def test_count_mode_returns_exactly_count(self):
        assert len(LoadGenerator((HEALTH,), seed=1).arrivals(count=37)) == 37

    def test_duration_mode_bounds_times(self):
        arrivals = LoadGenerator((HEALTH,), rate=30.0, seed=1).arrivals(
            duration=5.0
        )
        assert arrivals
        assert all(a.at < 5.0 for a in arrivals)

    def test_exactly_one_mode_required(self):
        gen = LoadGenerator((HEALTH,), seed=1)
        with pytest.raises(ValueError):
            gen.arrivals()
        with pytest.raises(ValueError):
            gen.arrivals(count=5, duration=5.0)


class TestBursts:
    def test_rate_at_applies_multiplier(self):
        gen = LoadGenerator(
            (HEALTH,), rate=10.0, seed=1, bursts=(Burst(5.0, 2.0, 3.0),)
        )
        assert gen.rate_at(4.9) == 10.0
        assert gen.rate_at(5.0) == 30.0
        assert gen.rate_at(6.9) == 30.0
        assert gen.rate_at(7.0) == 10.0

    def test_overlapping_bursts_compound(self):
        gen = LoadGenerator(
            (HEALTH,),
            rate=10.0,
            seed=1,
            bursts=(Burst(0.0, 10.0, 2.0), Burst(5.0, 2.0, 3.0)),
        )
        assert gen.rate_at(6.0) == 60.0

    def test_burst_window_is_denser(self):
        gen = LoadGenerator(
            (HEALTH,), rate=10.0, seed=11, bursts=(Burst(10.0, 10.0, 5.0),)
        )
        arrivals = gen.arrivals(duration=30.0)
        before = sum(1 for a in arrivals if a.at < 10.0)
        during = sum(1 for a in arrivals if 10.0 <= a.at < 20.0)
        assert during > 2 * before

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            Burst(-1.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            Burst(0.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            Burst(0.0, 1.0, 0.0)


class TestMixes:
    def test_tenant_mix_respects_weights(self):
        gen = LoadGenerator(
            (HEALTH,),
            tenants=(TenantLoad("heavy", 9.0), TenantLoad("light", 1.0)),
            rate=50.0,
            seed=2,
        )
        arrivals = gen.arrivals(count=500)
        heavy = sum(1 for a in arrivals if a.tenant == "heavy")
        light = len(arrivals) - heavy
        assert heavy > 5 * light
        assert light > 0

    def test_template_mix_draws_all_templates(self):
        routes = RequestTemplate("GET", "/api/v1/routes")
        gen = LoadGenerator((HEALTH, routes), rate=50.0, seed=2)
        paths = {a.path for a in gen.arrivals(count=200)}
        assert paths == {"/api/v1/health", "/api/v1/routes"}

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadGenerator(())
        with pytest.raises(ValueError):
            LoadGenerator((HEALTH,), tenants=())
        with pytest.raises(ValueError):
            LoadGenerator((HEALTH,), rate=0.0)
        with pytest.raises(ValueError):
            RequestTemplate("GET", "/x", weight=0.0)
        with pytest.raises(ValueError):
            TenantLoad("t", weight=-1.0)


class TestManuscriptTemplates:
    def test_builds_recommend_templates(self, world):
        templates = manuscript_templates(world, count=3)
        assert len(templates) == 3
        for template in templates:
            assert template.method == "POST"
            assert template.path == "/api/v1/recommend"
            manuscript = template.body["manuscript"]
            assert manuscript["keywords"]
            assert manuscript["authors"][0]["name"]

    def test_templates_resolve_against_the_api(self, world, shared_hub):
        from repro.api.handlers import MinaretApi

        api = MinaretApi(shared_hub)
        template = manuscript_templates(world, count=1)[0]
        response = api.handle(template.method, template.path, template.body)
        assert response.ok
        assert "recommendations" in response.body

    def test_impossible_requirements_raise(self, world):
        with pytest.raises(ValueError):
            manuscript_templates(world, keyword_count=10_000)
