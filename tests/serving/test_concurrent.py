"""Concurrent dispatch through the admission queue.

The serving invariant under test: worker counts and thread interleaving
decide *when* work happens, never *what* any admitted request answers —
and admission arithmetic on the virtual clock is deterministic even
when submissions race from many threads.
"""

import threading

import pytest

from repro.api.handlers import MinaretApi
from repro.scholarly.registry import ScholarlyHub
from repro.serving import (
    Burst,
    LoadGenerator,
    RequestTemplate,
    ServingConfig,
    ServingFrontend,
    TenantPolicy,
    canonical_body,
    manuscript_templates,
    run_load,
)


def _requests(world):
    """A mixed batch of real requests with deterministic payloads."""
    templates = manuscript_templates(world, count=3)
    batch = [(t.method, t.path, t.body) for t in templates]
    keywords = templates[0].body["manuscript"]["keywords"]
    # Two expand variants; /health would embed live SLO state, so it
    # is deliberately absent from the bit-identity batch.
    batch.append(("POST", "/api/v1/expand", {"keywords": keywords}))
    batch.append(
        ("POST", "/api/v1/expand", {"keywords": keywords, "max_depth": 1})
    )
    return batch


def _fresh_frontend(world, **overrides):
    defaults = dict(
        queue_capacity=32,
        default_policy=TenantPolicy(capacity=64, refill_rate=10.0),
        degraded_serving=False,
    )
    defaults.update(overrides)
    api = MinaretApi(ScholarlyHub.deploy(world))
    return ServingFrontend(api, ServingConfig(**defaults))


class TestWorkerCountInvariance:
    def test_bodies_bit_identical_at_1_2_8_workers(self, world):
        batch = _requests(world)
        # Unthrottled sequential dispatch straight through the API.
        reference_api = MinaretApi(ScholarlyHub.deploy(world))
        reference = [
            canonical_body(reference_api.handle(m, p, b).body) for m, p, b in batch
        ]
        for workers in (1, 2, 8):
            front = _fresh_frontend(world)
            admissions = [front.submit(m, p, b) for m, p, b in batch]
            assert all(a.admitted for a in admissions)
            front.drain(workers=workers)
            bodies = [canonical_body(a.response.body) for a in admissions]
            assert bodies == reference, f"workers={workers} diverged"

    def test_drain_statuses_all_ok(self, world):
        front = _fresh_frontend(world)
        for method, path, body in _requests(world):
            front.submit(method, path, body)
        served = front.drain(workers=8)
        assert [a.status for a in served] == [200] * len(served)


class TestConcurrentSubmission:
    N_THREADS = 32

    def _storm(self, front):
        """All threads submit one request at the same virtual instant."""
        results = [None] * self.N_THREADS
        barrier = threading.Barrier(self.N_THREADS)

        def client(i):
            barrier.wait()
            results[i] = front.submit("GET", "/api/v1/health", tenant="storm")

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results

    def test_admit_and_shed_counts_are_exact(self, world):
        front = _fresh_frontend(
            world,
            queue_capacity=16,
            default_policy=TenantPolicy(capacity=10, refill_rate=1.0),
        )
        results = self._storm(front)
        admitted = [r for r in results if r.admitted]
        shed = [r for r in results if not r.admitted]
        # No virtual time passes during the storm, so exactly
        # `capacity` tokens exist: 10 admits, 22 rate-limited sheds —
        # regardless of thread interleaving.
        assert len(admitted) == 10
        assert len(shed) == 22
        assert {r.reason for r in shed} == {"rate_limited"}
        assert all(r.status == 429 for r in shed)
        assert front.queue_depth == 10
        front.drain(workers=4)
        assert front.stats()["served"] == 10

    def test_queue_bound_holds_under_races(self, world):
        front = _fresh_frontend(
            world,
            queue_capacity=5,
            default_policy=TenantPolicy(capacity=1000.0, refill_rate=1.0),
        )
        results = self._storm(front)
        admitted = [r for r in results if r.admitted]
        shed = [r for r in results if not r.admitted]
        assert len(admitted) == 5
        assert front.queue_depth == 5
        assert {r.reason for r in shed} == {"queue_full"}
        assert all(r.status == 503 for r in shed)
        # The depth gauge is published under the queue lock, so after
        # the storm settles it agrees with the queue exactly.
        assert front.obs.metrics.gauge_value("serving_queue_depth") == 5
        # queue_full sheds refund their token: only the 5 admits spent
        # budget out of the 1000-token burst.
        assert front._bucket_for("storm").available() == pytest.approx(995.0)

    def test_storm_outcome_is_repeatable(self, world):
        outcomes = []
        for _ in range(2):
            front = _fresh_frontend(
                world,
                queue_capacity=16,
                default_policy=TenantPolicy(capacity=10, refill_rate=1.0),
            )
            results = self._storm(front)
            outcomes.append(sum(1 for r in results if r.admitted))
        assert outcomes[0] == outcomes[1] == 10


class TestHandleDrainRace:
    def test_handle_always_returns_a_response(self, world):
        # Regression: a racing drain() could take handle()'s admission
        # out of the queue before handle()'s own drain ran, so handle()
        # returned None while the other thread was still dispatching.
        # handle() now waits on the admission's done event.
        front = _fresh_frontend(
            world,
            queue_capacity=64,
            default_policy=TenantPolicy(capacity=1000.0, refill_rate=10.0),
        )
        n_clients = 12
        stop = threading.Event()

        def drainer():
            while not stop.is_set():
                front.drain(workers=2)

        stealer = threading.Thread(target=drainer)
        stealer.start()
        try:
            responses = [None] * n_clients
            barrier = threading.Barrier(n_clients)

            def client(i):
                barrier.wait()
                responses[i] = front.handle("GET", "/api/v1/health", tenant="race")

            clients = [
                threading.Thread(target=client, args=(i,)) for i in range(n_clients)
            ]
            for t in clients:
                t.start()
            for t in clients:
                t.join()
        finally:
            stop.set()
            stealer.join()
        assert all(r is not None for r in responses)
        assert [r.status for r in responses] == [200] * n_clients


class TestHarnessRuns:
    def test_load_report_is_deterministic(self, world):
        gen = LoadGenerator(
            (RequestTemplate("GET", "/api/v1/health"),),
            rate=20.0,
            seed=13,
        )
        arrivals = gen.arrivals(count=60)
        reports = []
        for _ in range(2):
            front = _fresh_frontend(
                world,
                queue_capacity=4,
                default_policy=TenantPolicy(capacity=5, refill_rate=2.0),
            )
            reports.append(run_load(front, arrivals, workers=2).to_dict())
        # Strip the SLO status: its `at` field reads the engine clock.
        for report in reports:
            report.pop("slo", None)
        assert reports[0] == reports[1]

    def test_burst_sheds_with_honored_retry_after(self, world):
        front = _fresh_frontend(
            world,
            queue_capacity=8,
            default_policy=TenantPolicy(capacity=3, refill_rate=1.0),
        )
        gen = LoadGenerator(
            (RequestTemplate("GET", "/api/v1/health"),),
            rate=2.0,
            seed=13,
            bursts=(Burst(5.0, 5.0, 10.0),),
        )
        report = run_load(front, gen.arrivals(duration=15.0), workers=2)
        sheds = [
            r
            for r in report.records
            if not r.admitted and r.reason == "rate_limited"
        ]
        assert sheds, "the 10x burst must overrun a 3-token bucket"
        # Every shed's retry_after is the bucket's own refill bound:
        # waiting exactly that long at 1 token/s must yield a token.
        for shed in sheds:
            assert shed.retry_after is not None
            assert shed.retry_after <= 1.0 + 1e-6
        first_shed_index = report.records.index(sheds[0])
        served_before = [
            r for r in report.records[:first_shed_index] if r.admitted
        ]
        assert served_before, "capacity served fine before the burst"

    def test_workers_speed_up_served_latency(self, world):
        gen = LoadGenerator(
            (RequestTemplate("GET", "/api/v1/health"),),
            rate=50.0,
            seed=21,
        )
        arrivals = gen.arrivals(count=40)
        latencies = {}
        for workers in (1, 8):
            front = _fresh_frontend(
                world,
                queue_capacity=64,
                default_policy=TenantPolicy(capacity=64, refill_rate=1.0),
            )
            report = run_load(front, arrivals, workers=workers)
            assert report.served == 40
            latencies[workers] = report.latency["p95"]
        assert latencies[8] <= latencies[1]


class TestRetryAfterContract:
    def test_retry_after_bound_admits_on_virtual_clock(self, world):
        front = _fresh_frontend(
            world,
            default_policy=TenantPolicy(capacity=2, refill_rate=0.25),
        )
        front.submit("GET", "/api/v1/health")
        front.submit("GET", "/api/v1/health")
        shed = front.submit("GET", "/api/v1/health")
        assert shed.status == 429
        assert shed.retry_after == pytest.approx(4.0)
        front.clock.advance(shed.retry_after / 2)
        assert front.submit("GET", "/api/v1/health").status == 429
        front.clock.advance(shed.retry_after / 2)
        assert front.submit("GET", "/api/v1/health").admitted
