"""Unit tests for the warm-path retrieval plane."""

import pytest

from repro.retrieval import RetrievalPlane
from repro.web.clock import SimulatedClock


@pytest.fixture()
def clock():
    return SimulatedClock()


@pytest.fixture()
def plane(clock):
    return RetrievalPlane(clock)


class TestFetch:
    def test_miss_then_hit(self, plane):
        calls = []
        loader = lambda: calls.append(1) or "value"  # noqa: E731
        assert plane.fetch("layer", "k", loader) == "value"
        assert plane.fetch("layer", "k", loader) == "value"
        assert calls == [1]
        assert plane.hits == 1
        assert plane.misses == 1

    def test_cached_none_is_a_hit(self, plane):
        """``None`` results (profile not found) are cacheable outcomes."""
        calls = []
        loader = lambda: calls.append(1)  # noqa: E731
        assert plane.fetch("layer", "k", loader) is None
        assert plane.fetch("layer", "k", loader) is None
        assert calls == [1]
        assert plane.hits == 1

    def test_layers_do_not_collide(self, plane):
        plane.fetch("a", "k", lambda: 1)
        assert plane.fetch("b", "k", lambda: 2) == 2

    def test_loader_failure_not_cached(self, plane):
        with pytest.raises(RuntimeError):
            plane.fetch("layer", "k", lambda: (_ for _ in ()).throw(RuntimeError()))
        assert plane.fetch("layer", "k", lambda: "recovered") == "recovered"
        assert len(plane.store) == 1

    def test_ttl_expires_against_virtual_clock(self, clock):
        plane = RetrievalPlane(clock, ttl=10.0)
        plane.fetch("layer", "k", lambda: "old")
        clock.advance(11.0)
        assert plane.fetch("layer", "k", lambda: "new") == "new"

    def test_hit_rate(self, plane):
        assert plane.hit_rate() == 0.0
        plane.fetch("layer", "k", lambda: 1)
        plane.fetch("layer", "k", lambda: 1)
        assert plane.hit_rate() == 0.5


class TestEpoch:
    def test_bump_invalidates_store(self, plane):
        plane.fetch("layer", "k", lambda: "stale")
        assert plane.bump_epoch() == 1
        assert plane.fetch("layer", "k", lambda: "fresh") == "fresh"

    def test_bump_invalidates_interest_mirror(self, plane):
        plane.interest_ids("scholar", "rdf", 10, lambda: ["a", "b"])
        plane.bump_epoch()
        assert plane.interest_ids("scholar", "rdf", 10, lambda: ["c"]) == ["c"]

    def test_clear_keeps_epoch(self, plane):
        plane.fetch("layer", "k", lambda: 1)
        plane.clear()
        assert plane.epoch == 0
        assert len(plane.store) == 0


class TestInterestIndex:
    def test_second_query_resolves_locally(self, plane):
        calls = []
        loader = lambda: calls.append(1) or ["a", "b", "c"]  # noqa: E731
        assert plane.interest_ids("scholar", "rdf", 10, loader) == ["a", "b", "c"]
        assert plane.interest_ids("scholar", "rdf", 10, loader) == ["a", "b", "c"]
        assert calls == [1]

    def test_normalized_keywords_share_postings(self, plane):
        plane.interest_ids("scholar", "Query Optimization", 10, lambda: ["a"])
        calls = []
        ids = plane.interest_ids(
            "scholar", "query optimization", 10, lambda: calls.append(1) or []
        )
        assert ids == ["a"]
        assert calls == []

    def test_narrower_limit_is_a_prefix(self, plane):
        plane.interest_ids("scholar", "rdf", 10, lambda: ["a", "b", "c"])
        assert plane.interest_ids("scholar", "rdf", 2, lambda: ["x"]) == ["a", "b"]

    def test_wider_limit_refetches_when_truncated(self, plane):
        """A full page at limit N may hide a tail; limit > N must refetch."""
        plane.interest_ids("scholar", "rdf", 2, lambda: ["a", "b"])
        wider = plane.interest_ids("scholar", "rdf", 4, lambda: ["a", "b", "c"])
        assert wider == ["a", "b", "c"]

    def test_wider_limit_local_when_list_was_exhaustive(self, plane):
        """Fewer ids than the limit means the source had no more."""
        calls = []
        plane.interest_ids("scholar", "rdf", 10, lambda: ["a", "b"])
        ids = plane.interest_ids(
            "scholar", "rdf", 50, lambda: calls.append(1) or []
        )
        assert ids == ["a", "b"]
        assert calls == []

    def test_sources_are_independent(self, plane):
        plane.interest_ids("scholar", "rdf", 10, lambda: ["a"])
        assert plane.interest_ids("publons", "rdf", 10, lambda: ["r1"]) == ["r1"]

    def test_local_search_replays_service_order(self, plane):
        plane.interest_ids("scholar", "rdf", 10, lambda: ["c", "a", "b"])
        assert plane.local_interest_search("scholar", ["rdf"]) == ["c", "a", "b"]


class TestStats:
    def test_snapshot_shape(self, plane):
        plane.fetch("scholar_profile", "u1", lambda: "p")
        plane.fetch("scholar_profile", "u1", lambda: "p")
        plane.interest_ids("publons", "rdf", 5, lambda: ["r"])
        stats = plane.stats()
        assert stats["plane"] == "retrieval"
        assert stats["epoch"] == 0
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["store_entries"] == 1
        assert stats["index_terms"] == {"publons": 1, "scholar": 0}
        assert stats["layers"]["scholar_profile"] == {"hit": 1, "miss": 1}

    def test_stats_is_json_serialisable(self, plane):
        import json

        plane.fetch("layer", ("tuple", "key"), lambda: 1)
        json.dumps(plane.stats())


class TestHubAttachment:
    def test_refresh_services_bumps_attached_plane(self, hub):
        plane = RetrievalPlane.for_sources(hub)
        plane.fetch("layer", "k", lambda: "stale")
        hub.refresh_services()
        assert plane.epoch == 1
        assert len(plane.store) == 0

    def test_for_sources_uses_hub_clock(self, hub):
        plane = RetrievalPlane.for_sources(hub, ttl=5.0)
        plane.fetch("layer", "k", lambda: "old")
        hub.clock.advance(6.0)
        assert plane.fetch("layer", "k", lambda: "new") == "new"

    def test_attach_is_idempotent(self, hub):
        plane = RetrievalPlane.for_sources(hub)
        hub.attach_retrieval_plane(plane)
        assert hub.planes.count(plane) == 1
