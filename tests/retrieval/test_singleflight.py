"""Unit tests for singleflight call coalescing."""

import threading
import time

import pytest

from repro.retrieval import SingleFlight


class TestSequential:
    def test_leader_executes_loader(self):
        flight = SingleFlight()
        value, leader = flight.do("k", lambda: 42)
        assert value == 42
        assert leader is True

    def test_sequential_calls_reexecute(self):
        """Coalescing is per concurrent burst, not a cache across time."""
        flight = SingleFlight()
        calls = []
        for i in range(3):
            value, leader = flight.do("k", lambda i=i: calls.append(i) or i)
            assert leader is True
            assert value == i
        assert calls == [0, 1, 2]

    def test_distinct_keys_are_independent(self):
        flight = SingleFlight()
        assert flight.do("a", lambda: 1) == (1, True)
        assert flight.do("b", lambda: 2) == (2, True)

    def test_key_forgotten_after_landing(self):
        flight = SingleFlight()
        flight.do("k", lambda: 1)
        assert flight.in_flight() == 0

    def test_exception_propagates_and_key_forgotten(self):
        flight = SingleFlight()
        with pytest.raises(ValueError):
            flight.do("k", lambda: (_ for _ in ()).throw(ValueError("boom")))
        assert flight.in_flight() == 0
        # The key is reusable after the failure.
        assert flight.do("k", lambda: "ok") == ("ok", True)


class TestConcurrent:
    def test_burst_executes_loader_once(self):
        flight = SingleFlight()
        workers = 8
        release = threading.Event()
        entered = threading.Event()
        calls = []
        lock = threading.Lock()
        outcomes = [None] * workers

        def loader():
            with lock:
                calls.append(threading.get_ident())
            entered.set()
            release.wait(timeout=5)
            return "answer"

        def run(i):
            outcomes[i] = flight.do("k", loader)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(workers)]
        for t in threads:
            t.start()
        # Wait until the leader is inside the loader, give the waiters
        # time to pile onto the flight, then release it.
        entered.wait(timeout=5)
        time.sleep(0.2)
        release.set()
        for t in threads:
            t.join(timeout=5)
        assert len(calls) == 1
        assert all(value == "answer" for value, _ in outcomes)
        assert sum(1 for _, leader in outcomes if leader) == 1
        assert flight.in_flight() == 0

    def test_burst_failure_fans_out_to_all_waiters(self):
        flight = SingleFlight()
        workers = 4
        release = threading.Event()
        entered = threading.Event()
        errors = []
        lock = threading.Lock()

        def loader():
            entered.set()
            release.wait(timeout=5)
            raise RuntimeError("source down")

        def run():
            try:
                flight.do("k", loader)
            except RuntimeError as exc:
                with lock:
                    errors.append(str(exc))

        threads = [threading.Thread(target=run) for _ in range(workers)]
        for t in threads:
            t.start()
        entered.wait(timeout=5)
        time.sleep(0.2)
        release.set()
        for t in threads:
            t.join(timeout=5)
        assert errors == ["source down"] * workers
        assert flight.in_flight() == 0
