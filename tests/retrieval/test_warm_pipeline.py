"""End-to-end warm-path guarantees: determinism, savings, freshness."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Minaret
from repro.scholarly.registry import ScholarlyHub
from repro.world.config import WorldConfig
from repro.world.dynamics import WorldDynamics
from repro.world.generator import generate_world
from tests.conftest import make_manuscript


def signature(result):
    """The bit-exact ranking: (candidate, score) in order."""
    return [(s.candidate.candidate_id, s.total_score) for s in result.ranked]


class TestDeterminism:
    @pytest.fixture(scope="class")
    def cold_signature(self, world):
        manuscript = _manuscript(world)
        hub = ScholarlyHub.deploy(world)
        return signature(Minaret(hub).recommend(manuscript))

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_warm_first_run_matches_cold_sequential(
        self, world, cold_signature, workers
    ):
        manuscript = _manuscript(world)
        hub = ScholarlyHub.deploy(world)
        minaret = Minaret(
            hub, config=PipelineConfig(warm_cache=True, workers=workers)
        )
        assert signature(minaret.recommend(manuscript)) == cold_signature

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_warm_repeat_run_matches_cold_sequential(
        self, world, cold_signature, workers
    ):
        manuscript = _manuscript(world)
        hub = ScholarlyHub.deploy(world)
        minaret = Minaret(
            hub, config=PipelineConfig(warm_cache=True, workers=workers)
        )
        minaret.recommend(manuscript)
        assert signature(minaret.recommend(manuscript)) == cold_signature


class TestRequestSavings:
    def test_repeat_run_is_cheap(self, world):
        manuscript = _manuscript(world)
        hub = ScholarlyHub.deploy(world)
        minaret = Minaret(hub, config=PipelineConfig(warm_cache=True))
        minaret.recommend(manuscript)
        first = hub.total_requests()
        minaret.recommend(manuscript)
        second = hub.total_requests() - first
        assert second * 5 <= first

    def test_plane_counts_warm_traffic(self, world):
        manuscript = _manuscript(world)
        hub = ScholarlyHub.deploy(world)
        minaret = Minaret(hub, config=PipelineConfig(warm_cache=True))
        minaret.recommend(manuscript)
        assert minaret.plane.hits == 0
        minaret.recommend(manuscript)
        assert minaret.plane.hits > 0
        stats = minaret.plane.stats()
        assert stats["store_entries"] > 0
        assert stats["index_terms"]["scholar"] > 0

    def test_cold_pipeline_has_no_plane(self, world):
        hub = ScholarlyHub.deploy(world)
        assert Minaret(hub).plane is None

    def test_explicit_plane_is_shared_between_pipelines(self, world):
        from repro.retrieval import RetrievalPlane

        manuscript = _manuscript(world)
        hub = ScholarlyHub.deploy(world)
        plane = RetrievalPlane.for_sources(hub)
        Minaret(hub, plane=plane).recommend(manuscript)
        first = hub.total_requests()
        Minaret(hub, plane=plane).recommend(manuscript)
        assert (hub.total_requests() - first) * 5 <= first


class TestFreshness:
    @pytest.fixture()
    def evolving(self):
        """A private small world this class may mutate freely."""
        world = generate_world(WorldConfig(author_count=60, seed=7))
        hub = ScholarlyHub.deploy(world)
        return world, hub

    def test_world_advance_invalidates_plane(self, evolving):
        world, hub = evolving
        manuscript = _manuscript(world)
        minaret = Minaret(hub, config=PipelineConfig(warm_cache=True))
        minaret.recommend(manuscript)
        assert len(minaret.plane.store) > 0

        dynamics = WorldDynamics(world, seed=9)
        dynamics.advance_year()
        hub.refresh_services()

        assert minaret.plane.epoch == 1
        assert len(minaret.plane.store) == 0

    def test_post_advance_warm_run_matches_fresh_cold_run(self, evolving):
        world, hub = evolving
        manuscript = _manuscript(world)
        minaret = Minaret(hub, config=PipelineConfig(warm_cache=True))
        minaret.recommend(manuscript)

        dynamics = WorldDynamics(world, seed=9)
        target = sorted(world.authors)[0]
        dynamics.publish(target, "databases", 2020, count=2)
        hub.refresh_services()

        warm = signature(minaret.recommend(manuscript))
        cold_hub = ScholarlyHub.deploy(world)
        cold = signature(Minaret(cold_hub).recommend(manuscript))
        assert warm == cold


def _manuscript(world):
    for author in world.authors.values():
        if len(world.authors_by_name(author.name)) == 1:
            return make_manuscript(world, author)
    raise RuntimeError("world has no unambiguous author")
