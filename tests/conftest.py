"""Shared fixtures: one small world and helpers reused across suites."""

from __future__ import annotations

import pytest

from repro.core.models import Manuscript, ManuscriptAuthor
from repro.scholarly.registry import ScholarlyHub
from repro.world.config import WorldConfig
from repro.world.generator import generate_world


@pytest.fixture(scope="session")
def world():
    """A small deterministic world shared by read-only tests."""
    return generate_world(WorldConfig(author_count=120, seed=5))


@pytest.fixture()
def hub(world):
    """A fresh deployment per test (request counters start at zero)."""
    return ScholarlyHub.deploy(world)


@pytest.fixture(scope="session")
def shared_hub(world):
    """A session deployment for tests that never inspect counters."""
    return ScholarlyHub.deploy(world)


def make_manuscript(world, author=None, keyword_count=2, target_venue=None):
    """Build a manuscript whose author really exists in ``world``."""
    if author is None:
        author = next(iter(world.authors.values()))
    topics = sorted(author.topic_expertise)[:keyword_count]
    keywords = tuple(world.ontology.topic(t).label for t in topics)
    affiliation = author.affiliations[-1]
    if target_venue is None:
        journals = world.journal_venues()
        target_venue = journals[0].name if journals else ""
    return Manuscript(
        title=f"A Study of {keywords[0]}",
        keywords=keywords,
        authors=(
            ManuscriptAuthor(
                name=author.name,
                affiliation=affiliation.institution,
                country=affiliation.country,
            ),
        ),
        target_venue=target_venue,
    )


@pytest.fixture()
def manuscript(world):
    """A manuscript authored by a non-colliding scholar of the world."""
    # Skip planted name collisions so identity verification is unambiguous.
    for author in world.authors.values():
        if len(world.authors_by_name(author.name)) == 1:
            return make_manuscript(world, author)
    raise RuntimeError("world has no unambiguous author")
